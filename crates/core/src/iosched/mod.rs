//! Asynchronous I/O scheduling: multiple outstanding chunk loads.
//!
//! The paper's main loop (Figure 3) keeps **one** load outstanding: plan,
//! read, signal, repeat.  That is faithful to its single-logical-device
//! storage model, but it starves a multi-spindle array — a chunk whose
//! stripes live on one arm leaves every other arm idle while the ABM waits.
//! This module is the layer between the scheduling policies and the disk
//! that removes that bottleneck:
//!
//! * [`IoScheduler`] keeps up to `K` chunk loads in flight.  Whenever the
//!   pipeline has room (a load completed, a query registered or detached, a
//!   chunk was consumed) it asks the ABM for a *burst* of new decisions via
//!   [`crate::Abm::plan_loads`], which admits each decision — reserving its
//!   buffer pages and evicting its victims — before planning the next, so
//!   the whole burst's evictions are secured up front and an in-flight burst
//!   can never deadlock or over-commit the pool (see
//!   [`crate::AbmState::free_pages`]).
//! * The decisions come relevance-ordered from the policy's incremental
//!   index ([`crate::policy::Policy::next_load_pipelined`]).  There is
//!   deliberately **no materialized pending queue** below the policy: every
//!   burst is planned against the live [`crate::AbmState`], so the "pending
//!   queue" is re-planned by construction whenever queries register or
//!   detach — the bucket bitsets and candidate heaps of PR 1 *are* that
//!   queue, kept current by the change log instead of being invalidated
//!   wholesale.
//! * [`SimIoBackend`] routes each admitted load to the simulated storage:
//!   on a [`cscan_simdisk::RaidArray`] the per-stripe parts fan out to the
//!   spindles' FIFO submission queues (large striped chunks use every arm,
//!   small reads stay arm-bound), and per-spindle queue depths are sampled
//!   into a [`cscan_simdisk::QueueDepthTrace`].
//! * Loads complete in whatever order the spindles finish;
//!   [`IoScheduler::commit`] retires them by `(chunk, ticket)` through the
//!   plan/commit revalidation of [`crate::Abm::commit_load`] — stale
//!   completions of aborted loads are dropped, not installed — and hands
//!   back the blocked queries to wake.  Loads whose last interested query
//!   detaches mid-read are cancelled ([`IoScheduler::cancel`], or lazily by
//!   the reconcile pass at the top of [`IoScheduler::plan`]).
//!
//! With `K = 1` the scheduler degenerates *bit-identically* to the
//! sequential main loop: slot 0 of `next_load_pipelined` is required to take
//! exactly the [`crate::policy::Policy::next_load`] decision, and the
//! property tests in this module assert decision-for-decision equality
//! against a [`crate::Abm::plan_load`]-driven twin.
//!
//! # Complexity
//!
//! Planning a burst of `B` loads costs `B` policy decisions (each O(active
//! queries) trigger selection plus the O(words)-ish chunk argmax of PR 1)
//! plus the evictions the burst needs — the same per-decision cost as the
//! sequential path; nothing is quadratic in `K`.  Completion is O(inflight)
//! to unkey the load plus the ABM's usual O(interested queries) residency
//! update.  The threaded executor reaches the same state through an I/O
//! *thread pool* (`io_threads(k)`), each worker holding at most one
//! outstanding load of the shared ABM.

mod backend;
#[cfg(test)]
mod proptests;

pub use backend::SimIoBackend;

use crate::abm::{Abm, CommitOutcome, LoadDecision, LoadPlan};
use crate::query::QueryId;
use cscan_obs::{Counter, Registry};
use cscan_simdisk::SimTime;
use cscan_storage::{ChunkId, StoreError};
use std::sync::Arc;
use std::time::Duration;

/// Bounded-retry policy for failed chunk reads.
///
/// Retryable [`StoreError`]s (transient, timeout, corrupted) are retried up
/// to `max_attempts` times with exponential backoff; a permanent error — or
/// exhausting the attempt budget — quarantines the chunk.  The backoff is
/// expressed as a wall-clock [`Duration`]: the threaded executor sleeps it
/// for real, the simulation advances virtual time by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts allowed per load (including the first).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(5),
        }
    }
}

/// What the retry policy decided about a failed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Read the chunk again after sleeping `delay`.
    Retry {
        /// Backoff to wait before the retry (virtual in sim, real in the
        /// threaded executor).
        delay: Duration,
    },
    /// Give up on the chunk: quarantine it and err its interested queries.
    Quarantine,
}

impl RetryPolicy {
    /// A policy that never retries (every failure quarantines).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The exponential backoff after `failed_attempts` failures (≥ 1).
    pub fn backoff(&self, failed_attempts: u32) -> Duration {
        let factor = 1u32 << failed_attempts.saturating_sub(1).min(16);
        (self.backoff_base * factor).min(self.backoff_cap)
    }

    /// Decides what to do after a read of a chunk failed with `error` for
    /// the `failed_attempts`-th time (1-based).
    pub fn on_failure(&self, error: StoreError, failed_attempts: u32) -> FailureAction {
        if !error.is_retryable() || failed_attempts >= self.max_attempts {
            FailureAction::Quarantine
        } else {
            FailureAction::Retry {
                delay: self.backoff(failed_attempts),
            }
        }
    }
}

/// Aggregate counters of one scheduler's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSchedStats {
    /// Chunk loads admitted (submitted to the backend).
    pub loads_issued: u64,
    /// Chunk loads completed.
    pub loads_completed: u64,
    /// Chunk loads cancelled before their device I/O finished (their last
    /// interested query detached mid-read).
    pub loads_cancelled: u64,
    /// Most loads ever simultaneously in flight.
    pub peak_outstanding: usize,
    /// Planning bursts that admitted at least one load.
    pub bursts: u64,
    /// Chunks evicted while admitting loads.
    pub evictions: u64,
    /// Failed reads the retry policy sent back to the device.
    pub load_retries: u64,
    /// Loads given up on (permanent error or retry budget exhausted).
    pub loads_failed: u64,
}

/// One load the scheduler has submitted to the device: the decision plus
/// the plan/commit stamp it must be retired with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outstanding {
    decision: LoadDecision,
    ticket: u64,
    epoch: u64,
    /// Device reads of this load that have failed so far (retries keep the
    /// load — and its page reservation — in flight).
    failed_attempts: u32,
}

/// Keeps up to `max_outstanding` chunk loads in flight against one [`Abm`].
///
/// The scheduler owns no I/O itself: the driver submits each admitted
/// [`LoadPlan`] to its device (e.g. a [`SimIoBackend`]) and calls
/// [`IoScheduler::complete`] when the device finishes a chunk, in whatever
/// order completions arrive.
#[derive(Debug)]
pub struct IoScheduler {
    max_outstanding: usize,
    /// Loads currently on the device, in begin order (each is keyed by its
    /// decision's `chunk` field; loads are unique per chunk).
    outstanding: Vec<Outstanding>,
    stats: IoSchedStats,
    /// Observability mirror of [`IoSchedStats`]; disabled (a no-op) unless
    /// [`IoScheduler::set_observability`] installed a live registry.
    obs: Arc<Registry>,
}

impl IoScheduler {
    /// Creates a scheduler allowing `max_outstanding` loads in flight
    /// (clamped to at least one).
    pub fn new(max_outstanding: usize) -> Self {
        Self {
            max_outstanding: max_outstanding.max(1),
            outstanding: Vec::new(),
            stats: IoSchedStats::default(),
            obs: Arc::new(Registry::disabled()),
        }
    }

    /// Mirrors every stats increment into `obs` (`io_loads_issued`,
    /// `io_bursts`, `loads_completed`, `loads_cancelled`, `load_faults`,
    /// `load_retries`, `frame_evictions`) so scheduler activity lands in the
    /// same snapshot as the rest of the engine.
    pub fn set_observability(&mut self, obs: Arc<Registry>) {
        self.obs = obs;
    }

    /// The outstanding-load budget.
    pub fn max_outstanding(&self) -> usize {
        self.max_outstanding
    }

    /// Loads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &IoSchedStats {
        &self.stats
    }

    /// Fills the pipeline: plans new loads until `max_outstanding` are in
    /// flight (or the ABM has nothing admissible), appending the admitted
    /// plans to `out` for the driver to submit.  Victims for the whole burst
    /// are evicted during planning, before any of its I/O completes.
    pub fn plan(&mut self, abm: &mut Abm, now: SimTime, out: &mut Vec<LoadPlan>) {
        // Reconcile: drop loads the ABM aborted since the last plan (a
        // detach cancelled them mid-read; see [`Abm::finish_query`]).  Their
        // device completions, if still pending, are rejected by
        // [`IoScheduler::commit`]'s ticket lookup.
        let before = self.outstanding.len();
        self.outstanding
            .retain(|o| abm.state().inflight_ticket(o.decision.chunk) == Some(o.ticket));
        let reconciled = (before - self.outstanding.len()) as u64;
        self.stats.loads_cancelled += reconciled;
        self.obs.add(Counter::LoadsCancelled, reconciled);
        debug_assert_eq!(
            abm.state().num_inflight(),
            self.outstanding.len(),
            "scheduler and ABM disagree on the in-flight set"
        );
        let room = self.max_outstanding.saturating_sub(self.outstanding.len());
        if room == 0 {
            return;
        }
        let first_new = out.len();
        abm.plan_loads(now, room, out);
        if out.len() == first_new {
            return;
        }
        for plan in &out[first_new..] {
            self.outstanding.push(Outstanding {
                decision: plan.decision,
                ticket: plan.ticket,
                epoch: plan.epoch,
                failed_attempts: 0,
            });
            self.stats.loads_issued += 1;
            self.stats.evictions += plan.evicted.len() as u64;
            self.obs.inc(Counter::IoLoadsIssued);
            self.obs
                .add(Counter::FrameEvictions, plan.evicted.len() as u64);
        }
        self.stats.bursts += 1;
        self.obs.inc(Counter::IoBursts);
        self.stats.peak_outstanding = self.stats.peak_outstanding.max(self.outstanding.len());
    }

    /// Retires the in-flight load of `chunk`, returning its decision and the
    /// blocked queries interested in the chunk (the `signalQuery` list; the
    /// slice borrows the ABM's reusable scratch buffer).
    ///
    /// # Panics
    /// Panics if `chunk` has no load in flight.
    pub fn complete<'a>(
        &mut self,
        abm: &'a mut Abm,
        chunk: ChunkId,
    ) -> (LoadDecision, &'a [QueryId]) {
        let idx = self
            .outstanding
            .iter()
            .position(|o| o.decision.chunk == chunk)
            .unwrap_or_else(|| panic!("no outstanding load of {chunk:?}"));
        let outstanding = self.outstanding.remove(idx);
        self.stats.loads_completed += 1;
        self.obs.inc(Counter::LoadsCompleted);
        let woken = abm.complete_load_of(chunk);
        (outstanding.decision, woken)
    }

    /// The commit half of the plan/commit protocol: retires the completion
    /// `(chunk, ticket)` through [`Abm::commit_load`]'s revalidation.
    /// Returns `None` when the completion is stale — the load was cancelled
    /// (see [`IoScheduler::cancel`]) or aborted at commit time — and the
    /// committed decision plus `signalQuery` list otherwise.
    ///
    /// Unlike [`IoScheduler::complete`] this never panics: device
    /// completions for cancelled loads are expected and simply dropped.
    pub fn commit<'a>(
        &mut self,
        abm: &'a mut Abm,
        chunk: ChunkId,
        ticket: u64,
    ) -> Option<(LoadDecision, &'a [QueryId])> {
        let idx = self
            .outstanding
            .iter()
            .position(|o| o.decision.chunk == chunk && o.ticket == ticket)?;
        let outstanding = self.outstanding.remove(idx);
        match abm.commit_load(chunk, ticket, outstanding.epoch) {
            CommitOutcome::Committed { woken } => {
                self.stats.loads_completed += 1;
                self.obs.inc(Counter::LoadsCompleted);
                Some((outstanding.decision, woken))
            }
            CommitOutcome::Cancelled | CommitOutcome::Aborted => {
                self.stats.loads_cancelled += 1;
                self.obs.inc(Counter::LoadsCancelled);
                None
            }
        }
    }

    /// Reports that the device read of `(chunk, ticket)` failed with
    /// `error`, and decides — under `retry` — whether to read it again.
    ///
    /// On [`FailureAction::Retry`] the load (and its page reservation)
    /// stays in flight: the driver sleeps the returned backoff and
    /// resubmits the same plan; the attempt counter advances so the budget
    /// is bounded.  On [`FailureAction::Quarantine`] the load is aborted in
    /// the ABM (reservation released, chunk plannable again) and dropped
    /// from the in-flight set; the caller quarantines the chunk and errs
    /// its interested queries.  A stale `(chunk, ticket)` — the load was
    /// cancelled while its read was failing — reports `Quarantine` without
    /// touching anything, like [`IoScheduler::commit`] dropping a stale
    /// completion.
    pub fn fail(
        &mut self,
        abm: &mut Abm,
        chunk: ChunkId,
        ticket: u64,
        error: StoreError,
        retry: &RetryPolicy,
    ) -> FailureAction {
        let Some(idx) = self
            .outstanding
            .iter()
            .position(|o| o.decision.chunk == chunk && o.ticket == ticket)
        else {
            return FailureAction::Quarantine;
        };
        self.outstanding[idx].failed_attempts += 1;
        self.obs.inc(Counter::LoadFaults);
        let action = retry.on_failure(error, self.outstanding[idx].failed_attempts);
        match action {
            FailureAction::Retry { .. } => {
                self.stats.load_retries += 1;
                self.obs.inc(Counter::LoadRetries);
            }
            FailureAction::Quarantine => {
                self.outstanding.remove(idx);
                abm.fail_load(chunk, ticket);
                self.stats.loads_failed += 1;
            }
        }
        action
    }

    /// Forgets the outstanding load of `chunk` after the ABM aborted it
    /// (see [`Abm::aborted_loads`]).  The device read may still be under
    /// way; its eventual completion is rejected by [`IoScheduler::commit`]'s
    /// ticket lookup.  Returns whether an entry was dropped.
    pub fn cancel(&mut self, chunk: ChunkId, ticket: u64) -> bool {
        let Some(idx) = self
            .outstanding
            .iter()
            .position(|o| o.decision.chunk == chunk && o.ticket == ticket)
        else {
            return false;
        };
        self.outstanding.remove(idx);
        self.stats.loads_cancelled += 1;
        self.obs.inc(Counter::LoadsCancelled);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abm::AbmState;
    use crate::model::TableModel;
    use crate::policy::PolicyKind;
    use cscan_storage::ScanRanges;

    fn abm(chunks: u32, buffer_chunks: u64) -> Abm {
        let model = TableModel::nsm_uniform(chunks, 1000, 16);
        let state = AbmState::new(model, buffer_chunks * 16);
        Abm::new(state, PolicyKind::Relevance.build())
    }

    #[test]
    fn keeps_k_loads_in_flight() {
        let mut abm = abm(32, 16);
        let cols = abm.state().model().all_columns();
        abm.register_query("full", ScanRanges::full(32), cols, SimTime::ZERO);
        let mut sched = IoScheduler::new(4);
        let mut plans = Vec::new();
        sched.plan(&mut abm, SimTime::ZERO, &mut plans);
        assert_eq!(plans.len(), 4, "an empty pipeline fills to K");
        assert_eq!(sched.in_flight(), 4);
        assert_eq!(abm.state().num_inflight(), 4);
        // All four target distinct chunks and are reserved.
        let mut chunks: Vec<_> = plans.iter().map(|p| p.decision.chunk).collect();
        chunks.sort_unstable();
        chunks.dedup();
        assert_eq!(chunks.len(), 4);
        assert_eq!(abm.state().reserved_pages(), 4 * 16);
        // Completing one (out of order) frees a slot; the next plan refills.
        let victim = plans[2].decision.chunk;
        let (decision, _woken) = sched.complete(&mut abm, victim);
        assert_eq!(decision.chunk, victim);
        assert_eq!(sched.in_flight(), 3);
        let mut more = Vec::new();
        sched.plan(&mut abm, SimTime::ZERO, &mut more);
        assert_eq!(more.len(), 1);
        assert_eq!(sched.stats().loads_issued, 5);
        assert_eq!(sched.stats().loads_completed, 1);
        assert_eq!(sched.stats().peak_outstanding, 4);
    }

    #[test]
    fn k1_matches_sequential_plan_load() {
        // Two identical ABMs over the same workload: one driven by the
        // sequential plan_load main loop, one by a K=1 scheduler.  Their
        // decision streams must be identical.
        let mut seq = abm(24, 4);
        let mut pipe = abm(24, 4);
        let cols = seq.state().model().all_columns();
        for a in [&mut seq, &mut pipe] {
            a.register_query("a", ScanRanges::single(0, 16), cols, SimTime::ZERO);
            a.register_query("b", ScanRanges::single(8, 24), cols, SimTime::ZERO);
        }
        let mut sched = IoScheduler::new(1);
        for _ in 0..64 {
            let s = seq.plan_load(SimTime::ZERO);
            let mut p = Vec::new();
            sched.plan(&mut pipe, SimTime::ZERO, &mut p);
            assert_eq!(
                s.as_ref().map(|x| x.decision),
                p.first().map(|x| x.decision),
                "K=1 pipeline diverged from the sequential path"
            );
            assert_eq!(
                s.as_ref().map(|x| &x.evicted),
                p.first().map(|x| &x.evicted)
            );
            let Some(plan) = s else { break };
            seq.complete_load();
            sched.complete(&mut pipe, plan.decision.chunk);
        }
    }

    #[test]
    fn failed_reads_retry_then_quarantine() {
        let mut abm = abm(8, 4);
        let cols = abm.state().model().all_columns();
        abm.register_query("q", ScanRanges::full(8), cols, SimTime::ZERO);
        let mut sched = IoScheduler::new(1);
        let mut plans = Vec::new();
        sched.plan(&mut abm, SimTime::ZERO, &mut plans);
        let (chunk, ticket) = (plans[0].decision.chunk, plans[0].ticket);
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        // Two transient failures retry (with growing backoff), keeping the
        // load and its reservation in flight...
        let FailureAction::Retry { delay: d1 } =
            sched.fail(&mut abm, chunk, ticket, StoreError::Transient, &retry)
        else {
            panic!("first failure must retry")
        };
        let FailureAction::Retry { delay: d2 } =
            sched.fail(&mut abm, chunk, ticket, StoreError::TimedOut, &retry)
        else {
            panic!("second failure must retry")
        };
        assert!(d2 >= d1, "backoff must not shrink");
        assert_eq!(sched.in_flight(), 1);
        assert_eq!(abm.state().num_inflight(), 1);
        // ...the third failure exhausts the budget: the load is aborted and
        // its pages return to the pool.
        assert_eq!(
            sched.fail(&mut abm, chunk, ticket, StoreError::Transient, &retry),
            FailureAction::Quarantine
        );
        assert_eq!(sched.in_flight(), 0);
        assert_eq!(abm.state().num_inflight(), 0);
        assert_eq!(abm.state().reserved_pages(), 0);
        assert_eq!(sched.stats().load_retries, 2);
        assert_eq!(sched.stats().loads_failed, 1);
        // A permanent error quarantines immediately, no budget consulted.
        let mut more = Vec::new();
        sched.plan(&mut abm, SimTime::ZERO, &mut more);
        let (c2, t2) = (more[0].decision.chunk, more[0].ticket);
        assert_eq!(
            sched.fail(&mut abm, c2, t2, StoreError::Permanent, &retry),
            FailureAction::Quarantine
        );
        // A stale (chunk, ticket) is ignored.
        assert_eq!(
            sched.fail(&mut abm, c2, t2, StoreError::Transient, &retry),
            FailureAction::Quarantine
        );
        assert_eq!(sched.stats().loads_failed, 2);
    }

    #[test]
    #[should_panic(expected = "no outstanding load")]
    fn completing_unknown_chunk_panics() {
        let mut a = abm(8, 4);
        let mut sched = IoScheduler::new(2);
        sched.complete(&mut a, ChunkId::new(3));
    }
}
