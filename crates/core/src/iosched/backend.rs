//! Simulated storage backends for the I/O scheduler.
//!
//! The discrete-event simulation historically modelled the paper's RAID as a
//! single logical device with the aggregate bandwidth.  The scheduler can
//! still drive that, but its reason to exist is the explicit
//! [`RaidArray`]: each admitted load's physical regions are routed to the
//! spindles' per-arm FIFO submission queues, so several outstanding loads
//! genuinely overlap — striped chunks fan out across arms while reads
//! smaller than a stripe unit stay bound to one arm.

use cscan_simdisk::{
    Disk, DiskModel, DiskStats, QueueDepthTrace, RaidArray, RaidConfig, SimDuration, SimTime,
};
use cscan_storage::PhysRegion;

/// A simulated storage device the scheduler submits loads to: either the
/// single logical disk of the original runs or an explicit striped array
/// with per-spindle submission queues.
#[derive(Debug, Clone)]
pub enum SimIoBackend {
    /// One logical device with the aggregate bandwidth.
    Single(Disk),
    /// An explicit striped multi-spindle array.
    Raid(RaidArray),
}

impl SimIoBackend {
    /// Builds the backend: an explicit array when `raid` is given, otherwise
    /// a single logical device with `disk`'s parameters.
    pub fn new(disk: DiskModel, raid: Option<RaidConfig>) -> Self {
        match raid {
            Some(config) => SimIoBackend::Raid(RaidArray::new(config)),
            None => SimIoBackend::Single(Disk::new(disk)),
        }
    }

    /// Number of independent arms (1 for the single device).
    pub fn spindles(&self) -> usize {
        match self {
            SimIoBackend::Single(_) => 1,
            SimIoBackend::Raid(raid) => raid.spindles(),
        }
    }

    /// Submits every region of one chunk load at `now`; the load completes
    /// when its slowest region finishes.  Regions queue FIFO on their
    /// device/arm, so a load submitted behind outstanding work starts when
    /// the arms free up.
    pub fn submit(&mut self, now: SimTime, regions: &[PhysRegion]) -> SimTime {
        let mut completed = now;
        for region in regions {
            let result = match self {
                SimIoBackend::Single(disk) => disk.submit(now, region.to_io_request()),
                SimIoBackend::Raid(raid) => raid.submit(now, region.to_io_request()),
            };
            completed = completed.max(result.completed_at);
        }
        completed
    }

    /// Samples the per-arm queue depths at `now` into `trace`.
    pub fn sample_depths(&self, now: SimTime, trace: &mut QueueDepthTrace) {
        match self {
            SimIoBackend::Single(disk) => trace.sample(now, &[disk.queue_depth_at(now)]),
            SimIoBackend::Raid(raid) => trace.sample(now, &raid.queue_depths_at(now)),
        }
    }

    /// Aggregate device statistics (summed over arms; queue depth is the
    /// per-arm maximum).
    pub fn stats(&self) -> DiskStats {
        match self {
            SimIoBackend::Single(disk) => *disk.stats(),
            SimIoBackend::Raid(raid) => raid.stats(),
        }
    }

    /// Per-arm statistics (one entry for the single device).
    pub fn per_spindle_stats(&self) -> Vec<DiskStats> {
        match self {
            SimIoBackend::Single(disk) => vec![*disk.stats()],
            SimIoBackend::Raid(raid) => raid.per_spindle_stats(),
        }
    }

    /// Total busy time summed over the arms.
    pub fn busy_time(&self) -> SimDuration {
        self.stats().busy
    }

    /// Fraction of `makespan` the storage was busy, normalized by the number
    /// of arms so a fully pipelined array reads as 1.0.
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        let total = makespan.as_secs_f64() * self.spindles() as f64;
        if total <= 0.0 {
            0.0
        } else {
            (self.busy_time().as_secs_f64() / total).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_simdisk::MIB;
    use cscan_storage::PhysRegion;

    fn region(offset: u64, len: u64) -> PhysRegion {
        PhysRegion { offset, len }
    }

    #[test]
    fn single_backend_matches_a_plain_disk() {
        let model = DiskModel::default();
        let mut backend = SimIoBackend::new(model, None);
        assert_eq!(backend.spindles(), 1);
        let done = backend.submit(SimTime::ZERO, &[region(0, 16 * MIB)]);
        let mut reference = Disk::new(model);
        let expected = reference
            .submit(
                SimTime::ZERO,
                cscan_simdisk::IoRequest::chunk_read(0, 16 * MIB),
            )
            .completed_at;
        assert_eq!(done, expected);
        assert_eq!(backend.stats().requests, 1);
    }

    #[test]
    fn raid_backend_overlaps_outstanding_loads() {
        // Chunk-granularity striping: each 8 MiB load lands on one arm, so
        // four loads submitted together finish in about the time of one.
        let config = RaidConfig {
            spindles: 4,
            stripe_unit: 8 * MIB,
            disk: DiskModel {
                bandwidth_bytes_per_sec: 50 * MIB,
                avg_seek: SimDuration::from_millis(5),
                sequential_overhead: SimDuration::ZERO,
            },
        };
        let mut backend = SimIoBackend::new(DiskModel::default(), Some(config));
        assert_eq!(backend.spindles(), 4);
        let mut done = SimTime::ZERO;
        for i in 0..4u64 {
            done = done.max(backend.submit(SimTime::ZERO, &[region(i * 8 * MIB, 8 * MIB)]));
        }
        let secs = done.as_secs_f64();
        assert!(
            secs < 0.25,
            "four arm-bound loads should overlap (~0.165s each), got {secs}s"
        );
        let mut depths = QueueDepthTrace::new();
        backend.sample_depths(SimTime::ZERO, &mut depths);
        assert_eq!(depths.events().len(), 4);
        assert_eq!(depths.max_depth(), 1, "one load per arm");
        assert_eq!(backend.stats().requests, 4);
        assert_eq!(backend.per_spindle_stats().len(), 4);
        // Utilization normalizes by the arm count.
        let util = backend.utilization(done.duration_since(SimTime::ZERO));
        assert!(util > 0.9, "all arms busy the whole time, got {util}");
    }
}
