//! Deterministic discrete-event simulation of concurrent Cooperative Scans.
//!
//! The simulation combines the three resources the paper's experiments
//! exercise: simulated storage (a single aggregate [`cscan_simdisk::Disk`]
//! or an explicit [`cscan_simdisk::RaidArray`] with per-spindle submission
//! queues, behind a [`crate::iosched::SimIoBackend`]), a processor-sharing
//! CPU ([`cscan_engine::SharedCpu`]) on which every running query processes
//! its current chunk, and the Active Buffer Manager deciding what to read
//! and evict.  Chunk loads are issued through the asynchronous
//! [`crate::iosched::IoScheduler`]: with the default
//! [`SimConfig::max_outstanding_io`] of 1 it reproduces the paper's
//! sequential main loop decision-for-decision, while larger budgets keep
//! several loads in flight and overlap the spindles.  Query streams start
//! with a configurable stagger and run their queries back-to-back, exactly
//! like the benchmark setup of Section 5.1.
//!
//! Everything runs in virtual time, so a 16-stream TPC-H-scale experiment
//! takes milliseconds of wall-clock time and two runs with the same inputs
//! produce byte-identical results.

mod config;
mod metrics;
mod spec;

pub use config::{BufferSpec, SimConfig};
pub use metrics::{QueryOutcome, RunResult};
pub use spec::QuerySpec;

use crate::abm::{Abm, AbmState, LoadPlan};
use crate::iosched::{IoScheduler, SimIoBackend};
use crate::model::TableModel;
use crate::policy::PolicyKind;
use crate::query::QueryId;
use cscan_engine::{EventQueue, JobId, SharedCpu};
use cscan_simdisk::{IoTrace, QueueDepthTrace, SimDuration, SimTime};
use cscan_storage::ChunkId;
use std::collections::HashMap;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Start the next query of stream `stream`.
    StreamAdvance { stream: usize },
    /// The load of `chunk` issued under `ticket` finished (loads may
    /// complete in any order when several are in flight).  The ticket lets
    /// the commit reject completions of loads that were aborted — and
    /// possibly re-issued — while the event sat in the queue.
    DiskDone { chunk: u32, ticket: u64 },
    /// A CPU job (query × chunk) predicted to finish; stale epochs are ignored.
    CpuDone { job: JobId, epoch: u64 },
}

/// Per-active-query runtime bookkeeping the driver keeps outside the ABM.
#[derive(Debug, Clone)]
struct ActiveQuery {
    stream: usize,
    spec_index: usize,
    submitted_at: SimTime,
    /// The chunk currently being processed, if a CPU job is running.
    processing: Option<ChunkId>,
}

/// A deterministic simulated execution of a set of query streams.
pub struct Simulation {
    model: TableModel,
    policy: PolicyKind,
    config: SimConfig,
    streams: Vec<Vec<QuerySpec>>,
    obs: Option<std::sync::Arc<cscan_obs::Registry>>,
}

impl Simulation {
    /// Creates a simulation of `model` under `policy`.
    pub fn new(model: TableModel, policy: PolicyKind, config: SimConfig) -> Self {
        Self {
            model,
            policy,
            config,
            streams: Vec::new(),
            obs: None,
        }
    }

    /// Installs an observability registry: the I/O scheduler mirrors its
    /// counters (`io_loads_issued`, `io_bursts`, completions, cancellations,
    /// retries, evictions) into it during [`Simulation::run`].
    pub fn set_observability(&mut self, obs: std::sync::Arc<cscan_obs::Registry>) {
        self.obs = Some(obs);
    }

    /// Adds a stream of queries that will run back-to-back.
    pub fn submit_stream(&mut self, queries: Vec<QuerySpec>) {
        self.streams.push(queries);
    }

    /// Adds several streams at once.
    pub fn submit_streams(&mut self, streams: Vec<Vec<QuerySpec>>) {
        self.streams.extend(streams);
    }

    /// The number of streams submitted so far.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Runs the simulation to completion and returns the collected metrics.
    pub fn run(&mut self) -> RunResult {
        let mut runner = Runner::new(&self.model, self.policy, self.config, &self.streams);
        if let Some(obs) = &self.obs {
            runner
                .scheduler
                .set_observability(std::sync::Arc::clone(obs));
        }
        runner.run()
    }

    /// Convenience: run a single query by itself against a cold buffer and
    /// return its latency in seconds.  This is the "standalone cold time" the
    /// paper uses as the denominator of normalized latencies.
    pub fn standalone_latency(
        model: &TableModel,
        policy: PolicyKind,
        config: SimConfig,
        query: &QuerySpec,
    ) -> f64 {
        let mut sim = Simulation::new(model.clone(), policy, config);
        sim.submit_stream(vec![query.clone()]);
        let result = sim.run();
        result
            .queries
            .first()
            .map(|q| q.latency().as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// The actual event loop, borrowed from a [`Simulation`] for one run.
struct Runner<'a> {
    model: &'a TableModel,
    config: SimConfig,
    streams: &'a [Vec<QuerySpec>],
    abm: Abm,
    scheduler: IoScheduler,
    backend: SimIoBackend,
    cpu: SharedCpu,
    queue: EventQueue<Event>,
    cpu_epoch: u64,
    active: HashMap<QueryId, ActiveQuery>,
    stream_cursor: Vec<usize>,
    stream_starts: Vec<SimTime>,
    stream_ends: Vec<SimTime>,
    outcomes: Vec<QueryOutcome>,
    trace: IoTrace,
    depth_trace: QueueDepthTrace,
    /// Reused buffer for the plans admitted by one scheduling burst.
    plan_scratch: Vec<LoadPlan>,
    /// Reused copy of the ABM's wake-up list, so dispatching woken queries
    /// does not hold the `complete_load` borrow (and allocates nothing).
    wake_scratch: Vec<QueryId>,
}

impl<'a> Runner<'a> {
    fn new(
        model: &'a TableModel,
        policy: PolicyKind,
        config: SimConfig,
        streams: &'a [Vec<QuerySpec>],
    ) -> Self {
        let capacity = config.buffer_pages(model);
        let state = AbmState::new(model.clone(), capacity);
        let abm = Abm::new(state, policy.build());
        Self {
            model,
            config,
            streams,
            abm,
            scheduler: IoScheduler::new(config.max_outstanding_io),
            backend: SimIoBackend::new(config.disk, config.raid),
            cpu: SharedCpu::new(config.cores),
            queue: EventQueue::new(),
            cpu_epoch: 0,
            active: HashMap::new(),
            stream_cursor: vec![0; streams.len()],
            stream_starts: vec![SimTime::ZERO; streams.len()],
            stream_ends: vec![SimTime::ZERO; streams.len()],
            outcomes: Vec::new(),
            trace: IoTrace::new(),
            depth_trace: QueueDepthTrace::new(),
            plan_scratch: Vec::new(),
            wake_scratch: Vec::new(),
        }
    }

    fn run(mut self) -> RunResult {
        // Stagger the streams as in the paper's benchmark setup.
        for (i, stream) in self.streams.iter().enumerate() {
            let start = SimTime::ZERO + self.config.stream_stagger.mul_f64(i as f64);
            self.stream_starts[i] = start;
            self.stream_ends[i] = start;
            if !stream.is_empty() {
                self.queue
                    .schedule(start, Event::StreamAdvance { stream: i });
            }
        }

        loop {
            match self.queue.pop() {
                Some((now, event)) => match event {
                    Event::StreamAdvance { stream } => self.on_stream_advance(now, stream),
                    Event::DiskDone { chunk, ticket } => {
                        self.on_disk_done(now, ChunkId::new(chunk), ticket)
                    }
                    Event::CpuDone { job, epoch } => self.on_cpu_done(now, job, epoch),
                },
                None if self.abm.has_pending_work() => {
                    // Pressure-relief valve: with DSM partial residency it is
                    // possible (mainly under `elevator`) for the buffer to be
                    // full of chunks that are interesting to someone but
                    // complete for no one, with every query blocked.  Force
                    // out the least interesting chunk and retry; if that does
                    // not unstick the system, the assert below fires.
                    let now = self.queue.now();
                    if self.abm.force_evict_one().is_none() {
                        break;
                    }
                    self.kick_disk(now);
                    if self.queue.is_empty() {
                        break;
                    }
                }
                None => break,
            }
        }

        assert!(
            !self.abm.has_pending_work(),
            "simulation ended with unfinished queries (policy {} deadlocked)",
            self.abm.policy_name()
        );

        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .duration_since(SimTime::ZERO);
        self.cpu.advance(SimTime::ZERO + makespan);
        let cpu_utilization = if makespan.is_zero() {
            0.0
        } else {
            self.cpu.stats().utilization(self.config.cores, makespan)
        };
        let disk_utilization = if makespan.is_zero() {
            0.0
        } else {
            self.backend.utilization(makespan)
        };
        let state = self.abm.state();
        RunResult {
            policy: self.abm.policy_name().to_string(),
            total_time: makespan,
            io_requests: state.io_requests(),
            loads_aborted: state.loads_aborted(),
            pages_read: state.pages_read(),
            bytes_read: state.pages_read() * self.model.page_size(),
            cpu_utilization,
            disk_utilization,
            peak_outstanding_io: self.scheduler.stats().peak_outstanding,
            queries: self.outcomes,
            stream_starts: self.stream_starts,
            stream_ends: self.stream_ends,
            trace: self.trace,
            depth_trace: self.depth_trace,
        }
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_stream_advance(&mut self, now: SimTime, stream: usize) {
        let index = self.stream_cursor[stream];
        let Some(spec) = self.streams[stream].get(index) else {
            return;
        };
        self.stream_cursor[stream] += 1;
        let (ranges, columns) = spec.plan.resolve(self.model);
        let id = self
            .abm
            .register_query(spec.label.clone(), ranges, columns, now);
        self.active.insert(
            id,
            ActiveQuery {
                stream,
                spec_index: index,
                submitted_at: now,
                processing: None,
            },
        );
        // An empty scan (e.g. a predicate no chunk matches) finishes immediately.
        if self.abm.is_query_finished(id) {
            self.finish_query(now, id);
        } else {
            self.try_dispatch(now, id);
        }
        self.kick_disk(now);
    }

    fn on_disk_done(&mut self, now: SimTime, chunk: ChunkId, ticket: u64) {
        // Commit through the plan/commit protocol: a completion whose load
        // was aborted mid-read (its last interested query detached) is
        // stale and must be dropped, not installed.
        let mut woken = std::mem::take(&mut self.wake_scratch);
        woken.clear();
        let decision = match self.scheduler.commit(&mut self.abm, chunk, ticket) {
            Some((decision, wake)) => {
                woken.extend_from_slice(wake);
                Some(decision)
            }
            None => None,
        };
        if self.config.record_trace {
            if let Some(decision) = decision {
                self.trace.record(now, chunk.index(), decision.trigger.0);
            }
        }
        for &q in &woken {
            // A woken query may still find nothing acceptable (e.g. `normal`
            // insists on in-order delivery); it simply stays blocked.
            if self.active.get(&q).is_some_and(|a| a.processing.is_none()) {
                self.try_dispatch(now, q);
            }
        }
        self.wake_scratch = woken;
        self.kick_disk(now);
    }

    fn on_cpu_done(&mut self, now: SimTime, job: JobId, epoch: u64) {
        if epoch != self.cpu_epoch {
            return; // Stale prediction: the job set changed since it was scheduled.
        }
        self.cpu.advance(now);
        let query = QueryId(job.0);
        let Some(active) = self.active.get_mut(&query) else {
            return;
        };
        let chunk = active
            .processing
            .take()
            .expect("CPU completion for an idle query");
        debug_assert!(
            self.cpu.is_done(job),
            "CPU completion fired early for {query:?}"
        );
        let spec = &self.streams[active.stream][active.spec_index];
        let work = SimDuration::from_secs_f64(spec.cpu_seconds_for(self.model.chunk_tuples(chunk)));
        self.cpu.complete_job(now, job, work);
        self.abm.release_chunk(query, chunk);

        // LIMIT-style early termination: a query that has processed its
        // chunk budget detaches mid-scan (cancelling any load it was the
        // last interested consumer of — see `finish_query`).
        let limit_hit = spec
            .limit_chunks
            .is_some_and(|limit| self.abm.state().query(query).processed >= limit);
        if limit_hit || self.abm.is_query_finished(query) {
            self.finish_query(now, query);
        } else {
            self.try_dispatch(now, query);
        }
        // Consumption changed starvation and residency interest: give the
        // disk a chance to schedule, and re-predict CPU completions.
        self.kick_disk(now);
        self.reschedule_cpu(now);
    }

    // ------------------------------------------------------------------
    // Actions.
    // ------------------------------------------------------------------

    /// Try to hand query `q` its next chunk; start a CPU job if successful.
    fn try_dispatch(&mut self, now: SimTime, q: QueryId) {
        let Some(chunk) = self.abm.acquire_chunk(q, now) else {
            return;
        };
        let active = self.active.get_mut(&q).expect("dispatching unknown query");
        debug_assert!(active.processing.is_none());
        active.processing = Some(chunk);
        let spec = &self.streams[active.stream][active.spec_index];
        let work = SimDuration::from_secs_f64(spec.cpu_seconds_for(self.model.chunk_tuples(chunk)));
        self.cpu.add_job(now, JobId(q.0), work);
        self.reschedule_cpu(now);
    }

    /// If the pipeline has room, ask the scheduler for a burst of loads and
    /// submit each to the storage backend.
    fn kick_disk(&mut self, now: SimTime) {
        let mut plans = std::mem::take(&mut self.plan_scratch);
        plans.clear();
        self.scheduler.plan(&mut self.abm, now, &mut plans);
        for plan in &plans {
            let completed = self.backend.submit(now, &plan.regions);
            debug_assert!(completed > now, "a load must take time");
            self.queue.schedule(
                completed,
                Event::DiskDone {
                    chunk: plan.decision.chunk.index(),
                    ticket: plan.ticket,
                },
            );
        }
        if self.config.record_trace && !plans.is_empty() {
            self.backend.sample_depths(now, &mut self.depth_trace);
        }
        self.plan_scratch = plans;
    }

    /// Re-predict the next CPU completion after any change to the job set.
    fn reschedule_cpu(&mut self, now: SimTime) {
        self.cpu.advance(now);
        self.cpu_epoch += 1;
        if let Some((at, job)) = self.cpu.next_completion() {
            self.queue.schedule(
                at,
                Event::CpuDone {
                    job,
                    epoch: self.cpu_epoch,
                },
            );
        }
    }

    /// Record the outcome of a finished (or limit-terminated) query and
    /// start its stream's next one.
    fn finish_query(&mut self, now: SimTime, q: QueryId) {
        let active = self.active.remove(&q).expect("finishing unknown query");
        let state = self
            .abm
            .finish_query(q)
            .expect("the sim closes each query exactly once");
        // The detach may have cancelled in-flight loads this query was the
        // last interested consumer of; forget them in the scheduler so their
        // pending DiskDone events are recognized as stale.
        for &(chunk, ticket) in self.abm.aborted_loads() {
            self.scheduler.cancel(chunk, ticket);
        }
        self.outcomes.push(QueryOutcome {
            label: state.label.clone(),
            stream: active.stream,
            query_id: q.0,
            submitted_at: active.submitted_at,
            finished_at: now,
            chunks: state.processed,
            ios_triggered: state.ios_triggered,
            blocked: state.total_blocked,
        });
        self.stream_ends[active.stream] = now;
        if self.stream_cursor[active.stream] < self.streams[active.stream].len() {
            self.queue.schedule(
                now,
                Event::StreamAdvance {
                    stream: active.stream,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colset::ColSet;
    use cscan_storage::{ColumnId, ScanRanges};

    /// A small NSM table: 64 chunks, 100k tuples and 256 pages (16 MiB) each.
    fn small_model() -> TableModel {
        TableModel::nsm_uniform(64, 100_000, 256)
    }

    fn fast(label: &str, ranges: Option<ScanRanges>) -> QuerySpec {
        match ranges {
            Some(r) => QuerySpec::range_scan(label, r, 20_000_000.0),
            None => QuerySpec::full_scan(label, 20_000_000.0),
        }
    }

    fn slow(label: &str, ranges: Option<ScanRanges>) -> QuerySpec {
        match ranges {
            Some(r) => QuerySpec::range_scan(label, r, 1_000_000.0),
            None => QuerySpec::full_scan(label, 1_000_000.0),
        }
    }

    fn run(policy: PolicyKind, streams: Vec<Vec<QuerySpec>>, buffer_chunks: u64) -> RunResult {
        let mut sim = Simulation::new(
            small_model(),
            policy,
            SimConfig::default()
                .with_buffer_chunks(buffer_chunks)
                .with_trace(true),
        );
        sim.submit_streams(streams);
        sim.run()
    }

    #[test]
    fn single_full_scan_is_io_bound_and_reads_everything_once() {
        for policy in PolicyKind::ALL {
            let r = run(policy, vec![vec![fast("F-100", None)]], 16);
            assert_eq!(r.queries.len(), 1, "{policy}");
            assert_eq!(r.io_requests, 64, "{policy}: every chunk read exactly once");
            assert_eq!(r.pages_read, 64 * 256, "{policy}");
            // ~1 GiB at ~205 MiB/s is about 5 seconds.
            let latency = r.queries[0].latency().as_secs_f64();
            assert!(
                latency > 3.0 && latency < 12.0,
                "{policy}: latency {latency}"
            );
            assert!(r.trace.len() == 64, "{policy}");
        }
    }

    #[test]
    fn identical_concurrent_scans_share_io_except_normal() {
        // Two full scans, the second starting 3 seconds (≈ 38 chunks) after
        // the first with a 16-chunk buffer.  The cooperative policies share
        // everything that can still be shared; `normal` shares essentially
        // nothing because the second scan starts again from chunk 0.
        let streams = vec![vec![fast("F-100", None)], vec![fast("F-100", None)]];
        let mut io = std::collections::HashMap::new();
        for policy in PolicyKind::ALL {
            let r = run(policy, streams.clone(), 16);
            assert_eq!(r.queries.len(), 2);
            io.insert(policy, r.io_requests);
        }
        for policy in [
            PolicyKind::Attach,
            PolicyKind::Elevator,
            PolicyKind::Relevance,
        ] {
            assert!(
                io[&policy] < io[&PolicyKind::Normal],
                "{policy}: {} vs normal {}",
                io[&policy],
                io[&PolicyKind::Normal]
            );
            assert!(
                io[&policy] <= 110,
                "{policy}: sharing bound, got {}",
                io[&policy]
            );
        }
        assert!(
            io[&PolicyKind::Normal] >= 115,
            "normal should nearly double the I/O, got {}",
            io[&PolicyKind::Normal]
        );
        // Relevance additionally reuses the still-buffered chunks the first
        // scan left behind, so it needs the fewest reads of all.
        assert!(io[&PolicyKind::Relevance] <= io[&PolicyKind::Attach]);
        assert!(io[&PolicyKind::Relevance] <= io[&PolicyKind::Elevator]);
    }

    #[test]
    fn relevance_beats_normal_on_mixed_load() {
        let mix = |i: usize| {
            vec![
                fast(
                    "F-25",
                    Some(ScanRanges::single(
                        (i as u32 * 7) % 40,
                        (i as u32 * 7) % 40 + 16,
                    )),
                ),
                slow(
                    "S-25",
                    Some(ScanRanges::single(
                        (i as u32 * 11) % 40,
                        (i as u32 * 11) % 40 + 16,
                    )),
                ),
            ]
        };
        let streams: Vec<Vec<QuerySpec>> = (0..6).map(mix).collect();
        let normal = run(PolicyKind::Normal, streams.clone(), 8);
        let relevance = run(PolicyKind::Relevance, streams, 8);
        assert!(
            relevance.io_requests < normal.io_requests,
            "relevance {} vs normal {}",
            relevance.io_requests,
            normal.io_requests
        );
        assert!(
            relevance.avg_stream_time() <= normal.avg_stream_time() * 1.10,
            "relevance {} vs normal {}",
            relevance.avg_stream_time(),
            normal.avg_stream_time()
        );
    }

    #[test]
    fn streams_run_queries_back_to_back() {
        let r = run(
            PolicyKind::Relevance,
            vec![vec![
                fast("F-10", Some(ScanRanges::single(0, 6))),
                fast("F-10b", Some(ScanRanges::single(30, 36))),
            ]],
            16,
        );
        assert_eq!(r.queries.len(), 2);
        let first = &r.queries[0];
        let second = &r.queries[1];
        assert_eq!(first.label, "F-10");
        assert_eq!(second.label, "F-10b");
        assert_eq!(
            second.submitted_at, first.finished_at,
            "the second query starts exactly when the first finishes"
        );
        assert_eq!(r.stream_ends[0], second.finished_at);
    }

    #[test]
    fn stagger_delays_later_streams() {
        let r = run(
            PolicyKind::Elevator,
            vec![
                vec![fast("F-10", Some(ScanRanges::single(0, 6)))],
                vec![fast("F-10", Some(ScanRanges::single(0, 6)))],
            ],
            16,
        );
        assert_eq!(r.stream_starts[0], SimTime::ZERO);
        assert_eq!(r.stream_starts[1], SimTime::from_secs(3));
        let late_query = r.queries.iter().find(|q| q.stream == 1).unwrap();
        assert_eq!(late_query.submitted_at, SimTime::from_secs(3));
    }

    #[test]
    fn cpu_bound_queries_saturate_the_cpu() {
        // Very slow queries on a single core: the CPU is the bottleneck and
        // the disk is mostly idle.
        let very_slow = QuerySpec::range_scan("S-50", ScanRanges::single(0, 32), 200_000.0);
        let mut sim = Simulation::new(
            small_model(),
            PolicyKind::Relevance,
            SimConfig::default().with_buffer_chunks(16).with_cores(1),
        );
        sim.submit_streams(vec![vec![very_slow.clone()], vec![very_slow]]);
        let r = sim.run();
        assert!(
            r.cpu_utilization > 0.7,
            "cpu_utilization {}",
            r.cpu_utilization
        );
        assert!(
            r.disk_utilization < 0.5,
            "disk_utilization {}",
            r.disk_utilization
        );
        assert!(r.cpu_utilization > r.disk_utilization);
    }

    /// Regression test for the ROADMAP's load-aborting item, simulation
    /// side: a LIMIT-style query that detaches mid-scan cancels the
    /// prefetched loads in flight on its behalf; their stale `DiskDone`
    /// events are dropped by the ticket check instead of installing dead
    /// chunks (or panicking the scheduler).
    #[test]
    fn chunk_limited_query_aborts_inflight_loads() {
        let mut sim = Simulation::new(
            small_model(),
            PolicyKind::Relevance,
            SimConfig::default()
                .with_buffer_chunks(16)
                .with_outstanding_io(8),
        );
        sim.submit_stream(vec![
            QuerySpec::full_scan("L-2", 20_000_000.0).with_chunk_limit(2)
        ]);
        let r = sim.run();
        assert_eq!(r.queries.len(), 1);
        assert_eq!(r.queries[0].chunks, 2, "the limit stops the scan early");
        assert!(
            r.loads_aborted > 0,
            "the 8-deep pipeline had prefetches in flight to cancel"
        );
        assert!(
            r.io_requests < 16,
            "an aborted scan must not read on: {} loads",
            r.io_requests
        );
        // A follow-up run on the same config still works with mixed streams.
        let mut sim = Simulation::new(
            small_model(),
            PolicyKind::Relevance,
            SimConfig::default()
                .with_buffer_chunks(16)
                .with_outstanding_io(4),
        );
        sim.submit_streams(vec![
            vec![QuerySpec::full_scan("L-3", 20_000_000.0).with_chunk_limit(3)],
            vec![fast("F-100", None)],
        ]);
        let r = sim.run();
        assert_eq!(r.queries.len(), 2);
        let limited = r.queries.iter().find(|q| q.label == "L-3").unwrap();
        assert_eq!(limited.chunks, 3);
        let full = r.queries.iter().find(|q| q.label == "F-100").unwrap();
        assert_eq!(full.chunks, 64, "the surviving scan still reads everything");
    }

    #[test]
    fn limited_runs_are_deterministic() {
        let run_once = || {
            let mut sim = Simulation::new(
                small_model(),
                PolicyKind::Relevance,
                SimConfig::default()
                    .with_buffer_chunks(8)
                    .with_outstanding_io(4),
            );
            sim.submit_streams(vec![
                vec![QuerySpec::full_scan("L-5", 5_000_000.0).with_chunk_limit(5)],
                vec![slow("S-50", Some(ScanRanges::single(16, 48)))],
            ]);
            sim.run()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.io_requests, b.io_requests);
        assert_eq!(a.loads_aborted, b.loads_aborted);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn empty_scan_completes_immediately() {
        let mut sim = Simulation::new(small_model(), PolicyKind::Relevance, SimConfig::default());
        sim.submit_stream(vec![QuerySpec::range_scan(
            "empty",
            ScanRanges::empty(),
            1e6,
        )]);
        let r = sim.run();
        assert_eq!(r.queries.len(), 1);
        assert_eq!(r.queries[0].chunks, 0);
        assert_eq!(r.io_requests, 0);
    }

    #[test]
    fn standalone_latency_helper() {
        let lat = Simulation::standalone_latency(
            &small_model(),
            PolicyKind::Relevance,
            SimConfig::default(),
            &fast("F-100", None),
        );
        assert!(lat > 1.0, "a cold full scan takes seconds, got {lat}");
    }

    #[test]
    fn dsm_queries_only_read_their_columns() {
        let model = TableModel::dsm_uniform(32, 100_000, &[4, 4, 64, 64]);
        let narrow = ColSet::from_columns([ColumnId::new(0), ColumnId::new(1)]);
        let mut sim = Simulation::new(
            model.clone(),
            PolicyKind::Relevance,
            SimConfig::default().with_buffer_fraction(0.25),
        );
        sim.submit_stream(vec![
            QuerySpec::full_scan("narrow", 10_000_000.0).with_columns(narrow)
        ]);
        let r = sim.run();
        assert_eq!(r.io_requests, 32);
        assert_eq!(r.pages_read, 32 * 8, "only the two narrow columns are read");
    }

    #[test]
    fn multi_outstanding_overlaps_arm_bound_loads() {
        // Chunk-granularity striping: every 16 MiB chunk lives on one arm of
        // a 4-spindle array, so a single outstanding load (the paper's main
        // loop) is bound to ~55 MB/s while an 8-deep pipeline spreads across
        // the arms.  Eight fast scans of the whole 1 GiB table keep the
        // scheduler supplied with candidates.
        use cscan_simdisk::{DiskModel, RaidConfig, MIB};
        let raid = RaidConfig {
            spindles: 4,
            stripe_unit: 16 * MIB,
            disk: DiskModel::default(),
        };
        let run_with = |k: usize| {
            let mut sim = Simulation::new(
                small_model(),
                PolicyKind::Relevance,
                SimConfig::default()
                    .with_buffer_chunks(16)
                    .with_raid(raid)
                    .with_outstanding_io(k)
                    .with_trace(true)
                    .with_stagger(SimDuration::from_millis(100)),
            );
            sim.submit_streams((0..8).map(|_| vec![fast("F-100", None)]).collect());
            sim.run()
        };
        let k1 = run_with(1);
        let k8 = run_with(8);
        assert_eq!(k1.peak_outstanding_io, 1);
        assert!(
            k8.peak_outstanding_io > 1,
            "the pipeline never filled: peak {}",
            k8.peak_outstanding_io
        );
        assert!(k8.depth_trace.max_depth() >= 1, "queue depths were sampled");
        let t1 = k1.total_time.as_secs_f64();
        let t8 = k8.total_time.as_secs_f64();
        assert!(
            t8 < t1 * 0.75,
            "8 outstanding loads should clearly beat 1 on a 4-arm array: {t1}s vs {t8}s"
        );
        // Both deliver every query's full scan.
        assert_eq!(k1.queries.len(), 8);
        assert_eq!(k8.queries.len(), 8);
    }

    #[test]
    fn multi_outstanding_runs_are_deterministic() {
        use cscan_simdisk::{DiskModel, RaidConfig, MIB};
        let raid = RaidConfig {
            spindles: 4,
            stripe_unit: 16 * MIB,
            disk: DiskModel::default(),
        };
        let run_once = || {
            let mut sim = Simulation::new(
                small_model(),
                PolicyKind::Relevance,
                SimConfig::default()
                    .with_buffer_chunks(8)
                    .with_raid(raid)
                    .with_outstanding_io(4),
            );
            sim.submit_streams(vec![
                vec![fast("F-50", Some(ScanRanges::single(0, 32)))],
                vec![slow("S-25", Some(ScanRanges::single(10, 26)))],
                vec![slow("S-50", Some(ScanRanges::single(16, 48)))],
            ]);
            sim.run()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.io_requests, b.io_requests);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.peak_outstanding_io, b.peak_outstanding_io);
        assert_eq!(
            a.queries.iter().map(|q| q.finished_at).collect::<Vec<_>>(),
            b.queries.iter().map(|q| q.finished_at).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_policy_completes_with_outstanding_io() {
        // The pipelining must be safe for all four policies, not just
        // relevance (the default next_load_pipelined path).
        for policy in PolicyKind::ALL {
            let r = {
                let mut sim = Simulation::new(
                    small_model(),
                    policy,
                    SimConfig::default()
                        .with_buffer_chunks(16)
                        .with_outstanding_io(4),
                );
                sim.submit_streams(vec![
                    vec![fast("F-25", Some(ScanRanges::single(0, 16)))],
                    vec![fast("F-25", Some(ScanRanges::single(8, 24)))],
                ]);
                sim.run()
            };
            assert_eq!(r.queries.len(), 2, "{policy}");
            assert!(r.io_requests >= 16, "{policy}");
        }
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let streams = vec![
            vec![
                fast("F-50", Some(ScanRanges::single(0, 32))),
                slow("S-25", Some(ScanRanges::single(10, 26))),
            ],
            vec![slow("S-50", Some(ScanRanges::single(16, 48)))],
        ];
        let a = run(PolicyKind::Relevance, streams.clone(), 8);
        let b = run(PolicyKind::Relevance, streams, 8);
        assert_eq!(a.io_requests, b.io_requests);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(
            a.queries.iter().map(|q| q.finished_at).collect::<Vec<_>>(),
            b.queries.iter().map(|q| q.finished_at).collect::<Vec<_>>()
        );
    }

    #[test]
    fn elevator_has_fewest_ios_on_staggered_full_scans() {
        let streams: Vec<Vec<QuerySpec>> = (0..4).map(|_| vec![slow("S-100", None)]).collect();
        let elevator = run(PolicyKind::Elevator, streams.clone(), 8);
        let normal = run(PolicyKind::Normal, streams, 8);
        assert!(
            elevator.io_requests <= normal.io_requests,
            "elevator {} vs normal {}",
            elevator.io_requests,
            normal.io_requests
        );
    }
}
