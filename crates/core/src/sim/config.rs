//! Simulation configuration.

use cscan_simdisk::{DiskModel, RaidConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// How the buffer pool size is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BufferSpec {
    /// Absolute number of pages.
    Pages(u64),
    /// Absolute number of bytes (rounded down to whole pages).
    Bytes(u64),
    /// Multiples of the table's average chunk size (the paper quotes buffer
    /// sizes as "64 chunks (1GB)").
    Chunks(u64),
    /// A fraction of the full table size (the buffer-scaling experiment of
    /// Figure 6 uses 12.5% … 100%).
    FractionOfTable(f64),
}

/// Configuration of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of CPU cores shared by all running queries.
    pub cores: usize,
    /// Disk model servicing chunk loads (used when `raid` is `None`: the
    /// array is then modelled as one logical device with the aggregate
    /// bandwidth, as in the paper's original runs).
    pub disk: DiskModel,
    /// Explicit multi-spindle array.  When set, every load's regions are
    /// routed to per-spindle submission queues and `max_outstanding_io`
    /// decides how many loads can overlap across the arms.
    pub raid: Option<RaidConfig>,
    /// Outstanding chunk loads the I/O scheduler keeps in flight (K).  The
    /// default of 1 reproduces the paper's sequential main loop exactly.
    pub max_outstanding_io: usize,
    /// Buffer pool size.
    pub buffer: BufferSpec,
    /// Delay between the start of consecutive query streams (3 s in the paper).
    pub stream_stagger: SimDuration,
    /// Whether to record a chunk-access trace (Figure 4) and, for RAID
    /// configurations, the per-spindle queue-depth trace.  Traces cost
    /// memory proportional to the number of I/Os, so sweeps turn them off.
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 2,
            disk: DiskModel::paper_raid(),
            raid: None,
            max_outstanding_io: 1,
            buffer: BufferSpec::Chunks(64),
            stream_stagger: SimDuration::from_secs(3),
            record_trace: false,
        }
    }
}

impl SimConfig {
    /// Sets the buffer pool size to `chunks` average-sized chunks.
    pub fn with_buffer_chunks(mut self, chunks: u64) -> Self {
        self.buffer = BufferSpec::Chunks(chunks);
        self
    }

    /// Sets the buffer pool size in bytes.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer = BufferSpec::Bytes(bytes);
        self
    }

    /// Sets the buffer pool size as a fraction of the table size.
    pub fn with_buffer_fraction(mut self, fraction: f64) -> Self {
        self.buffer = BufferSpec::FractionOfTable(fraction);
        self
    }

    /// Sets the number of CPU cores.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the disk model.
    pub fn with_disk(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// Models the storage as an explicit striped array with per-spindle
    /// submission queues instead of one aggregate logical device.
    pub fn with_raid(mut self, raid: RaidConfig) -> Self {
        self.raid = Some(raid);
        self
    }

    /// Sets the number of chunk loads the I/O scheduler keeps outstanding
    /// (clamped to at least 1).
    pub fn with_outstanding_io(mut self, k: usize) -> Self {
        self.max_outstanding_io = k.max(1);
        self
    }

    /// Sets the stream stagger delay.
    pub fn with_stagger(mut self, stagger: SimDuration) -> Self {
        self.stream_stagger = stagger;
        self
    }

    /// Enables or disables trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Resolves the buffer specification to a concrete page count for `model`.
    ///
    /// The result is always at least one average chunk's worth of pages so
    /// that a load can ever fit.
    pub fn buffer_pages(&self, model: &crate::model::TableModel) -> u64 {
        let avg_chunk_pages = model.avg_chunk_pages().ceil() as u64;
        let total_pages = model.total_pages(model.all_columns());
        let pages = match self.buffer {
            BufferSpec::Pages(p) => p,
            BufferSpec::Bytes(b) => b / model.page_size(),
            BufferSpec::Chunks(c) => c * avg_chunk_pages,
            BufferSpec::FractionOfTable(f) => (total_pages as f64 * f.clamp(0.0, 10.0)) as u64,
        };
        pages.max(avg_chunk_pages).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TableModel;

    #[test]
    fn buffer_resolution() {
        let model = TableModel::nsm_uniform(100, 1000, 256); // 25_600 pages total
        let cfg = SimConfig::default();
        assert_eq!(cfg.with_buffer_chunks(10).buffer_pages(&model), 2560);
        // 100 pages requested, clamped up to one 256-page chunk.
        assert_eq!(
            cfg.with_buffer_bytes(64 * 1024 * 100).buffer_pages(&model),
            256
        );
        assert_eq!(cfg.with_buffer_fraction(0.5).buffer_pages(&model), 12_800);
        // Pages spec passes through, but never below one chunk.
        let tiny = SimConfig {
            buffer: BufferSpec::Pages(3),
            ..SimConfig::default()
        };
        assert_eq!(tiny.buffer_pages(&model), 256);
    }

    #[test]
    fn builder_methods() {
        let cfg = SimConfig::default()
            .with_cores(4)
            .with_stagger(SimDuration::from_secs(1))
            .with_trace(true);
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.stream_stagger, SimDuration::from_secs(1));
        assert!(cfg.record_trace);
    }

    #[test]
    fn default_matches_paper_setup() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.cores, 2, "dual-CPU Opteron");
        assert_eq!(cfg.stream_stagger, SimDuration::from_secs(3));
        assert_eq!(cfg.buffer, BufferSpec::Chunks(64), "1 GB of 16 MB chunks");
        assert_eq!(cfg.max_outstanding_io, 1, "the paper's sequential loop");
        assert!(cfg.raid.is_none(), "one aggregate logical device");
    }

    #[test]
    fn raid_and_outstanding_builders() {
        let cfg = SimConfig::default()
            .with_raid(RaidConfig::default())
            .with_outstanding_io(8);
        assert_eq!(cfg.raid.unwrap().spindles, 4);
        assert_eq!(cfg.max_outstanding_io, 8);
        assert_eq!(
            SimConfig::default()
                .with_outstanding_io(0)
                .max_outstanding_io,
            1,
            "K is clamped to at least one"
        );
    }
}
