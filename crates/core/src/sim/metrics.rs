//! Results of a simulated run.
//!
//! [`RunResult`] carries everything the paper's tables report: per-query
//! latencies, per-stream completion times, total (makespan) time, CPU
//! utilization and the number of chunk-sized I/O requests, plus the raw
//! chunk-access trace used for Figure 4.

use cscan_engine::Summary;
use cscan_simdisk::{IoTrace, QueueDepthTrace, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The outcome of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The query's label (e.g. `"F-10"`).
    pub label: String,
    /// Index of the stream the query belonged to.
    pub stream: usize,
    /// Internal query id assigned by the ABM.
    pub query_id: u64,
    /// Time the query entered the system.
    pub submitted_at: SimTime,
    /// Time the query finished processing its last chunk.
    pub finished_at: SimTime,
    /// Number of chunks the query processed (equals the request size unless
    /// a chunk limit terminated the query early).
    pub chunks: u32,
    /// Number of chunk loads issued with this query as the trigger.
    pub ios_triggered: u64,
    /// Total time the query spent blocked waiting for data.
    pub blocked: SimDuration,
}

impl QueryOutcome {
    /// End-to-end latency of the query.
    pub fn latency(&self) -> SimDuration {
        self.finished_at.duration_since(self.submitted_at)
    }
}

/// The outcome of a full simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Name of the scheduling policy that produced this run.
    pub policy: String,
    /// Completion time of the whole run (last query finish).
    pub total_time: SimDuration,
    /// Number of chunk-granularity I/O requests issued.
    pub io_requests: u64,
    /// Chunk loads cancelled mid-read because their last interested query
    /// detached (LIMIT-terminated scans exercise this).
    pub loads_aborted: u64,
    /// Pages read from disk.
    pub pages_read: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// CPU utilization over the makespan, in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Fraction of the makespan the storage was busy, in `[0, 1]`
    /// (normalized by the number of spindles for RAID configurations).
    pub disk_utilization: f64,
    /// Most chunk loads ever simultaneously in flight (1 for the paper's
    /// sequential main loop; up to `max_outstanding_io` with the async
    /// scheduler).
    pub peak_outstanding_io: usize,
    /// Per-query outcomes, in completion order.
    pub queries: Vec<QueryOutcome>,
    /// Per-stream start times.
    pub stream_starts: Vec<SimTime>,
    /// Per-stream completion times (finish of the stream's last query).
    pub stream_ends: Vec<SimTime>,
    /// Chunk-access trace (empty unless tracing was enabled).
    pub trace: IoTrace,
    /// Per-spindle queue-depth samples at submission times (empty unless
    /// tracing was enabled).
    pub depth_trace: QueueDepthTrace,
}

impl RunResult {
    /// Per-stream running times.
    pub fn stream_times(&self) -> Vec<SimDuration> {
        self.stream_starts
            .iter()
            .zip(&self.stream_ends)
            .map(|(&s, &e)| e.duration_since(s))
            .collect()
    }

    /// Average stream running time — the paper's throughput metric.
    pub fn avg_stream_time(&self) -> f64 {
        let times = self.stream_times();
        if times.is_empty() {
            return 0.0;
        }
        times.iter().map(|t| t.as_secs_f64()).sum::<f64>() / times.len() as f64
    }

    /// Average query latency in seconds.
    pub fn avg_latency(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.latency().as_secs_f64())
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Average *normalized* latency: each query's latency divided by its
    /// standalone cold run time (`base_times`, keyed by label) — the paper's
    /// latency metric.  Queries whose label has no base time are skipped.
    pub fn avg_normalized_latency(&self, base_times: &HashMap<String, f64>) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for q in &self.queries {
            if let Some(&base) = base_times.get(&q.label) {
                if base > 0.0 {
                    sum += q.latency().as_secs_f64() / base;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Latency summary (mean / stddev / count) per query label, sorted by label.
    pub fn latency_by_label(&self) -> Vec<(String, Summary)> {
        let mut map: HashMap<&str, Summary> = HashMap::new();
        for q in &self.queries {
            map.entry(&q.label)
                .or_default()
                .add(q.latency().as_secs_f64());
        }
        let mut out: Vec<(String, Summary)> =
            map.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// I/O count per query label, sorted by label.
    pub fn ios_by_label(&self) -> Vec<(String, u64)> {
        let mut map: HashMap<&str, u64> = HashMap::new();
        for q in &self.queries {
            *map.entry(&q.label).or_insert(0) += q.ios_triggered;
        }
        let mut out: Vec<(String, u64)> =
            map.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Average latency for one query label, if any such query ran.
    pub fn avg_latency_for(&self, label: &str) -> Option<f64> {
        let matching: Vec<f64> = self
            .queries
            .iter()
            .filter(|q| q.label == label)
            .map(|q| q.latency().as_secs_f64())
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching.iter().sum::<f64>() / matching.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, stream: usize, submit: u64, finish: u64) -> QueryOutcome {
        QueryOutcome {
            label: label.to_string(),
            stream,
            query_id: 0,
            submitted_at: SimTime::from_secs(submit),
            finished_at: SimTime::from_secs(finish),
            chunks: 10,
            ios_triggered: 5,
            blocked: SimDuration::ZERO,
        }
    }

    fn result() -> RunResult {
        RunResult {
            policy: "relevance".into(),
            total_time: SimDuration::from_secs(30),
            io_requests: 100,
            loads_aborted: 0,
            pages_read: 1000,
            bytes_read: 1000 * 65536,
            cpu_utilization: 0.8,
            disk_utilization: 0.5,
            peak_outstanding_io: 1,
            queries: vec![
                outcome("F-10", 0, 0, 10),
                outcome("F-10", 1, 3, 23),
                outcome("S-50", 0, 10, 30),
            ],
            stream_starts: vec![SimTime::ZERO, SimTime::from_secs(3)],
            stream_ends: vec![SimTime::from_secs(30), SimTime::from_secs(23)],
            trace: IoTrace::new(),
            depth_trace: QueueDepthTrace::new(),
        }
    }

    #[test]
    fn stream_and_latency_aggregates() {
        let r = result();
        assert_eq!(
            r.stream_times(),
            vec![SimDuration::from_secs(30), SimDuration::from_secs(20)]
        );
        assert!((r.avg_stream_time() - 25.0).abs() < 1e-9);
        assert!((r.avg_latency() - (10.0 + 20.0 + 20.0) / 3.0).abs() < 1e-9);
        assert_eq!(r.queries[0].latency(), SimDuration::from_secs(10));
    }

    #[test]
    fn normalized_latency_uses_base_times() {
        let r = result();
        let mut base = HashMap::new();
        base.insert("F-10".to_string(), 5.0);
        base.insert("S-50".to_string(), 10.0);
        // (10/5 + 20/5 + 20/10) / 3 = (2 + 4 + 2) / 3
        assert!((r.avg_normalized_latency(&base) - 8.0 / 3.0).abs() < 1e-9);
        // Missing base times are skipped.
        let mut partial = HashMap::new();
        partial.insert("S-50".to_string(), 10.0);
        assert!((r.avg_normalized_latency(&partial) - 2.0).abs() < 1e-9);
        assert_eq!(r.avg_normalized_latency(&HashMap::new()), 0.0);
    }

    #[test]
    fn per_label_breakdowns() {
        let r = result();
        let by_label = r.latency_by_label();
        assert_eq!(by_label.len(), 2);
        assert_eq!(by_label[0].0, "F-10");
        assert_eq!(by_label[0].1.count(), 2);
        assert!((by_label[0].1.mean() - 15.0).abs() < 1e-9);
        let ios = r.ios_by_label();
        assert_eq!(ios, vec![("F-10".to_string(), 10), ("S-50".to_string(), 5)]);
        assert_eq!(r.avg_latency_for("S-50"), Some(20.0));
        assert_eq!(r.avg_latency_for("nope"), None);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = RunResult {
            policy: "normal".into(),
            total_time: SimDuration::ZERO,
            io_requests: 0,
            loads_aborted: 0,
            pages_read: 0,
            bytes_read: 0,
            cpu_utilization: 0.0,
            disk_utilization: 0.0,
            peak_outstanding_io: 0,
            queries: vec![],
            stream_starts: vec![],
            stream_ends: vec![],
            trace: IoTrace::new(),
            depth_trace: QueueDepthTrace::new(),
        };
        assert_eq!(r.avg_stream_time(), 0.0);
        assert_eq!(r.avg_latency(), 0.0);
        assert!(r.latency_by_label().is_empty());
    }
}
