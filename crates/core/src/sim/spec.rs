//! Query and stream specifications for simulated runs.

use crate::colset::ColSet;
use crate::cscan::CScanPlan;
use cscan_storage::ScanRanges;
use serde::{Deserialize, Serialize};

/// Specification of one query inside a stream: a [`CScanPlan`] (the shared
/// query-description type — *what* the query reads) plus a processing
/// speed (*how fast* it can consume data, in tuples per second of
/// dedicated-core CPU time).
///
/// The only thing that matters to the I/O scheduling experiments is the
/// plan and the speed; the actual relational work is irrelevant and is
/// exercised separately by the `cscan-exec` crate.  `QuerySpec` derefs to
/// its plan, so `spec.label`, `spec.ranges`, `spec.columns` and
/// `spec.limit_chunks` all read through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// What the query reads: the same plan type the threaded front-end and
    /// the wire protocol use.
    pub plan: CScanPlan,
    /// Processing speed in tuples per second of dedicated-core CPU time.
    pub tuples_per_sec: f64,
}

impl std::ops::Deref for QuerySpec {
    type Target = CScanPlan;

    fn deref(&self) -> &CScanPlan {
        &self.plan
    }
}

impl std::ops::DerefMut for QuerySpec {
    fn deref_mut(&mut self) -> &mut CScanPlan {
        &mut self.plan
    }
}

impl QuerySpec {
    /// Wraps an already-built plan with a processing speed.
    pub fn from_plan(plan: CScanPlan, tuples_per_sec: f64) -> Self {
        assert!(tuples_per_sec > 0.0, "processing speed must be positive");
        Self {
            plan,
            tuples_per_sec,
        }
    }

    /// A scan over explicit ranges with the given processing speed.
    pub fn range_scan(label: impl Into<String>, ranges: ScanRanges, tuples_per_sec: f64) -> Self {
        Self::from_plan(
            CScanPlan::new(label, ranges, ColSet::empty()),
            tuples_per_sec,
        )
    }

    /// A full-table scan with the given processing speed.
    pub fn full_scan(label: impl Into<String>, tuples_per_sec: f64) -> Self {
        Self::from_plan(
            CScanPlan::full_table(label, ColSet::empty()),
            tuples_per_sec,
        )
    }

    /// Restricts the query to a column set (DSM experiments).
    pub fn with_columns(mut self, columns: ColSet) -> Self {
        self.plan = self.plan.with_columns(columns);
        self
    }

    /// Stops the query after it has processed `chunks` chunks (LIMIT-style
    /// early termination; the query detaches mid-scan).
    pub fn with_chunk_limit(mut self, chunks: u32) -> Self {
        self.plan = self.plan.with_chunk_limit(chunks);
        self
    }

    /// Renames the query.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.plan = self.plan.with_label(label);
        self
    }

    /// CPU time (seconds of a dedicated core) needed to process `tuples` tuples.
    pub fn cpu_seconds_for(&self, tuples: u64) -> f64 {
        tuples as f64 / self.tuples_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_storage::ColumnId;

    #[test]
    fn constructors() {
        let q = QuerySpec::full_scan("F-100", 10_000_000.0);
        assert_eq!(q.label, "F-100");
        assert!(q.ranges.is_none());
        assert!(q.columns.is_empty());
        let r = QuerySpec::range_scan("F-10", ScanRanges::single(0, 10), 1e6)
            .with_columns(ColSet::from_columns([ColumnId::new(2)]))
            .with_label("renamed");
        assert_eq!(r.label, "renamed");
        assert_eq!(r.ranges.as_ref().unwrap().num_chunks(), 10);
        assert_eq!(r.columns.len(), 1);
    }

    #[test]
    fn spec_shares_the_plan_type() {
        let plan = CScanPlan::full_table("shared", ColSet::first_n(2)).with_chunk_limit(4);
        let spec = QuerySpec::from_plan(plan.clone(), 1e6);
        assert_eq!(spec.plan, plan);
        // Deref lets spec read exactly what a threaded CScan would.
        assert_eq!(spec.limit_chunks, Some(4));
        assert_eq!(spec.columns, ColSet::first_n(2));
    }

    #[test]
    fn chunk_limit_builder() {
        let q = QuerySpec::full_scan("L-2", 1e6).with_chunk_limit(2);
        assert_eq!(q.limit_chunks, Some(2));
        assert_eq!(QuerySpec::full_scan("F", 1e6).limit_chunks, None);
    }

    #[test]
    fn cpu_cost_scales_with_tuples() {
        let q = QuerySpec::full_scan("S", 2_000_000.0);
        assert!((q.cpu_seconds_for(1_000_000) - 0.5).abs() < 1e-12);
        assert_eq!(q.cpu_seconds_for(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_rejected() {
        QuerySpec::full_scan("bad", 0.0);
    }
}
