//! Query and stream specifications for simulated runs.

use crate::colset::ColSet;
use cscan_storage::ScanRanges;
use serde::{Deserialize, Serialize};

/// Specification of one query inside a stream.
///
/// The only thing that matters to the I/O scheduling experiments is *what*
/// the query reads (ranges, columns) and *how fast* it can consume data
/// (tuples per second of dedicated-core CPU time); the actual relational
/// work is irrelevant and is exercised separately by the `cscan-exec` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Label used in reports (e.g. `"F-10"` for a FAST 10% scan).
    pub label: String,
    /// The chunk ranges to scan; `None` means the full table.
    pub ranges: Option<ScanRanges>,
    /// The columns to read; `None` means all columns.
    pub columns: Option<ColSet>,
    /// Processing speed in tuples per second of dedicated-core CPU time.
    pub tuples_per_sec: f64,
    /// Stop after processing this many chunks (a `LIMIT`-style early
    /// termination); `None` runs the scan to completion.  A limited query
    /// detaches mid-scan, which exercises the ABM's load-abort path: loads
    /// in flight solely on its behalf are cancelled.
    pub limit_chunks: Option<u32>,
}

impl QuerySpec {
    /// A scan over explicit ranges with the given processing speed.
    pub fn range_scan(label: impl Into<String>, ranges: ScanRanges, tuples_per_sec: f64) -> Self {
        assert!(tuples_per_sec > 0.0, "processing speed must be positive");
        Self {
            label: label.into(),
            ranges: Some(ranges),
            columns: None,
            tuples_per_sec,
            limit_chunks: None,
        }
    }

    /// A full-table scan with the given processing speed.
    pub fn full_scan(label: impl Into<String>, tuples_per_sec: f64) -> Self {
        assert!(tuples_per_sec > 0.0, "processing speed must be positive");
        Self {
            label: label.into(),
            ranges: None,
            columns: None,
            tuples_per_sec,
            limit_chunks: None,
        }
    }

    /// Restricts the query to a column set (DSM experiments).
    pub fn with_columns(mut self, columns: ColSet) -> Self {
        self.columns = Some(columns);
        self
    }

    /// Stops the query after it has processed `chunks` chunks (LIMIT-style
    /// early termination; the query detaches mid-scan).
    pub fn with_chunk_limit(mut self, chunks: u32) -> Self {
        self.limit_chunks = Some(chunks);
        self
    }

    /// Renames the query.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// CPU time (seconds of a dedicated core) needed to process `tuples` tuples.
    pub fn cpu_seconds_for(&self, tuples: u64) -> f64 {
        tuples as f64 / self.tuples_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_storage::ColumnId;

    #[test]
    fn constructors() {
        let q = QuerySpec::full_scan("F-100", 10_000_000.0);
        assert_eq!(q.label, "F-100");
        assert!(q.ranges.is_none());
        assert!(q.columns.is_none());
        let r = QuerySpec::range_scan("F-10", ScanRanges::single(0, 10), 1e6)
            .with_columns(ColSet::from_columns([ColumnId::new(2)]))
            .with_label("renamed");
        assert_eq!(r.label, "renamed");
        assert_eq!(r.ranges.as_ref().unwrap().num_chunks(), 10);
        assert_eq!(r.columns.unwrap().len(), 1);
    }

    #[test]
    fn chunk_limit_builder() {
        let q = QuerySpec::full_scan("L-2", 1e6).with_chunk_limit(2);
        assert_eq!(q.limit_chunks, Some(2));
        assert_eq!(QuerySpec::full_scan("F", 1e6).limit_chunks, None);
    }

    #[test]
    fn cpu_cost_scales_with_tuples() {
        let q = QuerySpec::full_scan("S", 2_000_000.0);
        assert!((q.cpu_seconds_for(1_000_000) - 0.5).abs() < 1e-12);
        assert_eq!(q.cpu_seconds_for(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_rejected() {
        QuerySpec::full_scan("bad", 0.0);
    }
}
