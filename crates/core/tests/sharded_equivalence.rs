//! Decision-equivalence proof for the sharded executor's grant matcher.
//!
//! The sharded `threaded` front-end no longer lets consumers run the policy
//! themselves under one global lock: the scheduler runs
//! [`Abm::acquire_chunk`] *for* each query (at registration, at every
//! commit's woken list, and when a release drains) and deposits the result
//! into the query's grant mailbox.  These tests drive two [`Abm`] twins
//! through the identical plan/commit/consume schedule — one with the lazy
//! single-lock acquire discipline the executor used before the shard split,
//! one with the eager mailbox discipline `threaded.rs` uses now — and
//! assert the full decision traces (loads planned, victims evicted, commit
//! outcomes, woken lists, per-query deliveries and starvation blocks) are
//! bit-identical, across every policy, both storage layouts, and schedules
//! that include mid-scan detaches (the quarantine/abort protocol's ticket
//! checks).

use cscan_core::abm::{Abm, AbmState, CommitOutcome};
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::query::QueryId;
use cscan_core::ScanRanges;
use cscan_simdisk::SimTime;
use cscan_storage::ChunkId;
use proptest::prelude::*;
use std::collections::HashMap;

/// One observable scheduling decision.  Both twins must produce the exact
/// same sequence of these.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Planned {
        chunk: ChunkId,
        evicted: Vec<ChunkId>,
    },
    NothingToPlan,
    Committed {
        chunk: ChunkId,
        woken: Vec<QueryId>,
    },
    RejectedCommit {
        chunk: ChunkId,
    },
    Delivered {
        q: QueryId,
        chunk: ChunkId,
    },
    Starved {
        q: QueryId,
    },
    Closed {
        q: QueryId,
    },
    Detached {
        q: QueryId,
    },
}

/// A plan whose simulated read is still "in flight" (not yet committed).
struct Pending {
    chunk: ChunkId,
    ticket: u64,
    epoch: u64,
}

/// The two delivery disciplines under test.  `woken`/`consume`/`register`
/// are the three points the executor runs the matcher; the lazy twin makes
/// the identical `acquire_chunk` calls at the same points, the way the
/// single-lock wait loop did when its doorbell rang.
trait Discipline {
    fn register(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>);
    fn woken(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>);
    /// The consumer's turn: finish the chunk it holds (if any) and ask for
    /// the next one.
    fn consume(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>);
    fn detach(&mut self, abm: &mut Abm, q: QueryId, trace: &mut Vec<Ev>);
}

/// The pre-shard discipline: the consumer holds the (one) lock and runs
/// `acquire_chunk` itself whenever it is signalled or finishes a chunk.
#[derive(Default)]
struct LazyAcquire {
    closed: Vec<QueryId>,
}

impl LazyAcquire {
    fn attempt(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        let Some(query) = abm.state().try_query(q) else {
            return;
        };
        if query.processing.is_some() {
            return;
        }
        if query.is_finished() {
            if !self.closed.contains(&q) {
                self.closed.push(q);
                trace.push(Ev::Closed { q });
            }
            return;
        }
        match abm.acquire_chunk(q, now) {
            Some(chunk) => trace.push(Ev::Delivered { q, chunk }),
            None => trace.push(Ev::Starved { q }),
        }
    }
}

impl Discipline for LazyAcquire {
    fn register(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        self.attempt(abm, q, now, trace);
    }
    fn woken(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        self.attempt(abm, q, now, trace);
    }
    fn consume(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        let processing = abm.state().try_query(q).and_then(|query| query.processing);
        if let Some(chunk) = processing {
            abm.release_delivered(q, chunk);
        }
        self.attempt(abm, q, now, trace);
    }
    fn detach(&mut self, abm: &mut Abm, q: QueryId, trace: &mut Vec<Ev>) {
        // Dropping the handle also drops its outstanding `PinnedChunk`,
        // whose release funnels through the detached-pin path.
        let processing = abm.state().try_query(q).and_then(|query| query.processing);
        abm.finish_query(q);
        if let Some(chunk) = processing {
            abm.release_delivered(q, chunk);
        }
        trace.push(Ev::Detached { q });
    }
}

/// The sharded discipline: the scheduler deposits grants eagerly; the
/// consumer only takes what is already in its mailbox.  This mirrors
/// `threaded.rs`'s `try_grant` skip conditions exactly.
#[derive(Default)]
struct EagerGrant {
    grants: HashMap<QueryId, ChunkId>,
    closed: Vec<QueryId>,
}

impl EagerGrant {
    fn try_grant(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        if self.grants.contains_key(&q) {
            return;
        }
        let Some(query) = abm.state().try_query(q) else {
            return;
        };
        if query.processing.is_some() {
            return;
        }
        if query.is_finished() {
            if !self.closed.contains(&q) {
                self.closed.push(q);
                trace.push(Ev::Closed { q });
            }
            return;
        }
        match abm.acquire_chunk(q, now) {
            Some(chunk) => {
                self.grants.insert(q, chunk);
                trace.push(Ev::Delivered { q, chunk });
            }
            None => trace.push(Ev::Starved { q }),
        }
    }
}

impl Discipline for EagerGrant {
    fn register(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        self.try_grant(abm, q, now, trace);
    }
    fn woken(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        self.try_grant(abm, q, now, trace);
    }
    fn consume(&mut self, abm: &mut Abm, q: QueryId, now: SimTime, trace: &mut Vec<Ev>) {
        if let Some(chunk) = self.grants.remove(&q) {
            // The deferred-release drain: apply the release, then re-run
            // the matcher for the releasing query.
            abm.release_delivered(q, chunk);
        }
        self.try_grant(abm, q, now, trace);
    }
    fn detach(&mut self, abm: &mut Abm, q: QueryId, trace: &mut Vec<Ev>) {
        // `finish` reclaims an unconsumed grant before deregistering, so a
        // granted-but-never-taken chunk is released, not leaked.
        if let Some(chunk) = self.grants.remove(&q) {
            abm.finish_query(q);
            abm.release_delivered(q, chunk);
        } else {
            abm.finish_query(q);
        }
        trace.push(Ev::Detached { q });
    }
}

/// A deterministic schedule description.
#[derive(Debug, Clone)]
struct Script {
    seed: u64,
    steps: u32,
    /// `(start, end)` chunk ranges, one query each.
    queries: Vec<(u32, u32)>,
    /// Which query (by index) detaches mid-scan, if any.
    detach: Option<usize>,
    buffer_chunks: u64,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Drives one twin through the script and returns its decision trace plus
/// the final I/O request count.
fn drive(
    policy: PolicyKind,
    model: &TableModel,
    script: &Script,
    d: &mut dyn Discipline,
) -> (Vec<Ev>, u64) {
    let capacity = (model.avg_chunk_pages() * script.buffer_chunks as f64).ceil() as u64;
    let mut abm = Abm::new(
        AbmState::new(model.clone(), capacity.max(1)),
        policy.build(),
    );
    let mut trace = Vec::new();
    let mut rng = script.seed;
    let mut pending: Vec<Pending> = Vec::new();
    let mut plans = Vec::with_capacity(1);
    let mut ids = Vec::new();
    for &(start, end) in &script.queries {
        let now = SimTime::from_micros(ids.len() as u64);
        let q = abm.register_query(
            format!("q{}", ids.len()),
            ScanRanges::single(start, end),
            model.all_columns(),
            now,
        );
        ids.push(q);
        d.register(&mut abm, q, now, &mut trace);
    }
    let mut detached = false;
    for step in 0..script.steps {
        let now = SimTime::from_micros(1000 + step as u64 * 7);
        match lcg(&mut rng) % 6 {
            0 => {
                plans.clear();
                abm.plan_loads(now, 1, &mut plans);
                match plans.pop() {
                    Some(plan) => {
                        trace.push(Ev::Planned {
                            chunk: plan.decision.chunk,
                            evicted: plan.evicted.clone(),
                        });
                        pending.push(Pending {
                            chunk: plan.decision.chunk,
                            ticket: plan.ticket,
                            epoch: plan.epoch,
                        });
                    }
                    None => trace.push(Ev::NothingToPlan),
                }
            }
            1 | 2 => {
                if pending.is_empty() {
                    continue;
                }
                let load = pending.remove(0);
                let woken: Vec<QueryId> = match abm.commit_load(load.chunk, load.ticket, load.epoch)
                {
                    CommitOutcome::Committed { woken } => woken.to_vec(),
                    CommitOutcome::Cancelled | CommitOutcome::Aborted => {
                        trace.push(Ev::RejectedCommit { chunk: load.chunk });
                        continue;
                    }
                };
                trace.push(Ev::Committed {
                    chunk: load.chunk,
                    woken: woken.clone(),
                });
                for q in woken {
                    d.woken(&mut abm, q, now, &mut trace);
                }
            }
            3 | 4 => {
                let q = ids[(lcg(&mut rng) as usize) % ids.len()];
                d.consume(&mut abm, q, now, &mut trace);
            }
            _ => {
                if let Some(idx) = script.detach {
                    if !detached && step > script.steps / 2 {
                        detached = true;
                        d.detach(&mut abm, ids[idx], &mut trace);
                    }
                }
            }
        }
    }
    // Drain to quiescence so the twins are compared over complete scans,
    // not just a prefix: keep planning, committing and consuming in a fixed
    // round-robin until nothing remains.
    let mut spins = 0u32;
    loop {
        let now = SimTime::from_micros(1_000_000 + spins as u64 * 7);
        spins += 1;
        assert!(spins < 100_000, "twin failed to quiesce");
        if let Some(load) = if pending.is_empty() {
            None
        } else {
            Some(pending.remove(0))
        } {
            match abm.commit_load(load.chunk, load.ticket, load.epoch) {
                CommitOutcome::Committed { woken } => {
                    let woken: Vec<QueryId> = woken.to_vec();
                    trace.push(Ev::Committed {
                        chunk: load.chunk,
                        woken: woken.clone(),
                    });
                    for q in woken {
                        d.woken(&mut abm, q, now, &mut trace);
                    }
                }
                CommitOutcome::Cancelled | CommitOutcome::Aborted => {
                    trace.push(Ev::RejectedCommit { chunk: load.chunk });
                }
            }
            continue;
        }
        for &q in &ids {
            d.consume(&mut abm, q, now, &mut trace);
        }
        plans.clear();
        abm.plan_loads(now, 1, &mut plans);
        if let Some(plan) = plans.pop() {
            trace.push(Ev::Planned {
                chunk: plan.decision.chunk,
                evicted: plan.evicted.clone(),
            });
            pending.push(Pending {
                chunk: plan.decision.chunk,
                ticket: plan.ticket,
                epoch: plan.epoch,
            });
            continue;
        }
        if !abm.has_pending_work() {
            break;
        }
    }
    let state = abm.state();
    assert_eq!(state.num_inflight(), 0);
    assert_eq!(state.reserved_pages(), 0);
    state.validate_counters();
    (trace, state.io_requests())
}

fn assert_twins_agree(model: &TableModel, script: &Script) {
    for policy in PolicyKind::ALL {
        let (lazy_trace, lazy_io) = drive(policy, model, script, &mut LazyAcquire::default());
        let (eager_trace, eager_io) = drive(policy, model, script, &mut EagerGrant::default());
        assert_eq!(
            lazy_trace,
            eager_trace,
            "decision traces diverged for {} on {:?} (seed {})",
            policy.name(),
            model.kind(),
            script.seed
        );
        assert_eq!(
            lazy_io,
            eager_io,
            "I/O counts diverged for {}",
            policy.name()
        );
        // Every query delivered every chunk of its range exactly once
        // (unless it detached mid-scan).
        let mut per_query: HashMap<QueryId, Vec<ChunkId>> = HashMap::new();
        for ev in &eager_trace {
            if let Ev::Delivered { q, chunk } = ev {
                per_query.entry(*q).or_default().push(*chunk);
            }
        }
        for (idx, &(start, end)) in script.queries.iter().enumerate() {
            if script.detach == Some(idx) {
                continue;
            }
            let mut got = per_query
                .get(&QueryId(idx as u64))
                .cloned()
                .unwrap_or_default();
            got.sort_unstable_by_key(|c| c.index());
            got.dedup();
            let want: Vec<ChunkId> = (start..end).map(ChunkId::new).collect();
            assert_eq!(got, want, "{}: query {idx} chunk coverage", policy.name());
        }
    }
}

fn nsm_model(chunks: u32) -> TableModel {
    TableModel::nsm_uniform(chunks, 1_000, 4)
}

fn dsm_model(chunks: u32) -> TableModel {
    TableModel::dsm_uniform(chunks, 1_000, &[3, 1, 2])
}

/// Scripted twins over a seed sweep: every policy, both layouts, with and
/// without a mid-scan detach.
#[test]
fn matcher_grants_match_the_single_lock_acquire_loop() {
    for seed in 0..8u64 {
        let script = Script {
            seed,
            steps: 600,
            queries: vec![(0, 24), (8, 24), (16, 24), (4, 12)],
            detach: (seed % 2 == 0).then_some(1),
            buffer_chunks: 4 + seed % 5,
        };
        assert_twins_agree(&nsm_model(24), &script);
        assert_twins_agree(&dsm_model(24), &script);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized twins: arbitrary overlapping ranges, buffer sizes,
    /// schedules and detach choices keep the two disciplines bit-identical.
    #[test]
    fn eager_and_lazy_disciplines_stay_bit_identical(
        seed in 0u64..1_000_000,
        ranges in prop::collection::vec((0u32..20, 1u32..20), 1..5),
        buffer_chunks in 2u64..8,
        // 0..4 picks a query to detach mid-scan; larger values mean none.
        detach_idx in 0usize..8,
    ) {
        let queries: Vec<(u32, u32)> = ranges
            .iter()
            .map(|&(s, len)| (s.min(19), (s.min(19) + len).min(20).max(s.min(19) + 1)))
            .collect();
        let script = Script {
            seed,
            steps: 400,
            detach: (detach_idx < queries.len()).then_some(detach_idx),
            queries,
            buffer_chunks,
        };
        assert_twins_agree(&nsm_model(20), &script);
        assert_twins_agree(&dsm_model(20), &script);
    }
}
