//! Shard-contention stress: hundreds of scan threads hammering two tables
//! that share one observability registry.
//!
//! The sharded executor's consume path (`next_chunk` → process → release)
//! takes only the chunk's shard lock plus atomics; this test drives enough
//! concurrent consumers through two independent servers to shake out lost
//! wakeups (a consumer parked forever on its grant mailbox would hang the
//! test) and leaked refcounts (any pin left behind shows up in
//! `pinned_frames` after the threads join).

use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::threaded::ScanServer;
use cscan_core::{CScanPlan, ScanRanges};
use cscan_obs::Registry;
use std::sync::Arc;
use std::time::Duration;

const NUM_CHUNKS: u32 = 32;

/// 256 scanners in release builds per the acceptance gate; debug builds
/// (tier-1 `cargo test`) use a quarter of that to stay fast under the
/// unoptimized executor.
const SCAN_THREADS: usize = if cfg!(debug_assertions) { 64 } else { 256 };

fn server(obs: &Arc<Registry>, table: &str, policy: PolicyKind) -> Arc<ScanServer> {
    Arc::new(
        ScanServer::builder(TableModel::nsm_uniform(NUM_CHUNKS, 256, 4))
            .policy(policy)
            .buffer_chunks(8)
            .io_threads(4)
            .io_cost_per_page(Duration::ZERO)
            .observability(Arc::clone(obs))
            .table_label(table)
            .build(),
    )
}

#[test]
fn hundreds_of_scanners_over_two_tables_leak_nothing() {
    let obs = Arc::new(Registry::new());
    let servers = [
        server(&obs, "alpha", PolicyKind::Relevance),
        server(&obs, "beta", PolicyKind::Elevator),
    ];

    let threads: Vec<_> = (0..SCAN_THREADS)
        .map(|i| {
            let server = Arc::clone(&servers[i % servers.len()]);
            std::thread::spawn(move || {
                let model = TableModel::nsm_uniform(NUM_CHUNKS, 256, 4);
                let handle = server.cscan(CScanPlan::new(
                    format!("stress-{i}"),
                    ScanRanges::full(NUM_CHUNKS),
                    model.all_columns(),
                ));
                let mut seen = vec![false; NUM_CHUNKS as usize];
                while let Some(guard) = handle.next_chunk().expect("no faults injected") {
                    let idx = guard.chunk().index() as usize;
                    assert!(!seen[idx], "chunk {idx} delivered twice to scanner {i}");
                    seen[idx] = true;
                    guard.complete();
                }
                handle.finish();
                assert!(seen.iter().all(|&s| s), "scanner {i} missed chunks");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("scan thread panicked");
    }

    for server in &servers {
        assert_eq!(server.pinned_frames(), 0, "leaked pin refcounts");
        assert_eq!(server.queries_erred(), 0);
        assert_eq!(server.worker_panics(), 0);
    }
    let snap = obs.snapshot();
    assert!(snap.is_consistent(), "scope sums diverged from totals");
    assert_eq!(
        snap.query_total("chunks_delivered"),
        SCAN_THREADS as u64 * NUM_CHUNKS as u64,
        "every scanner must see every chunk exactly once"
    );
    // The hot path is instrumented: shard lock holds were recorded, and the
    // flat-combining release path counted its handoffs (possibly zero if
    // the try_lock always won, but the counter must exist in the snapshot).
    assert!(snap.span("shard_lock_hold").count() > 0);
    let _ = snap.counter("hub_shard_conflicts");
}
