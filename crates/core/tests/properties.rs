//! Property-based tests of the Cooperative Scans core: for arbitrary
//! workloads and all four policies, the fundamental invariants of the
//! framework must hold.

use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{QuerySpec, SimConfig, Simulation};
use cscan_core::ScanRanges;
use cscan_simdisk::SimDuration;
use proptest::prelude::*;

/// A compact description of a random query.
#[derive(Debug, Clone)]
struct RandomQuery {
    start: u32,
    len: u32,
    speed: f64,
}

fn arb_query(num_chunks: u32) -> impl Strategy<Value = RandomQuery> {
    (0..num_chunks, 1..=num_chunks, 1u32..=40).prop_map(move |(start, len, speed)| RandomQuery {
        start: start.min(num_chunks - 1),
        len,
        speed: speed as f64 * 500_000.0,
    })
}

fn arb_streams(num_chunks: u32) -> impl Strategy<Value = Vec<Vec<RandomQuery>>> {
    prop::collection::vec(prop::collection::vec(arb_query(num_chunks), 1..4), 1..6)
}

fn to_specs(streams: &[Vec<RandomQuery>], num_chunks: u32) -> Vec<Vec<QuerySpec>> {
    streams
        .iter()
        .map(|s| {
            s.iter()
                .enumerate()
                .map(|(i, q)| {
                    let end = (q.start + q.len).min(num_chunks);
                    QuerySpec::range_scan(
                        format!("q{i}-{}-{}", q.start, end),
                        ScanRanges::single(q.start, end.max(q.start + 1).min(num_chunks)),
                        q.speed,
                    )
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy completes every query of every random workload, the
    /// buffer is respected and I/O accounting is consistent.
    #[test]
    fn all_policies_complete_random_workloads(
        streams in arb_streams(48),
        buffer_chunks in 2u64..20,
    ) {
        let num_chunks = 48u32;
        let model = TableModel::nsm_uniform(num_chunks, 50_000, 64);
        let specs = to_specs(&streams, num_chunks);
        let total_queries: usize = specs.iter().map(|s| s.len()).sum();
        let config = SimConfig::default()
            .with_buffer_chunks(buffer_chunks)
            .with_stagger(SimDuration::from_millis(500));
        for policy in PolicyKind::ALL {
            let mut sim = Simulation::new(model.clone(), policy, config);
            sim.submit_streams(specs.clone());
            let result = sim.run();
            // Every query finished exactly once.
            prop_assert_eq!(result.queries.len(), total_queries, "{}", policy);
            // Latencies are causal and bounded by the total run time.
            for q in &result.queries {
                prop_assert!(q.finished_at >= q.submitted_at);
                prop_assert!(q.latency() <= result.total_time);
            }
            // I/O accounting: at least the union of needed chunks was read,
            // and pages follow chunk loads exactly (uniform 64-page chunks).
            let union: std::collections::HashSet<u32> = specs
                .iter()
                .flatten()
                .flat_map(|q| q.ranges.as_ref().unwrap().iter().map(|c| c.index()))
                .collect();
            prop_assert!(result.io_requests >= union.len() as u64, "{}", policy);
            prop_assert_eq!(result.pages_read, result.io_requests * 64, "{}", policy);
            // Utilizations are valid fractions.
            prop_assert!(result.cpu_utilization >= 0.0 && result.cpu_utilization <= 1.0);
            prop_assert!(result.disk_utilization >= 0.0 && result.disk_utilization <= 1.0);
        }
    }

    /// I/O volume invariants: every policy reads at least the union of the
    /// requested chunks and at most the per-query sum (each query reading its
    /// chunks privately) — except `normal`, whose prefetched chunks can be
    /// evicted and re-read under extreme buffer pressure, so it only gets a
    /// generous multiple of that bound.  Relevance stays within striking
    /// distance of normal.
    #[test]
    fn io_volume_is_bounded(
        streams in arb_streams(40),
        buffer_chunks in 3u64..16,
    ) {
        let model = TableModel::nsm_uniform(40, 50_000, 64);
        let specs = to_specs(&streams, 40);
        let union: std::collections::HashSet<u32> = specs
            .iter()
            .flatten()
            .flat_map(|q| q.ranges.as_ref().unwrap().iter().map(|c| c.index()))
            .collect();
        let per_query_sum: u64 = specs
            .iter()
            .flatten()
            .map(|q| q.ranges.as_ref().unwrap().num_chunks() as u64)
            .sum();
        let config = SimConfig::default()
            .with_buffer_chunks(buffer_chunks)
            .with_stagger(SimDuration::from_millis(200));
        let run = |policy| {
            let mut sim = Simulation::new(model.clone(), policy, config);
            sim.submit_streams(specs.clone());
            sim.run()
        };
        let normal = run(PolicyKind::Normal);
        let relevance = run(PolicyKind::Relevance);
        for (name, result) in [("normal", &normal), ("relevance", &relevance)] {
            prop_assert!(result.io_requests >= union.len() as u64, "{name}");
            prop_assert!(
                result.io_requests <= per_query_sum * 3 + 4,
                "{name}: {} loads for a per-query sum of {per_query_sum}",
                result.io_requests
            );
        }
        prop_assert!(
            relevance.io_requests <= normal.io_requests * 3 / 2 + 4,
            "relevance {} should stay close to or below normal {}",
            relevance.io_requests,
            normal.io_requests
        );
    }

    /// Determinism: running the same workload twice gives identical results
    /// for every policy.
    #[test]
    fn runs_are_deterministic(streams in arb_streams(32), buffer_chunks in 2u64..10) {
        let model = TableModel::nsm_uniform(32, 20_000, 32);
        let specs = to_specs(&streams, 32);
        let config = SimConfig::default().with_buffer_chunks(buffer_chunks);
        for policy in PolicyKind::ALL {
            let run = || {
                let mut sim = Simulation::new(model.clone(), policy, config);
                sim.submit_streams(specs.clone());
                sim.run()
            };
            let a = run();
            let b = run();
            prop_assert_eq!(a.io_requests, b.io_requests);
            prop_assert_eq!(a.total_time, b.total_time);
            prop_assert_eq!(
                a.queries.iter().map(|q| (q.query_id, q.finished_at)).collect::<Vec<_>>(),
                b.queries.iter().map(|q| (q.query_id, q.finished_at)).collect::<Vec<_>>()
            );
        }
    }

    /// DSM partial residency: page accounting matches the layout no matter
    /// which columns the queries use, for every policy.
    #[test]
    fn dsm_page_accounting_is_consistent(
        col_picks in prop::collection::vec((0u16..6, 1u16..4), 1..5),
        buffer_fraction in 0.15f64..0.8,
    ) {
        let model = TableModel::dsm_uniform(24, 50_000, &[1, 2, 4, 8, 16, 32]);
        let config = SimConfig::default()
            .with_buffer_fraction(buffer_fraction)
            .with_stagger(SimDuration::from_millis(100));
        for policy in PolicyKind::ALL {
            let mut sim = Simulation::new(model.clone(), policy, config);
            for (i, &(start, width)) in col_picks.iter().enumerate() {
                let cols: cscan_core::ColSet = (start..(start + width).min(6))
                    .map(cscan_storage::ColumnId::new)
                    .collect();
                sim.submit_stream(vec![QuerySpec::full_scan(format!("q{i}"), 2_000_000.0)
                    .with_columns(cols)]);
            }
            let result = sim.run();
            prop_assert_eq!(result.queries.len(), col_picks.len(), "{}", policy);
            // Pages read are bounded below by the union of needed columns
            // (each read at least once) and above by "every query reads its
            // own columns separately".
            let union: cscan_core::ColSet = col_picks
                .iter()
                .flat_map(|&(start, width)| {
                    (start..(start + width).min(6)).map(cscan_storage::ColumnId::new)
                })
                .collect();
            let lower = model.total_pages(union);
            let upper: u64 = col_picks
                .iter()
                .map(|&(start, width)| {
                    let cols: cscan_core::ColSet = (start..(start + width).min(6))
                        .map(cscan_storage::ColumnId::new)
                        .collect();
                    model.total_pages(cols)
                })
                .sum();
            prop_assert!(result.pages_read >= lower, "{}: {} < {}", policy, result.pages_read, lower);
            // Re-reads after eviction are possible under pressure, so the
            // upper bound carries a generous safety factor.
            prop_assert!(
                result.pages_read <= upper * 4,
                "{}: {} > {}",
                policy,
                result.pages_read,
                upper * 4
            );
        }
    }
}
