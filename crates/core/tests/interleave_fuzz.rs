//! Seeded thread-interleaving fuzzer for the sharded executor.
//!
//! Gated behind the `interleave_fuzz` feature (run with
//! `cargo test -p cscan_core --features interleave_fuzz`): each seed builds
//! a fresh server with a seed-derived shape (policy, pool size, worker
//! count) and unleashes scanner threads whose scripts — consume, drop a
//! pinned chunk without completing it, abandon the scan mid-way, detach
//! without draining, yield — are chosen by a per-thread PRNG.  There is no
//! schedule controller (no loom); the scripts plus the OS scheduler explore
//! interleavings, and every seed must drain to the same quiescent state:
//! no pinned frames, no erred queries, no panicked workers, and a
//! consistent metrics snapshot.

#![cfg(feature = "interleave_fuzz")]

use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::threaded::ScanServer;
use cscan_core::{CScanPlan, ScanRanges};
use cscan_obs::Registry;
use std::sync::Arc;
use std::time::Duration;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

const NUM_CHUNKS: u32 = 16;

fn run_seed(seed: u64) {
    let mut rng = seed;
    let policy = PolicyKind::ALL[(lcg(&mut rng) % 4) as usize];
    let buffer_chunks = 2 + lcg(&mut rng) % 6;
    let io_threads = 1 + (lcg(&mut rng) % 4) as usize;
    let scanners = 4 + (lcg(&mut rng) % 12) as usize;

    let obs = Arc::new(Registry::new());
    let model = TableModel::nsm_uniform(NUM_CHUNKS, 64, 4);
    let server = Arc::new(
        ScanServer::builder(model.clone())
            .policy(policy)
            .buffer_chunks(buffer_chunks)
            .io_threads(io_threads)
            .io_cost_per_page(Duration::ZERO)
            .observability(Arc::clone(&obs))
            .build(),
    );

    let threads: Vec<_> = (0..scanners)
        .map(|i| {
            let server = Arc::clone(&server);
            let model = model.clone();
            let mut rng = seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
            std::thread::spawn(move || {
                let start = (lcg(&mut rng) % NUM_CHUNKS as u64) as u32;
                let end = start + 1 + (lcg(&mut rng) % (NUM_CHUNKS - start) as u64) as u32;
                let handle = server.cscan(CScanPlan::new(
                    format!("fuzz-{seed}-{i}"),
                    ScanRanges::single(start, end),
                    model.all_columns(),
                ));
                loop {
                    match lcg(&mut rng) % 16 {
                        // Abandon the scan: drop the handle mid-stream
                        // (undrained grants must be reclaimed by finish).
                        0 => {
                            handle.finish();
                            return;
                        }
                        // Detach via Drop without an explicit finish.
                        1 => return,
                        2 => std::thread::yield_now(),
                        _ => {}
                    }
                    match handle.next_chunk().expect("no faults injected") {
                        Some(guard) => {
                            if lcg(&mut rng).is_multiple_of(4) {
                                // Unconsumed drop: release without complete.
                                drop(guard);
                            } else {
                                guard.complete();
                            }
                        }
                        None => {
                            handle.finish();
                            return;
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("scanner panicked");
    }

    assert_eq!(server.pinned_frames(), 0, "seed {seed}: leaked pins");
    assert_eq!(server.worker_panics(), 0, "seed {seed}");
    assert_eq!(server.queries_erred(), 0, "seed {seed}");
    drop(server);
    let snap = obs.snapshot();
    assert!(snap.is_consistent(), "seed {seed}: inconsistent snapshot");
}

#[test]
fn seeded_interleavings_always_drain_clean() {
    for seed in 0..48u64 {
        run_seed(seed);
    }
}
