//! Client for the Cooperative Scans network service.
//!
//! [`ScanClient`] owns one TCP connection speaking the [`cscan_proto`]
//! protocol.  [`ScanClient::open_scan`] sends the same [`CScanPlan`] both
//! local front-ends use and returns a [`RemoteScan`] that pulls
//! [`ColumnBatch`]es with a credit window: the client tops credits up as
//! batches arrive, so the server always has a bounded number of batches
//! in flight and a reader that stops calling [`RemoteScan::next_batch`]
//! stops the stream — backpressure is the default, not an option.
//!
//! ```no_run
//! use cscan_client::ScanClient;
//! use cscan_core::{CScanPlan, ColSet};
//!
//! let mut client = ScanClient::connect("127.0.0.1:7878")?;
//! let mut scan = client.open_scan("lineitem", CScanPlan::full_table("q1", ColSet::first_n(2)))?;
//! while let Some(batch) = scan.next_batch()? {
//!     let qty = batch.column(1).expect("column 1 requested");
//!     let _sum: i64 = qty.iter().sum();
//! }
//! # Ok::<(), cscan_client::ClientError>(())
//! ```

#![warn(missing_docs)]

use cscan_core::{CScanPlan, ScanError};
use cscan_proto::{encode_frame, Decoder, Message, ProtoError, ServeError};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// How many batches the client lets the server keep in flight.  Small
/// enough that a LIMIT-style early stop wastes little work, large enough
/// to keep the pipe full over loopback.
const CREDIT_WINDOW: u32 = 8;

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The socket failed or closed unexpectedly.
    Io(io::Error),
    /// The server's byte stream violated the protocol.
    Proto(ProtoError),
    /// The serving layer refused or tore down the request (admission,
    /// catalog, stall shedding — see [`ServeError`] for the taxonomy).
    Serve(ServeError),
    /// The scan itself failed in the executor (unreadable chunk).
    Scan(ScanError),
    /// A frame arrived that makes no sense in the current state.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Serve(e) => write!(f, "server refused: {e}"),
            ClientError::Scan(e) => write!(f, "{e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// Whether retrying the request later could succeed (admission
    /// shedding, queue timeouts, server shutdown).
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Serve(e) if e.is_retryable())
    }
}

/// One chunk's worth of column data, as delivered over the wire.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    /// Table-relative chunk index the rows came from (chunks arrive in
    /// scheduler order, not table order).
    pub chunk: u32,
    /// Rows in this batch (every column has exactly this many values).
    pub rows: u32,
    /// `(column id, values)` pairs, ordered by column id.
    pub columns: Vec<(u16, Vec<i64>)>,
}

impl ColumnBatch {
    /// The values of column `id`, if the batch carries it.
    pub fn column(&self, id: u16) -> Option<&[i64]> {
        self.columns
            .iter()
            .find(|(c, _)| *c == id)
            .map(|(_, v)| v.as_slice())
    }
}

/// One connection to a scan service.
pub struct ScanClient {
    stream: TcpStream,
    dec: Decoder,
    read_buf: Vec<u8>,
    send_buf: Vec<u8>,
    /// A dropped [`RemoteScan`] leaves its tail (in-flight batches up to
    /// `CancelOk`) on the wire; the next operation drains it first.
    pending_drain: Option<u64>,
}

impl ScanClient {
    /// Connects to a scan service.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ScanClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ScanClient {
            stream,
            dec: Decoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            send_buf: Vec::new(),
            pending_drain: None,
        })
    }

    fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        self.send_buf.clear();
        encode_frame(&mut self.send_buf, msg);
        self.stream.write_all(&self.send_buf)?;
        Ok(())
    }

    /// Blocks for the next frame from the server.
    fn recv(&mut self) -> Result<Message, ClientError> {
        loop {
            if let Some(msg) = self.dec.next_message()? {
                return Ok(msg);
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let bytes = &self.read_buf[..n];
            self.dec.feed(bytes);
        }
    }

    /// Consumes leftover frames from an abandoned scan (batches that were
    /// in flight when `Cancel` was sent, then its `CancelOk`).
    fn drain_pending(&mut self) -> Result<(), ClientError> {
        let Some(id) = self.pending_drain else {
            return Ok(());
        };
        loop {
            match self.recv()? {
                Message::Batch { scan_id, .. } | Message::ScanDone { scan_id } if scan_id == id => {
                }
                Message::CancelOk { scan_id } if scan_id == id => break,
                Message::Error { scan_id, .. } if scan_id == id || scan_id == 0 => break,
                _ => return Err(ClientError::Unexpected("frame while draining cancel")),
            }
        }
        self.pending_drain = None;
        Ok(())
    }

    /// Opens a scan of `table` and returns the stream of its batches.
    /// Admission control may queue the request server-side; a shed
    /// request surfaces as a retryable [`ClientError::Serve`].
    pub fn open_scan(
        &mut self,
        table: &str,
        plan: CScanPlan,
    ) -> Result<RemoteScan<'_>, ClientError> {
        self.drain_pending()?;
        self.send(&Message::OpenScan {
            table: table.to_string(),
            plan,
        })?;
        match self.recv()? {
            Message::OpenOk {
                scan_id,
                num_chunks,
            } => Ok(RemoteScan {
                client: self,
                scan_id,
                num_chunks,
                outstanding: 0,
                done: false,
            }),
            Message::Error {
                code,
                aux,
                chunk,
                detail,
                ..
            } => Err(error_from_frame(code, aux, chunk, &detail)),
            _ => Err(ClientError::Unexpected("reply to OpenScan")),
        }
    }

    /// Asks the server to shut down (honored when the server runs with
    /// `exit_on_shutdown`) and waits for the acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.drain_pending()?;
        self.send(&Message::Shutdown)?;
        loop {
            match self.recv()? {
                Message::ShutdownOk => return Ok(()),
                // Late frames from scans torn down by the shutdown.
                Message::Batch { .. }
                | Message::ScanDone { .. }
                | Message::CancelOk { .. }
                | Message::Error { .. } => {}
                _ => return Err(ClientError::Unexpected("reply to Shutdown")),
            }
        }
    }
}

/// Decodes an `Error` frame into the strongest-typed [`ClientError`].
fn error_from_frame(code: u16, aux: u16, chunk: u32, detail: &str) -> ClientError {
    if let Some(scan_error) = Message::as_scan_error(code, aux, chunk) {
        ClientError::Scan(scan_error)
    } else {
        ClientError::Serve(ServeError::from_wire(code, detail))
    }
}

/// An open scan being streamed from the server.
///
/// Dropping it mid-stream sends `Cancel` (best effort) so the server
/// detaches the scan and frees its admission slot promptly; the
/// connection stays usable for the next scan.
pub struct RemoteScan<'a> {
    client: &'a mut ScanClient,
    scan_id: u64,
    num_chunks: u32,
    outstanding: u32,
    done: bool,
}

impl std::fmt::Debug for RemoteScan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteScan")
            .field("scan_id", &self.scan_id)
            .field("num_chunks", &self.num_chunks)
            .field("outstanding", &self.outstanding)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl RemoteScan<'_> {
    /// The server-assigned scan id.
    pub fn scan_id(&self) -> u64 {
        self.scan_id
    }

    /// Chunks the scan will deliver in total.
    pub fn num_chunks(&self) -> u32 {
        self.num_chunks
    }

    /// Pulls the next batch; `Ok(None)` when the scan completed.  Tops up
    /// the server's credit window as batches arrive.
    pub fn next_batch(&mut self) -> Result<Option<ColumnBatch>, ClientError> {
        if self.done {
            return Ok(None);
        }
        if self.outstanding < CREDIT_WINDOW.div_ceil(2) {
            let top_up = CREDIT_WINDOW - self.outstanding;
            self.client.send(&Message::NextBatch {
                scan_id: self.scan_id,
                credits: top_up,
            })?;
            self.outstanding += top_up;
        }
        match self.client.recv()? {
            Message::Batch {
                scan_id,
                chunk,
                rows,
                columns,
            } if scan_id == self.scan_id => {
                self.outstanding = self.outstanding.saturating_sub(1);
                Ok(Some(ColumnBatch {
                    chunk,
                    rows,
                    columns,
                }))
            }
            Message::ScanDone { scan_id } if scan_id == self.scan_id => {
                self.done = true;
                Ok(None)
            }
            Message::Error {
                scan_id,
                code,
                aux,
                chunk,
                detail,
            } if scan_id == self.scan_id || scan_id == 0 => {
                self.done = true;
                Err(error_from_frame(code, aux, chunk, &detail))
            }
            _ => {
                self.done = true;
                Err(ClientError::Unexpected("frame during scan"))
            }
        }
    }

    /// Abandons the scan and waits until the server confirms, leaving the
    /// connection clean for the next request.
    pub fn cancel(mut self) -> Result<(), ClientError> {
        if self.done {
            return Ok(());
        }
        self.client.send(&Message::Cancel {
            scan_id: self.scan_id,
        })?;
        loop {
            match self.client.recv()? {
                Message::Batch { scan_id, .. } | Message::ScanDone { scan_id }
                    if scan_id == self.scan_id => {}
                Message::CancelOk { scan_id } if scan_id == self.scan_id => {
                    self.done = true;
                    return Ok(());
                }
                Message::Error {
                    scan_id,
                    code,
                    aux,
                    chunk,
                    detail,
                } if scan_id == self.scan_id || scan_id == 0 => {
                    self.done = true;
                    return Err(error_from_frame(code, aux, chunk, &detail));
                }
                _ => {
                    self.done = true;
                    return Err(ClientError::Unexpected("reply to Cancel"));
                }
            }
        }
    }
}

impl Drop for RemoteScan<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Fire the cancel but defer the drain: the in-flight tail is
        // consumed lazily by the next operation on the client.
        if self
            .client
            .send(&Message::Cancel {
                scan_id: self.scan_id,
            })
            .is_ok()
        {
            self.client.pending_drain = Some(self.scan_id);
        }
    }
}
