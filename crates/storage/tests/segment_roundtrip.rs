//! Segment-format round-trip property: any table written through the
//! loader path (`SegmentWriter`) must read back *bit-identical* through
//! [`FileStore`] — plain columns value-for-value, encoded columns with the
//! exact encode-time byte stream and checksum — across full-chunk (NSM)
//! materializations and `cols: Some(subset)` DSM projections, for every
//! mix of codecs the engine supports.

use cscan_storage::chunkdata::ColumnChunk;
use cscan_storage::segment::{FileStore, SegmentWriter};
use cscan_storage::{ChunkId, ChunkPayload, ChunkStore, ColumnId, Compression};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "cscan_seg_prop_{}_{}.seg",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arb_schemes() -> impl Strategy<Value = Vec<Compression>> {
    prop::collection::vec(
        prop_oneof![
            Just(Compression::None),
            (1u8..12).prop_map(|bits| Compression::Dictionary { bits }),
            (1u8..24).prop_map(|bits| Compression::Pfor {
                bits,
                exception_rate: 0.05
            }),
            (1u8..8).prop_map(|bits| Compression::PforDelta {
                bits,
                exception_rate: 0.05
            }),
        ],
        1..6,
    )
}

/// Deterministic values for `(chunk, col, row)` under `seed`: mostly small
/// (codec-friendly) with occasional full-width outliers, so PFOR exception
/// paths are exercised too.
fn value(seed: u64, chunk: u32, col: usize, row: usize) -> i64 {
    let mut z = seed
        .wrapping_add((chunk as u64).wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add((col as u64).wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add((row as u64).wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    if z.is_multiple_of(61) {
        z as i64 // full-width outlier
    } else {
        (z % 1023) as i64 - 511
    }
}

/// Asserts a materialized mini-column is bit-identical to the baseline the
/// in-memory compressing path would have produced for the same values.
fn assert_bit_identical(got: &ColumnChunk, values: &[i64], scheme: Compression) {
    let baseline = ColumnChunk::encode(values, scheme);
    match (got, &baseline) {
        (ColumnChunk::Plain(g), ColumnChunk::Plain(b)) => assert_eq!(g, b),
        (ColumnChunk::Compressed(g), ColumnChunk::Compressed(b)) => {
            assert_eq!(
                g.encoded(),
                b.encoded(),
                "encoded bytes + checksum must round-trip exactly"
            );
        }
        _ => panic!("column came back in the wrong plain/compressed state"),
    }
    assert_eq!(got.as_slice(), values, "decoded values must round-trip");
}

proptest! {
    // Each case does real file I/O; keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segment_round_trips_bit_identically(
        schemes in arb_schemes(),
        chunks in 1u32..5,
        rows_per_chunk in prop::collection::vec(1usize..260, 1..5),
        seed in 0u64..u64::MAX,
    ) {
        let path = tmp_path();
        let width = schemes.len();
        let chunk_rows =
            |c: u32| rows_per_chunk[c as usize % rows_per_chunk.len()];
        let column = |c: u32, col: usize| -> Vec<i64> {
            (0..chunk_rows(c)).map(|r| value(seed, c, col, r)).collect()
        };

        let mut w = SegmentWriter::create(&path, schemes.clone()).unwrap();
        for c in 0..chunks {
            let cols: Vec<Vec<i64>> = (0..width).map(|col| column(c, col)).collect();
            let refs: Vec<&[i64]> = cols.iter().map(|v| v.as_slice()).collect();
            w.append_chunk(&refs).unwrap();
        }
        let summary = w.finish().unwrap();
        prop_assert_eq!(summary.chunks, chunks);

        let store = FileStore::open(&path).unwrap();
        prop_assert_eq!(store.num_chunks(), chunks);
        prop_assert_eq!(store.num_columns() as usize, width);

        for c in 0..chunks {
            let chunk = ChunkId::new(c);
            prop_assert_eq!(store.chunk_rows(chunk), Some(chunk_rows(c) as u64));

            // Full-chunk NSM materialization: every column, bit-identical.
            let payload = store.materialize(chunk, None).unwrap();
            payload.verify_checksums().unwrap();
            let ChunkPayload::Nsm(data) = &payload else {
                panic!("cols: None must produce an NSM payload");
            };
            prop_assert_eq!(data.width(), width);
            for (col, part) in data.parts().iter().enumerate() {
                assert_bit_identical(part, &column(c, col), schemes[col]);
            }

            // DSM projection of a seed-chosen strict-or-full subset: only
            // those columns come back, each bit-identical.
            let subset: Vec<ColumnId> = (0..width)
                .filter(|col| width == 1 || (seed >> (col % 48)) & 1 == 0 || *col == 0)
                .map(|col| ColumnId::new(col as u16))
                .collect();
            let payload = store.materialize(chunk, Some(&subset)).unwrap();
            payload.verify_checksums().unwrap();
            let ChunkPayload::Dsm(data) = &payload else {
                panic!("cols: Some(..) must produce a DSM payload");
            };
            prop_assert_eq!(data.parts().len(), subset.len());
            for (id, part) in data.parts() {
                assert_bit_identical(part, &column(c, id.as_usize()), schemes[id.as_usize()]);
            }
            for col in 0..width {
                let id = ColumnId::new(col as u16);
                prop_assert_eq!(
                    payload.column(id).is_some(),
                    subset.contains(&id),
                    "projection must hold exactly the requested columns"
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
