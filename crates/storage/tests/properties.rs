//! Property-based tests for physical layouts and scan plans.

use cscan_storage::{
    ChunkId, ChunkRange, ColumnDef, ColumnId, ColumnType, Compression, DsmLayout, Layout,
    NsmLayout, ScanRanges, TableSchema,
};
use proptest::prelude::*;

fn arb_schema() -> impl Strategy<Value = TableSchema> {
    prop::collection::vec(
        prop_oneof![
            Just(ColumnType::Int64),
            Just(ColumnType::Int32),
            Just(ColumnType::Decimal),
            Just(ColumnType::Date),
            Just(ColumnType::Char),
            (4u16..64).prop_map(|n| ColumnType::Varchar { avg_len: n }),
        ],
        1..10,
    )
    .prop_map(|types| {
        TableSchema::new(
            "prop_table",
            types
                .into_iter()
                .enumerate()
                .map(|(i, ty)| ColumnDef::new(format!("c{i}"), ty))
                .collect(),
        )
    })
}

fn arb_compressed_schema() -> impl Strategy<Value = TableSchema> {
    prop::collection::vec(
        prop_oneof![
            Just(Compression::None),
            (1u8..16).prop_map(|bits| Compression::Dictionary { bits }),
            (1u8..32).prop_map(|bits| Compression::Pfor {
                bits,
                exception_rate: 0.02
            }),
            (1u8..8).prop_map(|bits| Compression::PforDelta {
                bits,
                exception_rate: 0.01
            }),
        ],
        1..10,
    )
    .prop_map(|comps| {
        TableSchema::new(
            "prop_dsm",
            comps
                .into_iter()
                .enumerate()
                .map(|(i, c)| ColumnDef::compressed(format!("c{i}"), ColumnType::Int64, c))
                .collect(),
        )
    })
}

proptest! {
    /// NSM: chunk tuple counts partition the table exactly and every chunk
    /// except the last is full.
    #[test]
    fn nsm_chunks_partition_tuples(schema in arb_schema(), tuples in 1u64..5_000_000) {
        let layout = NsmLayout::new(schema, tuples, 64 * 1024, 4 * 1024 * 1024);
        let total: u64 = (0..layout.num_chunks()).map(|c| layout.chunk_tuples(ChunkId::new(c))).sum();
        prop_assert_eq!(total, tuples);
        for c in 0..layout.num_chunks().saturating_sub(1) {
            prop_assert_eq!(layout.chunk_tuples(ChunkId::new(c)), layout.tuples_per_chunk());
        }
    }

    /// NSM: physical regions of different chunks never overlap and are in
    /// table order.
    #[test]
    fn nsm_regions_disjoint(schema in arb_schema(), tuples in 1u64..2_000_000) {
        let layout = NsmLayout::new(schema, tuples, 64 * 1024, 2 * 1024 * 1024);
        let cols = layout.schema().all_columns();
        let mut prev_end = 0u64;
        for c in 0..layout.num_chunks() {
            let regions = layout.chunk_regions(ChunkId::new(c), &cols);
            prop_assert_eq!(regions.len(), 1);
            prop_assert!(regions[0].offset >= prev_end || c == 0);
            prop_assert!(regions[0].len > 0);
            prev_end = regions[0].offset + regions[0].len;
        }
    }

    /// DSM: chunk tuple counts partition the table; per-chunk page counts for
    /// a subset of columns never exceed those for all columns.
    #[test]
    fn dsm_pages_monotone_in_columns(
        schema in arb_compressed_schema(),
        tuples in 1u64..3_000_000,
        chunk_tuples in 1_000u64..500_000,
    ) {
        let layout = DsmLayout::new(schema, tuples, 64 * 1024, chunk_tuples);
        let total: u64 = (0..layout.num_chunks()).map(|c| layout.chunk_tuples(ChunkId::new(c))).sum();
        prop_assert_eq!(total, tuples);
        let all = layout.schema().all_columns();
        let some: Vec<ColumnId> = all.iter().copied().step_by(2).collect();
        for c in (0..layout.num_chunks()).step_by(7) {
            let chunk = ChunkId::new(c);
            prop_assert!(layout.chunk_pages(chunk, &some) <= layout.chunk_pages(chunk, &all));
            prop_assert_eq!(layout.chunk_regions(chunk, &all).len(), all.len());
        }
    }

    /// DSM: the page spans of consecutive chunks within one column are
    /// non-decreasing and contiguous-or-overlapping (no gaps, no reordering).
    #[test]
    fn dsm_column_spans_are_ordered(
        schema in arb_compressed_schema(),
        tuples in 100_000u64..2_000_000,
    ) {
        let layout = DsmLayout::new(schema, tuples, 64 * 1024, 50_000);
        for col in layout.schema().all_columns() {
            let mut prev: Option<(u64, u64)> = None;
            for c in 0..layout.num_chunks() {
                let span = layout.chunk_column_page_span(ChunkId::new(c), col);
                prop_assert!(span.is_some());
                let (first, last) = span.unwrap();
                prop_assert!(first <= last);
                if let Some((pf, pl)) = prev {
                    prop_assert!(first >= pf, "spans move forward");
                    prop_assert!(first <= pl + 1, "no page gap between adjacent chunks");
                    prop_assert!(last >= pl);
                }
                prev = Some((first, last));
            }
        }
    }

    /// ScanRanges normalization: ranges are sorted, disjoint, non-empty and
    /// `contains` agrees with the materialized chunk list.
    #[test]
    fn scan_ranges_are_normalized(ranges in prop::collection::vec((0u32..300, 0u32..60), 0..20)) {
        let scan = ScanRanges::from_ranges(
            ranges.iter().map(|&(start, len)| ChunkRange::new(start, start + len)),
        );
        let rs = scan.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].end < w[1].start, "sorted and disjoint with gaps");
        }
        prop_assert!(rs.iter().all(|r| !r.is_empty()));
        let chunks = scan.chunks();
        prop_assert_eq!(chunks.len() as u32, scan.num_chunks());
        for c in 0..400u32 {
            let id = ChunkId::new(c);
            prop_assert_eq!(scan.contains(id), chunks.contains(&id));
        }
    }

    /// Overlap is symmetric and bounded by the smaller scan.
    #[test]
    fn scan_overlap_symmetric(
        a in prop::collection::vec(0u32..200, 0..100),
        b in prop::collection::vec(0u32..200, 0..100),
    ) {
        let sa = ScanRanges::from_chunk_indices(a);
        let sb = ScanRanges::from_chunk_indices(b);
        let o1 = sa.overlap(&sb);
        let o2 = sb.overlap(&sa);
        prop_assert_eq!(o1, o2);
        prop_assert!(o1 <= sa.num_chunks().min(sb.num_chunks()));
    }

    /// `next_from` always returns a chunk the scan needs, for any position.
    #[test]
    fn next_from_returns_needed_chunk(
        indices in prop::collection::vec(0u32..100, 1..50),
        pos in 0u32..150,
    ) {
        let scan = ScanRanges::from_chunk_indices(indices);
        let next = scan.next_from(ChunkId::new(pos));
        prop_assert!(next.is_some());
        prop_assert!(scan.contains(next.unwrap()));
    }
}
