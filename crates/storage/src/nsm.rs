//! NSM/PAX physical layout.
//!
//! In the row-wise experiments of the paper (Section 5) the storage model is
//! PAX, which "is equivalent to NSM in terms of I/O demand": every page
//! holds all columns for a contiguous run of tuples, a chunk is a fixed
//! number of contiguous pages (16 MB by default), and the whole chunk must
//! be read regardless of which columns a query touches.

use crate::ids::{ChunkId, ColumnId};
use crate::schema::TableSchema;
use crate::{Layout, PhysRegion, DEFAULT_PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// NSM/PAX layout of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NsmLayout {
    schema: TableSchema,
    num_tuples: u64,
    page_size: u64,
    chunk_size: u64,
    tuples_per_page: u64,
    pages_per_chunk: u64,
    tuples_per_chunk: u64,
    num_chunks: u32,
}

impl NsmLayout {
    /// Builds an NSM/PAX layout for `num_tuples` tuples of `schema`, with the
    /// given physical page size and chunk size (both in bytes).
    ///
    /// # Panics
    /// Panics if the chunk size is not a positive multiple of the page size,
    /// or if a single tuple does not fit in a page, or if `num_tuples` is zero.
    pub fn new(schema: TableSchema, num_tuples: u64, page_size: u64, chunk_size: u64) -> Self {
        assert!(num_tuples > 0, "table must contain at least one tuple");
        assert!(
            page_size > 0 && chunk_size > 0,
            "page and chunk size must be positive"
        );
        assert!(
            chunk_size.is_multiple_of(page_size),
            "chunk size ({chunk_size}) must be a multiple of page size ({page_size})"
        );
        let tuple_width = schema.tuple_width_uncompressed();
        assert!(tuple_width <= page_size, "a tuple must fit in one page");
        let tuples_per_page = page_size / tuple_width;
        let pages_per_chunk = chunk_size / page_size;
        let tuples_per_chunk = tuples_per_page * pages_per_chunk;
        let num_chunks = num_tuples.div_ceil(tuples_per_chunk) as u32;
        Self {
            schema,
            num_tuples,
            page_size,
            chunk_size,
            tuples_per_page,
            pages_per_chunk,
            tuples_per_chunk,
            num_chunks,
        }
    }

    /// Builds a layout with the defaults used throughout the paper's
    /// row-storage experiments: 64 KiB pages and 16 MiB chunks.
    pub fn with_defaults(schema: TableSchema, num_tuples: u64) -> Self {
        Self::new(schema, num_tuples, DEFAULT_PAGE_SIZE, 16 * 1024 * 1024)
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Physical page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Chunk size in bytes (full chunks).
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Tuples stored per page.
    pub fn tuples_per_page(&self) -> u64 {
        self.tuples_per_page
    }

    /// Pages per full chunk.
    pub fn pages_per_chunk(&self) -> u64 {
        self.pages_per_chunk
    }

    /// Tuples per full chunk.
    pub fn tuples_per_chunk(&self) -> u64 {
        self.tuples_per_chunk
    }

    /// The range of tuple positions `[start, end)` covered by `chunk`.
    pub fn chunk_tuple_range(&self, chunk: ChunkId) -> (u64, u64) {
        let start = chunk.index() as u64 * self.tuples_per_chunk;
        let end = (start + self.tuples_per_chunk).min(self.num_tuples);
        (start, end)
    }

    /// The chunk containing tuple position `tuple`.
    pub fn chunk_of_tuple(&self, tuple: u64) -> ChunkId {
        debug_assert!(tuple < self.num_tuples);
        ChunkId::new((tuple / self.tuples_per_chunk) as u32)
    }
}

impl Layout for NsmLayout {
    fn num_chunks(&self) -> u32 {
        self.num_chunks
    }

    fn num_tuples(&self) -> u64 {
        self.num_tuples
    }

    fn chunk_tuples(&self, chunk: ChunkId) -> u64 {
        let (start, end) = self.chunk_tuple_range(chunk);
        end.saturating_sub(start)
    }

    fn chunk_pages(&self, chunk: ChunkId, _cols: &[ColumnId]) -> u64 {
        let tuples = self.chunk_tuples(chunk);
        tuples.div_ceil(self.tuples_per_page)
    }

    fn chunk_bytes(&self, chunk: ChunkId, cols: &[ColumnId]) -> u64 {
        self.chunk_pages(chunk, cols) * self.page_size
    }

    fn chunk_regions(&self, chunk: ChunkId, cols: &[ColumnId]) -> Vec<PhysRegion> {
        let offset = chunk.index() as u64 * self.chunk_size;
        let len = self.chunk_bytes(chunk, cols);
        if len == 0 {
            Vec::new()
        } else {
            vec![PhysRegion { offset, len }]
        }
    }

    fn num_columns(&self) -> u16 {
        self.schema.num_columns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn schema() -> TableSchema {
        // 128-byte tuples for easy arithmetic: 16 Int64 columns.
        TableSchema::new(
            "wide",
            (0..16)
                .map(|i| ColumnDef::new(format!("c{i}"), ColumnType::Int64))
                .collect(),
        )
    }

    #[test]
    fn geometry_is_consistent() {
        // 64 KiB pages -> 512 tuples/page; 1 MiB chunks -> 16 pages -> 8192 tuples/chunk.
        let l = NsmLayout::new(schema(), 100_000, 64 * 1024, 1024 * 1024);
        assert_eq!(l.tuples_per_page(), 512);
        assert_eq!(l.pages_per_chunk(), 16);
        assert_eq!(l.tuples_per_chunk(), 8192);
        assert_eq!(l.num_chunks(), 100_000u64.div_ceil(8192) as u32);
        assert_eq!(l.num_tuples(), 100_000);
        assert_eq!(l.num_columns(), 16);
    }

    #[test]
    fn last_chunk_is_partial() {
        let l = NsmLayout::new(schema(), 10_000, 64 * 1024, 1024 * 1024);
        // 10_000 = 8192 + 1808.
        assert_eq!(l.num_chunks(), 2);
        assert_eq!(l.chunk_tuples(ChunkId::new(0)), 8192);
        assert_eq!(l.chunk_tuples(ChunkId::new(1)), 1808);
        // Partial chunk occupies fewer pages: ceil(1808/512) = 4.
        assert_eq!(l.chunk_pages(ChunkId::new(1), &[]), 4);
        assert_eq!(l.chunk_pages(ChunkId::new(0), &[]), 16);
    }

    #[test]
    fn column_set_is_irrelevant_for_nsm() {
        let l = NsmLayout::new(schema(), 100_000, 64 * 1024, 1024 * 1024);
        let one_col = [ColumnId::new(0)];
        let all: Vec<ColumnId> = l.schema().all_columns();
        let c = ChunkId::new(3);
        assert_eq!(l.chunk_pages(c, &one_col), l.chunk_pages(c, &all));
        assert_eq!(l.chunk_bytes(c, &one_col), l.chunk_bytes(c, &all));
    }

    #[test]
    fn regions_are_contiguous_and_ordered() {
        let l = NsmLayout::new(schema(), 100_000, 64 * 1024, 1024 * 1024);
        let r0 = l.chunk_regions(ChunkId::new(0), &[]);
        let r1 = l.chunk_regions(ChunkId::new(1), &[]);
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].offset, 0);
        assert_eq!(r1[0].offset, 1024 * 1024);
        assert_eq!(r0[0].len, 1024 * 1024);
    }

    #[test]
    fn tuple_chunk_mapping_round_trips() {
        let l = NsmLayout::new(schema(), 50_000, 64 * 1024, 1024 * 1024);
        for &t in &[0u64, 1, 8191, 8192, 49_999] {
            let c = l.chunk_of_tuple(t);
            let (start, end) = l.chunk_tuple_range(c);
            assert!(
                t >= start && t < end,
                "tuple {t} not in chunk {c:?} range {start}..{end}"
            );
        }
    }

    #[test]
    fn total_bytes_accounts_for_partial_last_chunk() {
        let l = NsmLayout::new(schema(), 10_000, 64 * 1024, 1024 * 1024);
        let all = l.schema().all_columns();
        let expected = l.chunk_bytes(ChunkId::new(0), &all) + l.chunk_bytes(ChunkId::new(1), &all);
        assert_eq!(l.total_bytes(), expected);
        assert_eq!(l.total_pages(&all), 16 + 4);
    }

    #[test]
    fn paper_scale_sanity() {
        // TPC-H SF-10 lineitem is ~60M tuples and "over 4GB" in the paper.
        // With 70-byte physical tuples and 16MB chunks we should land in the
        // few-hundred-chunks range, which is what makes chunk-level
        // scheduling tractable.
        let schema = TableSchema::new(
            "lineitem_like",
            (0..9)
                .map(|i| ColumnDef::new(format!("c{i}"), ColumnType::Int64))
                .collect(),
        );
        let l = NsmLayout::with_defaults(schema, 60_000_000);
        assert!(
            l.num_chunks() > 100 && l.num_chunks() < 1000,
            "got {}",
            l.num_chunks()
        );
    }

    #[test]
    #[should_panic(expected = "multiple of page size")]
    fn misaligned_chunk_size_rejected() {
        NsmLayout::new(schema(), 1000, 64 * 1024, 100_000);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn empty_table_rejected() {
        NsmLayout::new(schema(), 0, 64 * 1024, 1024 * 1024);
    }
}
