//! Lightweight compression width models.
//!
//! The paper's DSM experiments (Figure 9) rely on columns having widely
//! different *physical* widths because of lightweight compression (PDICT,
//! PFOR, PFOR-DELTA from the authors' ICDE 2006 paper).  For I/O scheduling
//! only the resulting width matters, not the actual encoding, so this module
//! models compression as a bits-per-value figure.  The example operators work
//! on uncompressed in-memory data; compression only shapes the physical
//! layout and therefore the I/O volume.

use crate::schema::ColumnType;
use serde::{Deserialize, Serialize};

/// On-disk compression scheme of a column, reduced to its effect on width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Compression {
    /// Stored uncompressed at the type's natural width.
    #[default]
    None,
    /// Dictionary encoding (PDICT): each value stored as a `bits`-wide code.
    Dictionary {
        /// Bits per dictionary code.
        bits: u8,
    },
    /// Patched frame-of-reference (PFOR): values stored as `bits`-wide
    /// offsets from a per-block base, with an `exception_rate` fraction of
    /// values stored uncompressed as exceptions.
    Pfor {
        /// Bits per compressed value.
        bits: u8,
        /// Fraction of values stored as full-width exceptions (0.0–1.0).
        exception_rate: f32,
    },
    /// PFOR-DELTA: like PFOR but applied to deltas of sorted/clustered data,
    /// typically yielding very small widths.
    PforDelta {
        /// Bits per compressed delta.
        bits: u8,
        /// Fraction of values stored as full-width exceptions (0.0–1.0).
        exception_rate: f32,
    },
}

impl Compression {
    /// Physical width of one value, in bits, for a column of type `ty`.
    pub fn physical_bits(&self, ty: ColumnType) -> u32 {
        let natural_bits = ty.uncompressed_width() as u32 * 8;
        match *self {
            Compression::None => natural_bits,
            Compression::Dictionary { bits } => (bits as u32).min(natural_bits),
            Compression::Pfor {
                bits,
                exception_rate,
            }
            | Compression::PforDelta {
                bits,
                exception_rate,
            } => {
                let rate = exception_rate.clamp(0.0, 1.0) as f64;
                let avg = bits as f64 + rate * natural_bits as f64;
                (avg.ceil() as u32).min(natural_bits)
            }
        }
    }

    /// Compression ratio relative to the uncompressed width (1.0 = no gain).
    pub fn ratio(&self, ty: ColumnType) -> f64 {
        let natural = ty.uncompressed_width() as f64 * 8.0;
        self.physical_bits(ty) as f64 / natural
    }

    /// The compression schemes used for the paper's Figure 9 example columns.
    ///
    /// Returns `(description, scheme)` pairs mirroring the figure:
    /// `orderkey` PFOR-DELTA 3-bit, `partkey` PFOR 21-bit, `returnflag`
    /// PDICT 2-bit, `extendedprice` uncompressed decimal, `comment`
    /// uncompressed string.
    pub fn figure9_examples() -> Vec<(&'static str, Compression)> {
        vec![
            (
                "orderkey: PFOR-DELTA 3-bit",
                Compression::PforDelta {
                    bits: 3,
                    exception_rate: 0.02,
                },
            ),
            (
                "partkey: PFOR 21-bit",
                Compression::Pfor {
                    bits: 21,
                    exception_rate: 0.02,
                },
            ),
            (
                "returnflag: PDICT 2-bit",
                Compression::Dictionary { bits: 2 },
            ),
            ("extendedprice: none (decimal 64)", Compression::None),
            ("comment: none (str 256-bit)", Compression::None),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_natural_width() {
        assert_eq!(Compression::None.physical_bits(ColumnType::Int64), 64);
        assert_eq!(Compression::None.physical_bits(ColumnType::Char), 8);
        assert_eq!(Compression::None.ratio(ColumnType::Int32), 1.0);
    }

    #[test]
    fn dictionary_width_is_code_width() {
        let c = Compression::Dictionary { bits: 2 };
        assert_eq!(c.physical_bits(ColumnType::Char), 2);
        assert_eq!(c.physical_bits(ColumnType::Int64), 2);
        assert!(c.ratio(ColumnType::Char) - 0.25 < 1e-9);
    }

    #[test]
    fn pfor_accounts_for_exceptions() {
        let no_exc = Compression::Pfor {
            bits: 21,
            exception_rate: 0.0,
        };
        assert_eq!(no_exc.physical_bits(ColumnType::Int64), 21);
        let with_exc = Compression::Pfor {
            bits: 21,
            exception_rate: 0.1,
        };
        // 21 + 0.1*64 = 27.4 -> 28 bits.
        assert_eq!(with_exc.physical_bits(ColumnType::Int64), 28);
    }

    #[test]
    fn compression_never_expands() {
        let silly = Compression::Pfor {
            bits: 60,
            exception_rate: 1.0,
        };
        assert_eq!(silly.physical_bits(ColumnType::Int32), 32);
        let dict = Compression::Dictionary { bits: 200 };
        assert_eq!(dict.physical_bits(ColumnType::Char), 8);
    }

    #[test]
    fn pfor_delta_is_typically_tiny() {
        let c = Compression::PforDelta {
            bits: 3,
            exception_rate: 0.02,
        };
        let bits = c.physical_bits(ColumnType::Int64);
        assert!((3..=6).contains(&bits), "got {bits}");
    }

    #[test]
    fn figure9_examples_shrink_where_expected() {
        let examples = Compression::figure9_examples();
        assert_eq!(examples.len(), 5);
        // orderkey compresses dramatically, comment not at all.
        assert!(examples[0].1.ratio(ColumnType::Int64) < 0.1);
        assert_eq!(
            examples[4].1.ratio(ColumnType::Varchar { avg_len: 32 }),
            1.0
        );
    }

    #[test]
    fn exception_rate_is_clamped() {
        let c = Compression::Pfor {
            bits: 8,
            exception_rate: 5.0,
        };
        assert_eq!(c.physical_bits(ColumnType::Int32), 32);
        let d = Compression::Pfor {
            bits: 8,
            exception_rate: -1.0,
        };
        assert_eq!(d.physical_bits(ColumnType::Int32), 8);
    }
}
