//! Lightweight compression schemes and their width models.
//!
//! The paper's DSM experiments (Figure 9) rely on columns having widely
//! different *physical* widths because of lightweight compression (PDICT,
//! PFOR, PFOR-DELTA from the authors' ICDE 2006 paper).  A [`Compression`]
//! value plays two roles:
//!
//! * **Width model** — [`Compression::physical_bits`] predicts the average
//!   bits-per-value a column stored under the scheme occupies, which is
//!   what the I/O scheduling layers (layouts, page counts, relevance
//!   decisions) consume.
//! * **Codec selector** — [`crate::codec::EncodedColumn::encode`] and
//!   [`crate::chunkdata::CompressingStore`] use the same value to pick the
//!   *real* encoder, so chunk payloads actually travel as PDICT / PFOR /
//!   PFOR-DELTA bytes and decompress on first pin.  The codec tests check
//!   that real encoded sizes track this model's predictions.
//!
//! # Equality caveat
//!
//! `Compression` derives `PartialEq` over an `f32` field
//! (`exception_rate`), so it is **not** `Eq`: `NaN != NaN`, which means two
//! schemes built from a NaN rate never compare equal (and must not be used
//! as hash keys).  Use [`Compression::total_eq`] where reflexive,
//! bit-level equality is required.

use crate::schema::ColumnType;
use serde::{Deserialize, Serialize};

/// On-disk compression scheme of a column: the codec to apply, plus the
/// parameters the width model charges for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Compression {
    /// Stored uncompressed at the type's natural width.
    #[default]
    None,
    /// Dictionary encoding (PDICT): each value stored as a `bits`-wide code.
    Dictionary {
        /// Bits per dictionary code.
        bits: u8,
    },
    /// Patched frame-of-reference (PFOR): values stored as `bits`-wide
    /// offsets from a per-block base, with an `exception_rate` fraction of
    /// values stored uncompressed as exceptions.
    Pfor {
        /// Bits per compressed value.
        bits: u8,
        /// Fraction of values stored as full-width exceptions (0.0–1.0).
        exception_rate: f32,
    },
    /// PFOR-DELTA: like PFOR but applied to deltas of sorted/clustered data,
    /// typically yielding very small widths.
    PforDelta {
        /// Bits per compressed delta.
        bits: u8,
        /// Fraction of values stored as full-width exceptions (0.0–1.0).
        exception_rate: f32,
    },
}

impl Compression {
    /// Bit-level total equality: like `==`, but reflexive even when an
    /// `exception_rate` is NaN (compared via [`f32::to_bits`], so `NaN`
    /// equals the *same* NaN).  The derived `PartialEq` follows IEEE float
    /// semantics instead and can therefore not be `Eq`; use this helper
    /// where total equivalence matters (deduplication, cache keys).
    pub fn total_eq(&self, other: &Compression) -> bool {
        use Compression as C;
        match (*self, *other) {
            (C::None, C::None) => true,
            (C::Dictionary { bits: a }, C::Dictionary { bits: b }) => a == b,
            (
                C::Pfor {
                    bits: a,
                    exception_rate: ra,
                },
                C::Pfor {
                    bits: b,
                    exception_rate: rb,
                },
            )
            | (
                C::PforDelta {
                    bits: a,
                    exception_rate: ra,
                },
                C::PforDelta {
                    bits: b,
                    exception_rate: rb,
                },
            ) => a == b && ra.to_bits() == rb.to_bits(),
            _ => false,
        }
    }

    /// Physical width of one value, in bits, for a column of type `ty`.
    pub fn physical_bits(&self, ty: ColumnType) -> u32 {
        let natural_bits = ty.uncompressed_width() as u32 * 8;
        match *self {
            Compression::None => natural_bits,
            Compression::Dictionary { bits } => (bits as u32).min(natural_bits),
            Compression::Pfor {
                bits,
                exception_rate,
            }
            | Compression::PforDelta {
                bits,
                exception_rate,
            } => {
                // A NaN rate is treated as "no exceptions" (clamp would
                // propagate the NaN straight into the width prediction).
                let clamped = if exception_rate.is_nan() {
                    0.0
                } else {
                    exception_rate.clamp(0.0, 1.0)
                };
                let rate = clamped as f64;
                let avg = bits as f64 + rate * natural_bits as f64;
                (avg.ceil() as u32).min(natural_bits)
            }
        }
    }

    /// Compression ratio relative to the uncompressed width (1.0 = no gain).
    pub fn ratio(&self, ty: ColumnType) -> f64 {
        let natural = ty.uncompressed_width() as f64 * 8.0;
        self.physical_bits(ty) as f64 / natural
    }

    /// The compression schemes used for the paper's Figure 9 example columns.
    ///
    /// Returns `(description, scheme)` pairs mirroring the figure:
    /// `orderkey` PFOR-DELTA 3-bit, `partkey` PFOR 21-bit, `returnflag`
    /// PDICT 2-bit, `extendedprice` uncompressed decimal, `comment`
    /// uncompressed string.
    pub fn figure9_examples() -> Vec<(&'static str, Compression)> {
        vec![
            (
                "orderkey: PFOR-DELTA 3-bit",
                Compression::PforDelta {
                    bits: 3,
                    exception_rate: 0.02,
                },
            ),
            (
                "partkey: PFOR 21-bit",
                Compression::Pfor {
                    bits: 21,
                    exception_rate: 0.02,
                },
            ),
            (
                "returnflag: PDICT 2-bit",
                Compression::Dictionary { bits: 2 },
            ),
            ("extendedprice: none (decimal 64)", Compression::None),
            ("comment: none (str 256-bit)", Compression::None),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_natural_width() {
        assert_eq!(Compression::None.physical_bits(ColumnType::Int64), 64);
        assert_eq!(Compression::None.physical_bits(ColumnType::Char), 8);
        assert_eq!(Compression::None.ratio(ColumnType::Int32), 1.0);
    }

    #[test]
    fn dictionary_width_is_code_width() {
        let c = Compression::Dictionary { bits: 2 };
        assert_eq!(c.physical_bits(ColumnType::Char), 2);
        assert_eq!(c.physical_bits(ColumnType::Int64), 2);
        assert!(c.ratio(ColumnType::Char) - 0.25 < 1e-9);
    }

    #[test]
    fn pfor_accounts_for_exceptions() {
        let no_exc = Compression::Pfor {
            bits: 21,
            exception_rate: 0.0,
        };
        assert_eq!(no_exc.physical_bits(ColumnType::Int64), 21);
        let with_exc = Compression::Pfor {
            bits: 21,
            exception_rate: 0.1,
        };
        // 21 + 0.1*64 = 27.4 -> 28 bits.
        assert_eq!(with_exc.physical_bits(ColumnType::Int64), 28);
    }

    #[test]
    fn compression_never_expands() {
        let silly = Compression::Pfor {
            bits: 60,
            exception_rate: 1.0,
        };
        assert_eq!(silly.physical_bits(ColumnType::Int32), 32);
        let dict = Compression::Dictionary { bits: 200 };
        assert_eq!(dict.physical_bits(ColumnType::Char), 8);
    }

    #[test]
    fn pfor_delta_is_typically_tiny() {
        let c = Compression::PforDelta {
            bits: 3,
            exception_rate: 0.02,
        };
        let bits = c.physical_bits(ColumnType::Int64);
        assert!((3..=6).contains(&bits), "got {bits}");
    }

    #[test]
    fn figure9_examples_shrink_where_expected() {
        let examples = Compression::figure9_examples();
        assert_eq!(examples.len(), 5);
        // orderkey compresses dramatically, comment not at all.
        assert!(examples[0].1.ratio(ColumnType::Int64) < 0.1);
        assert_eq!(
            examples[4].1.ratio(ColumnType::Varchar { avg_len: 32 }),
            1.0
        );
    }

    #[test]
    fn exception_rate_is_clamped() {
        let c = Compression::Pfor {
            bits: 8,
            exception_rate: 5.0,
        };
        assert_eq!(c.physical_bits(ColumnType::Int32), 32);
        let d = Compression::Pfor {
            bits: 8,
            exception_rate: -1.0,
        };
        assert_eq!(d.physical_bits(ColumnType::Int32), 8);
    }

    #[test]
    fn exception_rate_boundary_values_are_exact() {
        // Exactly 0.0: the packed width alone.
        let zero = Compression::Pfor {
            bits: 13,
            exception_rate: 0.0,
        };
        assert_eq!(zero.physical_bits(ColumnType::Int64), 13);
        // Exactly 1.0: every value is a full-width exception on top of its
        // packed slot — capped at the natural width.
        let one = Compression::PforDelta {
            bits: 13,
            exception_rate: 1.0,
        };
        assert_eq!(one.physical_bits(ColumnType::Int64), 64);
        assert_eq!(one.physical_bits(ColumnType::Char), 8);
    }

    #[test]
    fn bits_at_or_above_natural_width_cap_at_natural() {
        // `bits` equal to the natural width: nothing gained, nothing lost.
        let at = Compression::Pfor {
            bits: 32,
            exception_rate: 0.0,
        };
        assert_eq!(at.physical_bits(ColumnType::Int32), 32);
        assert!((at.ratio(ColumnType::Int32) - 1.0).abs() < 1e-9);
        // `bits` beyond the natural width: the model refuses to expand.
        let over = Compression::PforDelta {
            bits: 64,
            exception_rate: 0.5,
        };
        assert_eq!(over.physical_bits(ColumnType::Int32), 32);
    }

    #[test]
    fn zero_width_dictionary_is_a_constant_column() {
        // A 0-bit dictionary models a single-valued column: the width model
        // charges zero bits (the real codec clamps its codes to 1 bit, a
        // discrepancy the codec size tests document).
        let c = Compression::Dictionary { bits: 0 };
        assert_eq!(c.physical_bits(ColumnType::Int64), 0);
        assert_eq!(c.ratio(ColumnType::Int64), 0.0);
    }

    #[test]
    fn nan_exception_rate_and_total_eq() {
        let nan = Compression::Pfor {
            bits: 8,
            exception_rate: f32::NAN,
        };
        // Derived PartialEq follows IEEE semantics: NaN != NaN.
        #[allow(clippy::eq_op)]
        {
            assert_ne!(nan, nan);
        }
        // total_eq is reflexive (bitwise) — and NaN clamps to 0.0 in the
        // width model, so the prediction stays finite.
        assert!(nan.total_eq(&nan));
        assert_eq!(nan.physical_bits(ColumnType::Int64), 8);
        let plain = Compression::Pfor {
            bits: 8,
            exception_rate: 0.25,
        };
        assert!(plain.total_eq(&plain));
        assert!(!plain.total_eq(&nan));
        assert!(!plain.total_eq(&Compression::None));
        assert!(Compression::None.total_eq(&Compression::None));
        // Pfor and PforDelta with identical params are *different* schemes.
        let delta = Compression::PforDelta {
            bits: 8,
            exception_rate: 0.25,
        };
        assert!(!plain.total_eq(&delta));
        assert!(Compression::Dictionary { bits: 4 }.total_eq(&Compression::Dictionary { bits: 4 }));
        assert!(!Compression::Dictionary { bits: 4 }.total_eq(&Compression::Dictionary { bits: 5 }));
    }
}
