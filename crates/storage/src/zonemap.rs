//! Zonemaps ("small materialized aggregates").
//!
//! Section 2 of the paper describes keeping a min- and max-value per column
//! per large disk block, so that range selections — even on columns the
//! table is not ordered on, as long as they are *correlated* with the
//! clustering order — can skip irrelevant blocks.  The result is a scan plan
//! consisting of multiple non-contiguous chunk ranges, one of the reasons the
//! `attach` policy struggles (Section 3).

use crate::ids::{ChunkId, ColumnId};
use crate::scan::ScanRanges;
use serde::{Deserialize, Serialize};

/// Per-chunk minimum and maximum of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneEntry {
    /// Smallest value of the column within the chunk.
    pub min: i64,
    /// Largest value of the column within the chunk.
    pub max: i64,
}

/// Min/max metadata for one column over all chunks of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    column: ColumnId,
    entries: Vec<ZoneEntry>,
}

impl ZoneMap {
    /// Creates a zonemap for `column` from per-chunk `(min, max)` pairs.
    ///
    /// # Panics
    /// Panics if any entry has `min > max`.
    pub fn new(column: ColumnId, entries: Vec<ZoneEntry>) -> Self {
        for (i, e) in entries.iter().enumerate() {
            assert!(
                e.min <= e.max,
                "zonemap entry {i} has min {} > max {}",
                e.min,
                e.max
            );
        }
        Self { column, entries }
    }

    /// Builds a zonemap by scanning per-chunk value iterators.
    pub fn build<I, C>(column: ColumnId, chunks: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = i64>,
    {
        let entries = chunks
            .into_iter()
            .map(|chunk| {
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                let mut any = false;
                for v in chunk {
                    any = true;
                    min = min.min(v);
                    max = max.max(v);
                }
                if any {
                    ZoneEntry { min, max }
                } else {
                    // An empty chunk can never satisfy a predicate; the inverted
                    // sentinel makes `chunk_may_match` false for all finite ranges.
                    ZoneEntry {
                        min: i64::MAX,
                        max: i64::MIN,
                    }
                }
            })
            .collect();
        Self { column, entries }
    }

    /// The column this zonemap describes.
    pub fn column(&self) -> ColumnId {
        self.column
    }

    /// Number of chunks covered.
    pub fn num_chunks(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The entry for `chunk`.
    pub fn entry(&self, chunk: ChunkId) -> ZoneEntry {
        self.entries[chunk.as_usize()]
    }

    /// Whether `chunk` may contain values in `[lo, hi]` (inclusive).
    pub fn chunk_may_match(&self, chunk: ChunkId, lo: i64, hi: i64) -> bool {
        let e = self.entries[chunk.as_usize()];
        e.max >= lo && e.min <= hi
    }

    /// The chunks that may contain values in `[lo, hi]`, as coalesced ranges.
    pub fn matching_ranges(&self, lo: i64, hi: i64) -> ScanRanges {
        let matching =
            (0..self.num_chunks()).filter(|&c| self.chunk_may_match(ChunkId::new(c), lo, hi));
        ScanRanges::from_chunk_indices(matching)
    }

    /// Fraction of chunks that may match `[lo, hi]` — the scan's effective selectivity
    /// at chunk granularity.
    pub fn selectivity(&self, lo: i64, hi: i64) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let matching = (0..self.num_chunks())
            .filter(|&c| self.chunk_may_match(ChunkId::new(c), lo, hi))
            .count();
        matching as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clustered (sorted) column: chunk i holds values [i*100, i*100+99].
    fn clustered(chunks: u32) -> ZoneMap {
        ZoneMap::new(
            ColumnId::new(0),
            (0..chunks as i64)
                .map(|i| ZoneEntry {
                    min: i * 100,
                    max: i * 100 + 99,
                })
                .collect(),
        )
    }

    #[test]
    fn clustered_column_gives_contiguous_ranges() {
        let zm = clustered(10);
        let ranges = zm.matching_ranges(250, 449);
        let chunks = ranges.chunks();
        assert_eq!(
            chunks,
            vec![ChunkId::new(2), ChunkId::new(3), ChunkId::new(4)]
        );
        assert_eq!(
            ranges.ranges().len(),
            1,
            "contiguous chunks coalesce into one range"
        );
        assert!((zm.selectivity(250, 449) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn correlated_column_gives_multiple_ranges() {
        // A column correlated with, but not identical to, the clustering
        // order: some chunks have outlier ranges.
        let zm = ZoneMap::new(
            ColumnId::new(1),
            vec![
                ZoneEntry { min: 0, max: 10 },
                ZoneEntry { min: 8, max: 20 },
                ZoneEntry { min: 100, max: 120 },
                ZoneEntry { min: 15, max: 30 },
                ZoneEntry { min: 200, max: 220 },
            ],
        );
        let ranges = zm.matching_ranges(9, 25);
        assert_eq!(
            ranges.chunks(),
            vec![ChunkId::new(0), ChunkId::new(1), ChunkId::new(3)],
            "chunk 2 and 4 are skipped"
        );
        assert_eq!(
            ranges.ranges().len(),
            2,
            "non-contiguous matches produce multiple ranges"
        );
    }

    #[test]
    fn no_match_yields_empty_plan() {
        let zm = clustered(5);
        let ranges = zm.matching_ranges(10_000, 20_000);
        assert!(ranges.is_empty());
        assert_eq!(zm.selectivity(10_000, 20_000), 0.0);
    }

    #[test]
    fn full_match_yields_full_table() {
        let zm = clustered(5);
        let ranges = zm.matching_ranges(i64::MIN, i64::MAX);
        assert_eq!(ranges.num_chunks(), 5);
        assert_eq!(zm.selectivity(i64::MIN, i64::MAX), 1.0);
    }

    #[test]
    fn build_from_values() {
        let zm = ZoneMap::build(
            ColumnId::new(2),
            vec![vec![5i64, 3, 9], vec![100, 42], vec![-7, 0]],
        );
        assert_eq!(zm.num_chunks(), 3);
        assert_eq!(zm.entry(ChunkId::new(0)), ZoneEntry { min: 3, max: 9 });
        assert_eq!(zm.entry(ChunkId::new(1)), ZoneEntry { min: 42, max: 100 });
        assert!(zm.chunk_may_match(ChunkId::new(2), -10, -5));
        assert!(!zm.chunk_may_match(ChunkId::new(0), 10, 20));
        assert_eq!(zm.column(), ColumnId::new(2));
    }

    #[test]
    #[should_panic(expected = "min")]
    fn inverted_entry_rejected() {
        ZoneMap::new(ColumnId::new(0), vec![ZoneEntry { min: 10, max: 5 }]);
    }

    #[test]
    fn boundary_inclusive_semantics() {
        let zm = clustered(3);
        // Predicate exactly at a chunk's max matches that chunk.
        assert!(zm.chunk_may_match(ChunkId::new(0), 99, 99));
        assert!(zm.chunk_may_match(ChunkId::new(1), 100, 100));
        assert!(!zm.chunk_may_match(ChunkId::new(0), 100, 100));
    }
}
