//! Real lightweight-compression codecs: PDICT, PFOR and PFOR-DELTA.
//!
//! [`crate::compression::Compression`] predicts physical widths; this module
//! actually produces (and consumes) the bytes.  An [`EncodedColumn`] is one
//! mini-column of one chunk, encoded block-wise with the schemes of the
//! authors' ICDE 2006 compression paper:
//!
//! * **PFOR** — patched frame-of-reference: per block of
//!   [`BLOCK_LEN`] values, a 64-bit base (the block minimum) plus
//!   `bits`-wide packed offsets; values whose offset does not fit are
//!   *exceptions*, stored verbatim in a patch list (position + raw value),
//!   so encoding is lossless for any `i64` data at any configured width.
//! * **PFOR-DELTA** — the same block encoder applied to the wrapping
//!   first-difference of the column, which turns sorted/clustered data
//!   (keys, dates) into tiny offsets.
//! * **PDICT** — dictionary encoding: the distinct values of the column,
//!   followed by bit-packed codes.  The code width is chosen from the
//!   actual dictionary size (never wider than needed, never too narrow to
//!   be lossless); the scheme's `bits` parameter is the *model's* width
//!   prediction, which the tests compare against.
//!
//! Every codec round-trips exactly: `decode(encode(v)) == v` for arbitrary
//! `i64` input, including all-exception blocks (proptested).  Decoding is
//! the CPU cost the paper's Figure 9 trades against I/O volume; the
//! executor performs it lazily on first pin, **never under the hub lock**
//! — which [`forbid_decode`] / [`assert_decode_allowed`] lets the threaded
//! executor assert at runtime in debug builds.

use crate::compression::Compression;
use std::cell::Cell;

/// Number of values per PFOR/PFOR-DELTA block.  128 keeps the per-block
/// header (base + exception count) under one bit per value.
pub const BLOCK_LEN: usize = 128;

// ---------------------------------------------------------------------
// Decode-under-lock guard.
// ---------------------------------------------------------------------

thread_local! {
    /// Depth of "decoding is forbidden here" scopes on this thread.
    static DECODE_FORBIDDEN: Cell<u32> = const { Cell::new(0) };
}

/// RAII token marking the current thread as *forbidden to decode* (the
/// threaded executor holds one for the lifetime of every hub-lock guard).
/// Dropping it re-allows decoding.
#[derive(Debug)]
pub struct DecodeForbidden(());

impl Drop for DecodeForbidden {
    fn drop(&mut self) {
        DECODE_FORBIDDEN.with(|c| c.set(c.get() - 1));
    }
}

/// Forbids payload decoding on this thread until the returned token drops.
///
/// The executor's invariant "never decode under the hub lock" is enforced
/// by taking a token whenever the lock is held; [`assert_decode_allowed`]
/// fires (in debug builds) if a decode happens inside such a scope.
pub fn forbid_decode() -> DecodeForbidden {
    DECODE_FORBIDDEN.with(|c| c.set(c.get() + 1));
    DecodeForbidden(())
}

/// Debug-asserts that the current thread is allowed to decode (i.e. it does
/// not hold the executor's hub lock).  Called by every decode entry point.
pub fn assert_decode_allowed() {
    debug_assert_eq!(
        DECODE_FORBIDDEN.with(|c| c.get()),
        0,
        "payload decode attempted while decoding is forbidden on this thread \
         (the executor must never decode under the hub lock)"
    );
}

// ---------------------------------------------------------------------
// Bit packing.
// ---------------------------------------------------------------------

/// Appends `count × bits`-wide values to `out`, little-endian bit order.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u128,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        Self {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    fn push(&mut self, v: u64, bits: u32) {
        debug_assert!((1..=64).contains(&bits));
        debug_assert!(bits == 64 || v < (1u64 << bits), "value does not fit");
        self.acc |= (v as u128) << self.nbits;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.acc = 0;
        self.nbits = 0;
    }
}

/// Reads `bits`-wide values from a byte slice, little-endian bit order.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u128,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn pull(&mut self, bits: u32) -> u64 {
        debug_assert!((1..=64).contains(&bits));
        while self.nbits < bits {
            let byte = self.bytes[self.pos];
            self.pos += 1;
            self.acc |= (byte as u128) << self.nbits;
            self.nbits += 8;
        }
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let v = (self.acc as u64) & mask;
        self.acc >>= bits;
        self.nbits -= bits;
        v
    }

    /// Bytes consumed so far (the partial accumulator byte counts as read).
    fn consumed(&self) -> usize {
        self.pos
    }
}

/// Bytes needed to pack `count` values of `bits` width.
fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

// ---------------------------------------------------------------------
// Payload integrity checksum.
// ---------------------------------------------------------------------

/// A fast 64-bit integrity checksum over a byte stream (CRC-class error
/// detection at memory bandwidth).
///
/// A multiply-xor mix over little-endian 64-bit words: every input bit
/// diffuses through the full state within two rounds, so any single flipped
/// bit — and any burst shorter than a word — changes the checksum with
/// probability `1 - 2⁻⁶⁴`.  Chosen over a table-driven CRC32 because the
/// clean consume path verifies every encoded column on first pin, and a
/// word-at-a-time mix runs an order of magnitude faster than a byte-wise
/// table walk (the 5% overhead budget of the fault-free path is real).
pub fn checksum64(bytes: &[u8]) -> u64 {
    const MIX: u64 = 0x2545_F491_4F6C_DD1D;
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let word = u64::from_le_bytes(w.try_into().expect("exact 8-byte chunk"));
        h = (h ^ word).wrapping_mul(MIX);
        h ^= h >> 29;
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(MIX);
        h ^= h >> 29;
    }
    h
}

// ---------------------------------------------------------------------
// Byte-stream helpers.
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.bytes[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

// ---------------------------------------------------------------------
// The encoded-column container.
// ---------------------------------------------------------------------

/// Wire codec of an encoded column.  Chosen from the column's
/// [`Compression`] scheme at encode time and stored in the byte stream, so
/// decoding is self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireCodec {
    /// Uncompressed little-endian `i64`s.
    Raw,
    /// Dictionary codes over a sorted distinct-value table.
    Dict,
    /// Patched frame-of-reference blocks.
    Pfor,
    /// PFOR over the wrapping first-difference.
    PforDelta,
}

impl WireCodec {
    fn tag(self) -> u8 {
        match self {
            WireCodec::Raw => 0,
            WireCodec::Dict => 1,
            WireCodec::Pfor => 2,
            WireCodec::PforDelta => 3,
        }
    }

    fn from_tag(tag: u8) -> WireCodec {
        match tag {
            0 => WireCodec::Raw,
            1 => WireCodec::Dict,
            2 => WireCodec::Pfor,
            3 => WireCodec::PforDelta,
            t => panic!("corrupt encoded column: unknown codec tag {t}"),
        }
    }
}

/// One mini-column of one chunk, encoded.
///
/// The container is cheap to clone ([`std::sync::Arc`]d bytes would be
/// cheaper still, but encoded columns are wrapped in
/// [`crate::chunkdata::LazyColumn`]'s `Arc` anyway).  Use
/// [`EncodedColumn::decode`] to materialize the values; decoding asserts
/// [`assert_decode_allowed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedColumn {
    rows: usize,
    bytes: Vec<u8>,
    /// [`checksum64`] of `bytes` as computed at encode time.  Verified at
    /// payload install and again at decode-on-first-pin, so a corrupted
    /// read surfaces as a retryable fault instead of a decoder panic.
    checksum: u64,
}

impl EncodedColumn {
    /// Encodes `values` under `scheme`.
    ///
    /// Encoding is total: any `i64` data round-trips under any scheme
    /// (values that do not fit the configured width become exceptions; a
    /// dictionary always holds every distinct value).
    pub fn encode(values: &[i64], scheme: Compression) -> EncodedColumn {
        let mut bytes = Vec::new();
        match scheme {
            Compression::None => {
                bytes.push(WireCodec::Raw.tag());
                bytes.reserve(values.len() * 8);
                for &v in values {
                    put_i64(&mut bytes, v);
                }
            }
            Compression::Dictionary { .. } => {
                bytes.push(WireCodec::Dict.tag());
                encode_dict(values, &mut bytes);
            }
            Compression::Pfor { bits, .. } => {
                bytes.push(WireCodec::Pfor.tag());
                encode_for_blocks(values, clamp_bits(bits), &mut bytes);
            }
            Compression::PforDelta { bits, .. } => {
                bytes.push(WireCodec::PforDelta.tag());
                let deltas = delta_transform(values);
                encode_for_blocks(&deltas, clamp_bits(bits), &mut bytes);
            }
        }
        let checksum = checksum64(&bytes);
        EncodedColumn {
            rows: values.len(),
            bytes,
            checksum,
        }
    }

    /// Reassembles a column from stored parts — the segment-file read path.
    ///
    /// `checksum` is the integrity checksum *recorded at encode time* (a
    /// segment footer carries it alongside the extent), not one recomputed
    /// from `bytes`: a byte damaged on disk or in flight must make
    /// [`EncodedColumn::verify_checksum`] fail at payload install, exactly
    /// as it does for a torn in-memory read.  Returns `None` when the bytes
    /// cannot possibly be an encoded column (empty, or an unknown leading
    /// wire-codec tag) so a reader can map that to a corruption error
    /// instead of panicking inside the decoder.
    pub fn from_parts(rows: usize, bytes: Vec<u8>, checksum: u64) -> Option<EncodedColumn> {
        match bytes.first() {
            Some(&tag) if tag <= WireCodec::PforDelta.tag() => Some(EncodedColumn {
                rows,
                bytes,
                checksum,
            }),
            _ => None,
        }
    }

    /// The encoded byte stream (leading wire-codec tag included) — what a
    /// segment writer persists verbatim.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The wire-codec tag byte (the first encoded byte), for directory
    /// metadata that wants to name the codec without decoding.
    pub fn wire_tag(&self) -> u8 {
        self.bytes[0]
    }

    /// Number of values in the column (known without decoding).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The integrity checksum recorded at encode time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum of the current bytes and compares it to the
    /// one recorded at encode time.  `false` means the bytes were damaged
    /// in flight (treat as a transient storage fault, not a panic).
    pub fn verify_checksum(&self) -> bool {
        checksum64(&self.bytes) == self.checksum
    }

    /// A copy of this column with one byte flipped and the *original*
    /// checksum kept — a torn read, as a fault injector would produce it.
    /// `selector` picks (deterministically) which byte and which bit.
    pub fn with_flipped_byte(&self, selector: u64) -> EncodedColumn {
        let mut bytes = self.bytes.clone();
        if !bytes.is_empty() {
            let idx = (selector as usize) % bytes.len();
            bytes[idx] ^= 1u8 << ((selector >> 32) % 8);
        }
        EncodedColumn {
            rows: self.rows,
            bytes,
            checksum: self.checksum,
        }
    }

    /// Encoded size in bytes (the column's physical I/O volume).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Average encoded width in bits per value (∞-safe: 0 for empty).
    pub fn bits_per_value(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bytes.len() as f64 * 8.0 / self.rows as f64
        }
    }

    /// Decodes the column back to its values.
    ///
    /// This is the CPU cost that lightweight compression trades against
    /// I/O volume; callers must not hold the executor's hub lock
    /// (debug-asserted via [`assert_decode_allowed`]).
    pub fn decode(&self) -> Vec<i64> {
        assert_decode_allowed();
        let mut out = Vec::with_capacity(self.rows);
        self.decode_into(&mut out);
        out
    }

    /// Decodes into a caller-provided buffer (cleared first).
    pub fn decode_into(&self, out: &mut Vec<i64>) {
        assert_decode_allowed();
        out.clear();
        out.reserve(self.rows);
        let codec = WireCodec::from_tag(self.bytes[0]);
        let body = &self.bytes[1..];
        match codec {
            WireCodec::Raw => {
                let mut c = Cursor::new(body);
                for _ in 0..self.rows {
                    out.push(c.i64());
                }
            }
            WireCodec::Dict => decode_dict(body, self.rows, out),
            WireCodec::Pfor => decode_for_blocks(body, self.rows, out),
            WireCodec::PforDelta => {
                decode_for_blocks(body, self.rows, out);
                // Invert the wrapping first-difference in place.
                let mut acc = 0i64;
                for v in out.iter_mut() {
                    acc = acc.wrapping_add(*v);
                    *v = acc;
                }
            }
        }
    }
}

/// The packed width actually used for a scheme's `bits` parameter
/// (clamped to `1..=64`; a 0-bit request still needs 1 bit per offset).
fn clamp_bits(bits: u8) -> u32 {
    (bits as u32).clamp(1, 64)
}

/// The wrapping first-difference of `values` (`d[0] = v[0]`).
fn delta_transform(values: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0i64;
    for &v in values {
        out.push(v.wrapping_sub(prev));
        prev = v;
    }
    out
}

// ---------------------------------------------------------------------
// PFOR blocks.
// ---------------------------------------------------------------------

/// Encodes `values` as patched frame-of-reference blocks of
/// [`BLOCK_LEN`]: `u16 len, i64 base, u16 n_exceptions, packed offsets,
/// exceptions (u16 in-block position + i64 raw value)`.
fn encode_for_blocks(values: &[i64], bits: u32, out: &mut Vec<u8>) {
    out.push(bits as u8);
    for block in values.chunks(BLOCK_LEN) {
        let base = block.iter().copied().min().unwrap_or(0);
        put_u16(out, block.len() as u16);
        put_i64(out, base);
        // First pass: find the exceptions (offset does not fit in `bits`).
        let fits = |v: i64| -> bool {
            let off = v.wrapping_sub(base) as u64;
            bits == 64 || off < (1u64 << bits)
        };
        let n_exc = block.iter().filter(|&&v| !fits(v)).count();
        put_u16(out, n_exc as u16);
        let mut w = BitWriter::new(out);
        for &v in block {
            let off = if fits(v) {
                v.wrapping_sub(base) as u64
            } else {
                0
            };
            w.push(off, bits);
        }
        w.finish();
        for (i, &v) in block.iter().enumerate() {
            if !fits(v) {
                put_u16(out, i as u16);
                put_i64(out, v);
            }
        }
    }
}

fn decode_for_blocks(body: &[u8], rows: usize, out: &mut Vec<i64>) {
    let bits = body[0] as u32;
    let mut c = Cursor::new(&body[1..]);
    let mut decoded = 0usize;
    while decoded < rows {
        let len = c.u16() as usize;
        let base = c.i64();
        let n_exc = c.u16() as usize;
        let packed = c.take(packed_len(len, bits));
        let mut r = BitReader::new(packed);
        let start = out.len();
        for _ in 0..len {
            out.push(base.wrapping_add(r.pull(bits) as i64));
        }
        debug_assert_eq!(r.consumed(), packed.len());
        for _ in 0..n_exc {
            let pos = c.u16() as usize;
            let v = c.i64();
            out[start + pos] = v;
        }
        decoded += len;
    }
    debug_assert_eq!(decoded, rows, "corrupt encoded column: row count");
}

// ---------------------------------------------------------------------
// PDICT.
// ---------------------------------------------------------------------

/// Bits needed to address `n` dictionary entries (at least 1).
fn code_width(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
}

/// Encodes `values` as `u32 dict_len, dict (i64 each, sorted), u8 width,
/// packed codes`.  The dictionary holds every distinct value, so encoding
/// is lossless regardless of the scheme's modelled code width.
fn encode_dict(values: &[i64], out: &mut Vec<u8>) {
    let mut dict: Vec<i64> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    put_u32(out, dict.len() as u32);
    for &v in &dict {
        put_i64(out, v);
    }
    let width = code_width(dict.len());
    out.push(width as u8);
    let mut w = BitWriter::new(out);
    for &v in values {
        let code = dict.binary_search(&v).expect("value is in the dictionary");
        w.push(code as u64, width);
    }
    w.finish();
}

fn decode_dict(body: &[u8], rows: usize, out: &mut Vec<i64>) {
    let mut c = Cursor::new(body);
    let dict_len = c.u32() as usize;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(c.i64());
    }
    let width = c.take(1)[0] as u32;
    let packed = c.take(packed_len(rows, width));
    let mut r = BitReader::new(packed);
    for _ in 0..rows {
        out.push(dict[r.pull(width) as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: &[i64], scheme: Compression) -> EncodedColumn {
        let enc = EncodedColumn::encode(values, scheme);
        assert_eq!(enc.rows(), values.len());
        assert_eq!(enc.decode(), values, "{scheme:?} must round-trip");
        enc
    }

    #[test]
    fn raw_roundtrip_and_size() {
        let values: Vec<i64> = (0..1000).map(|i| i * 37 - 500).collect();
        let enc = roundtrip(&values, Compression::None);
        assert_eq!(enc.encoded_bytes(), 1 + 8 * 1000);
        assert!((enc.bits_per_value() - 64.0).abs() < 0.1);
    }

    #[test]
    fn pfor_roundtrip_no_exceptions() {
        // Offsets fit in 21 bits: no exceptions, ~21 bits/value + headers.
        let values: Vec<i64> = (0..4096)
            .map(|i| 1_000_000 + (i * 511) % (1 << 21))
            .collect();
        let enc = roundtrip(
            &values,
            Compression::Pfor {
                bits: 21,
                exception_rate: 0.0,
            },
        );
        let predicted = 21.0;
        assert!(
            enc.bits_per_value() < predicted + 2.0,
            "got {} bits/value",
            enc.bits_per_value()
        );
    }

    #[test]
    fn pfor_all_exceptions_block() {
        // A width-1 encoding of huge random-ish values: every value except
        // the block minimum is an exception; still lossless.
        let values: Vec<i64> = (0..300)
            .map(|i: i64| i.wrapping_mul(0x9E3779B97F4A7C15u64 as i64) ^ (i << 40))
            .collect();
        let enc = roundtrip(
            &values,
            Compression::Pfor {
                bits: 1,
                exception_rate: 1.0,
            },
        );
        // Exceptions cost ~80 bits each; the encoding must not be silently
        // lossy just because it ended up bigger than raw.
        assert!(enc.bits_per_value() > 64.0);
    }

    #[test]
    fn pfor_delta_on_sorted_data_is_tiny() {
        // A clustered key: ~4 rows per key, strictly non-decreasing.
        let values: Vec<i64> = (0..8192).map(|i| i / 4).collect();
        let enc = roundtrip(
            &values,
            Compression::PforDelta {
                bits: 3,
                exception_rate: 0.0,
            },
        );
        assert!(
            enc.bits_per_value() < 5.0,
            "sorted data must compress hard, got {} bits/value",
            enc.bits_per_value()
        );
    }

    #[test]
    fn pfor_delta_extreme_values_roundtrip() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX];
        roundtrip(
            &values,
            Compression::PforDelta {
                bits: 7,
                exception_rate: 0.0,
            },
        );
    }

    #[test]
    fn dict_roundtrip_and_size() {
        let values: Vec<i64> = (0..10_000).map(|i| [7, -3, 900, 12][i % 4]).collect();
        let enc = roundtrip(&values, Compression::Dictionary { bits: 2 });
        // 4 distinct values -> 2-bit codes; dictionary header amortizes out.
        assert!(
            enc.bits_per_value() < 3.0,
            "got {} bits/value",
            enc.bits_per_value()
        );
    }

    #[test]
    fn dict_single_value_column() {
        let values = vec![42i64; 500];
        let enc = roundtrip(&values, Compression::Dictionary { bits: 0 });
        // One entry still needs 1-bit codes (the clamp of `code_width`).
        assert!(enc.bits_per_value() < 2.0);
    }

    #[test]
    fn empty_column_roundtrips_under_every_scheme() {
        for scheme in [
            Compression::None,
            Compression::Dictionary { bits: 4 },
            Compression::Pfor {
                bits: 13,
                exception_rate: 0.1,
            },
            Compression::PforDelta {
                bits: 3,
                exception_rate: 0.1,
            },
        ] {
            let enc = roundtrip(&[], scheme);
            assert_eq!(enc.rows(), 0);
            assert_eq!(enc.bits_per_value(), 0.0);
        }
    }

    #[test]
    fn zero_bit_schemes_are_clamped_to_one() {
        let values: Vec<i64> = (0..200).map(|i| i % 2).collect();
        roundtrip(
            &values,
            Compression::Pfor {
                bits: 0,
                exception_rate: 0.0,
            },
        );
    }

    #[test]
    fn encoded_size_tracks_the_width_model() {
        // Data manufactured to the model's assumptions: offsets that fit in
        // `bits`, with an `exception_rate` fraction of full-width outliers.
        let bits = 21u8;
        let rate = 0.02f32;
        let n = 64 * 1024;
        let values: Vec<i64> = (0..n)
            .map(|i| {
                if i % 50 == 0 {
                    i64::MAX - i as i64 // outlier -> exception (1 in 50 = 2%)
                } else {
                    (i as i64 * 919) % (1 << 21)
                }
            })
            .collect();
        let scheme = Compression::Pfor {
            bits,
            exception_rate: rate,
        };
        let enc = roundtrip(&values, scheme);
        let predicted = scheme.physical_bits(crate::schema::ColumnType::Int64) as f64;
        // The model charges `bits + rate*64`; the real encoding adds a u16
        // patch position per exception and ~1 bit/value of block headers,
        // so actual lands slightly above the prediction but within a few
        // bits — close enough that the model's I/O volumes are honest.
        let actual = enc.bits_per_value();
        assert!(
            actual >= bits as f64 && actual <= predicted + 4.0,
            "predicted {predicted} bits/value, got {actual}"
        );
    }

    #[test]
    fn clean_columns_verify_and_flips_are_caught() {
        let values: Vec<i64> = (0..2048).map(|i| i * 17 - 9000).collect();
        for scheme in [
            Compression::None,
            Compression::Dictionary { bits: 11 },
            Compression::Pfor {
                bits: 17,
                exception_rate: 0.01,
            },
            Compression::PforDelta {
                bits: 6,
                exception_rate: 0.01,
            },
        ] {
            let enc = EncodedColumn::encode(&values, scheme);
            assert!(enc.verify_checksum(), "{scheme:?}: clean bytes verify");
            // Every deterministic flip position must be detected.
            for selector in [0u64, 1, 3 | (5 << 32), 12345, u64::MAX] {
                let torn = enc.with_flipped_byte(selector);
                assert!(
                    !torn.verify_checksum(),
                    "{scheme:?}: flip {selector:#x} must break the checksum"
                );
                assert_eq!(torn.rows(), enc.rows());
            }
        }
    }

    #[test]
    fn checksum64_is_length_and_content_sensitive() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"\0"), checksum64(b"\0\0"));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
        assert_eq!(checksum64(b"abcdefgh"), checksum64(b"abcdefgh"));
    }

    #[test]
    fn decode_forbidden_guard_nests() {
        let values = vec![1i64, 2, 3];
        let enc = EncodedColumn::encode(&values, Compression::None);
        {
            let _a = forbid_decode();
            let _b = forbid_decode();
            // Nested scopes: still forbidden after one drop.
            drop(_b);
            if cfg!(debug_assertions) {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| enc.decode()));
                assert!(r.is_err(), "decode under a forbid scope must assert");
            }
        }
        // All scopes dropped: decoding works again.
        assert_eq!(enc.decode(), values);
    }

    proptest! {
        #[test]
        fn any_data_roundtrips_under_pfor(
            values in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 0..600),
            bits in 1u8..40,
        ) {
            let scheme = Compression::Pfor { bits, exception_rate: 0.0 };
            let enc = EncodedColumn::encode(&values, scheme);
            prop_assert_eq!(enc.decode(), values);
        }

        #[test]
        fn any_data_roundtrips_under_pfor_delta(
            values in prop::collection::vec(i64::MIN..i64::MAX, 0..600),
            bits in 1u8..64,
        ) {
            let scheme = Compression::PforDelta { bits, exception_rate: 0.0 };
            let enc = EncodedColumn::encode(&values, scheme);
            prop_assert_eq!(enc.decode(), values);
        }

        #[test]
        fn any_data_roundtrips_under_dict(
            values in prop::collection::vec(-5000i64..5000, 0..600),
        ) {
            let enc = EncodedColumn::encode(&values, Compression::Dictionary { bits: 8 });
            prop_assert_eq!(enc.decode(), values);
        }

        #[test]
        fn narrow_widths_force_all_exception_blocks(
            values in prop::collection::vec(1_000_000i64..2_000_000, 1..300),
        ) {
            // bits=1 over million-scale spreads: nearly every value is an
            // exception, exercising the patch list on every block.
            let scheme = Compression::Pfor { bits: 1, exception_rate: 1.0 };
            let enc = EncodedColumn::encode(&values, scheme);
            prop_assert_eq!(enc.decode(), values);
        }
    }
}
