//! Chunk materialization: the *data plane* of a Cooperative Scan.
//!
//! The scheduling layers only ever talk about chunk *identities* and page
//! *counts*; this module supplies the bytes.  A [`ChunkStore`] is anything
//! that can materialize the column values of a logical chunk — the
//! reproduction's stores generate values deterministically instead of
//! reading a real table file, which is exactly what the layer above needs:
//! given a delivered chunk id, hand me that chunk's data.
//!
//! The two physical layouts of the paper produce two payload shapes:
//!
//! * **NSM/PAX** ([`NsmChunkData`]): a chunk is all-or-nothing and carries
//!   *every* column.  Within the chunk the values are held as per-column
//!   mini-columns (the PAX arrangement MonetDB/X100 uses inside NSM pages),
//!   so consumers get contiguous `&[i64]` column views without a gather.
//! * **DSM** ([`DsmChunkData`]): a chunk may be *partially* resident — only
//!   the loaded column subset is present, and later loads merge further
//!   columns in ([`ChunkPayload::merged_with`]).
//!
//! Both live behind the [`ChunkPayload`] enum.  Payload column vectors are
//! individually reference-counted, so cloning a payload (handing it to a
//! pinned chunk) and merging partial DSM payloads are refcount bumps — the
//! hot consume path of a scan performs no per-chunk heap allocation and no
//! data copies.

use crate::ids::{ChunkId, ColumnId};
use std::sync::Arc;

/// A single materialized column of one chunk: contiguous values,
/// individually reference-counted so payload clones and DSM merges never
/// copy data.
pub type ColumnData = Arc<Vec<i64>>;

/// The materialized data of one NSM/PAX chunk: every column of the table,
/// as per-chunk mini-columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsmChunkData {
    rows: usize,
    /// One vector per column, indexed by [`ColumnId`].
    columns: Vec<ColumnData>,
}

impl NsmChunkData {
    /// Builds the payload from one vector per column (index = column id).
    ///
    /// # Panics
    /// Panics if the chunk has no columns or the columns have unequal
    /// lengths.
    pub fn new(columns: Vec<ColumnData>) -> Self {
        let rows = columns
            .first()
            .map(|c| c.len())
            .expect("an NSM chunk needs at least one column");
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all mini-columns of an NSM chunk must have the same length"
        );
        Self { rows, columns }
    }

    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (always the full table width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Zero-copy view of one column.
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        self.columns.get(col.as_usize()).map(|c| c.as_slice())
    }
}

/// The materialized data of the *resident column subset* of one DSM chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmChunkData {
    rows: usize,
    /// `(column, values)` pairs, sorted by column id.
    columns: Vec<(ColumnId, ColumnData)>,
}

impl DsmChunkData {
    /// Builds the payload from `(column, values)` pairs (any order).
    ///
    /// # Panics
    /// Panics if no columns are given, lengths differ, or a column repeats.
    pub fn new(mut columns: Vec<(ColumnId, ColumnData)>) -> Self {
        let rows = columns
            .first()
            .map(|(_, c)| c.len())
            .expect("a DSM chunk payload needs at least one column");
        assert!(
            columns.iter().all(|(_, c)| c.len() == rows),
            "all columns of a DSM chunk must have the same length"
        );
        columns.sort_by_key(|(id, _)| *id);
        assert!(
            columns.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate column in DSM chunk payload"
        );
        Self { rows, columns }
    }

    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The resident columns, in ascending column-id order.
    pub fn resident_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.columns.iter().map(|(id, _)| *id)
    }

    /// Zero-copy view of one column, if resident.
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        self.columns
            .binary_search_by_key(&col, |(id, _)| *id)
            .ok()
            .map(|i| self.columns[i].1.as_slice())
    }

    /// A new payload with `other`'s columns merged in (later loads win on
    /// overlap, which cannot happen in practice: the ABM only loads missing
    /// columns).  Column vectors are shared, not copied.
    pub fn merged_with(&self, other: &DsmChunkData) -> DsmChunkData {
        assert_eq!(
            self.rows, other.rows,
            "cannot merge DSM payloads with different row counts"
        );
        let mut columns = other.columns.clone();
        for (id, data) in &self.columns {
            if other.column(*id).is_none() {
                columns.push((*id, Arc::clone(data)));
            }
        }
        DsmChunkData::new(columns)
    }

    /// A new payload keeping only the columns for which `keep` returns true
    /// (used when the ABM drops dead columns of a partially shared chunk).
    /// Returns `None` if nothing survives.
    pub fn retained(&self, mut keep: impl FnMut(ColumnId) -> bool) -> Option<DsmChunkData> {
        let columns: Vec<(ColumnId, ColumnData)> = self
            .columns
            .iter()
            .filter(|(id, _)| keep(*id))
            .map(|(id, data)| (*id, Arc::clone(data)))
            .collect();
        if columns.is_empty() {
            None
        } else {
            Some(DsmChunkData::new(columns))
        }
    }
}

/// The payload travelling with a delivered chunk.
///
/// Cloning a payload is a refcount bump — the inner data is shared, never
/// copied — so a pinned chunk can carry its payload out of the buffer
/// manager's lock without per-chunk allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ChunkPayload {
    /// No data travels with the chunk (metadata-only delivery: the
    /// deterministic simulation, or a threaded server without a store).
    #[default]
    Missing,
    /// An NSM/PAX chunk: every column, as per-chunk mini-columns.
    Nsm(Arc<NsmChunkData>),
    /// A DSM chunk: the resident column subset.
    Dsm(Arc<DsmChunkData>),
}

impl ChunkPayload {
    /// Whether the chunk carries no data.
    pub fn is_missing(&self) -> bool {
        matches!(self, ChunkPayload::Missing)
    }

    /// Number of rows, or 0 for a metadata-only payload.
    pub fn rows(&self) -> usize {
        match self {
            ChunkPayload::Missing => 0,
            ChunkPayload::Nsm(d) => d.rows(),
            ChunkPayload::Dsm(d) => d.rows(),
        }
    }

    /// Zero-copy view of one column's values, if present in the payload.
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        match self {
            ChunkPayload::Missing => None,
            ChunkPayload::Nsm(d) => d.column(col),
            ChunkPayload::Dsm(d) => d.column(col),
        }
    }

    /// Merges a newly loaded payload into this one.  For DSM this unions
    /// the resident column sets (sharing the vectors); for NSM or
    /// metadata-only payloads the newer payload simply wins.
    pub fn merged_with(&self, newer: &ChunkPayload) -> ChunkPayload {
        match (self, newer) {
            (ChunkPayload::Dsm(old), ChunkPayload::Dsm(new)) => {
                ChunkPayload::Dsm(Arc::new(old.merged_with(new)))
            }
            (_, n) => n.clone(),
        }
    }
}

/// A source of chunk data: the "table file" of the data plane.
///
/// `cols` selects what to materialize: `None` means the whole chunk in its
/// native NSM form (all columns — NSM chunks are all-or-nothing), while
/// `Some(subset)` asks for a DSM payload holding exactly those columns.
/// Implementations must be deterministic (two reads of the same chunk
/// agree) and thread-safe: the threaded executor calls `materialize` from
/// its I/O workers *outside* the ABM lock.
pub trait ChunkStore: Send + Sync {
    /// Materializes the given columns of `chunk`.
    fn materialize(&self, chunk: ChunkId, cols: Option<&[ColumnId]>) -> ChunkPayload;
}

/// A deterministic synthetic store: value = mix(chunk, row, column, seed).
///
/// Used by the core-crate tests and benches, which cannot depend on the
/// executor's richer table generators.
#[derive(Debug, Clone)]
pub struct SeededStore {
    rows_per_chunk: u64,
    num_columns: u16,
    seed: u64,
}

impl SeededStore {
    /// A store producing `rows_per_chunk` rows and `num_columns` columns per
    /// chunk.
    ///
    /// # Panics
    /// Panics on a degenerate geometry.
    pub fn new(rows_per_chunk: u64, num_columns: u16, seed: u64) -> Self {
        assert!(
            rows_per_chunk > 0 && num_columns > 0,
            "degenerate store geometry"
        );
        Self {
            rows_per_chunk,
            num_columns,
            seed,
        }
    }

    /// The deterministic value of `(chunk, row, col)` under this seed.
    pub fn value(&self, chunk: ChunkId, row: u64, col: ColumnId) -> i64 {
        // SplitMix64 over the coordinates: cheap, deterministic, and
        // different per (chunk, row, column, seed).
        let mut z = (chunk.index() as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(row.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add((col.index() as u64).wrapping_mul(0x94D049BB133111EB))
            .wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as i64
    }

    fn column_values(&self, chunk: ChunkId, col: ColumnId) -> ColumnData {
        Arc::new(
            (0..self.rows_per_chunk)
                .map(|row| self.value(chunk, row, col))
                .collect(),
        )
    }
}

impl ChunkStore for SeededStore {
    fn materialize(&self, chunk: ChunkId, cols: Option<&[ColumnId]>) -> ChunkPayload {
        match cols {
            None => ChunkPayload::Nsm(Arc::new(NsmChunkData::new(
                (0..self.num_columns)
                    .map(|c| self.column_values(chunk, ColumnId::new(c)))
                    .collect(),
            ))),
            Some(cols) => ChunkPayload::Dsm(Arc::new(DsmChunkData::new(
                cols.iter()
                    .map(|&c| (c, self.column_values(chunk, c)))
                    .collect(),
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: u16) -> ColumnId {
        ColumnId::new(i)
    }

    #[test]
    fn nsm_payload_views_every_column() {
        let data = NsmChunkData::new(vec![Arc::new(vec![1, 2, 3]), Arc::new(vec![10, 20, 30])]);
        assert_eq!(data.rows(), 3);
        assert_eq!(data.width(), 2);
        assert_eq!(data.column(col(1)), Some(&[10, 20, 30][..]));
        assert_eq!(data.column(col(2)), None);
        let payload = ChunkPayload::Nsm(Arc::new(data));
        assert!(!payload.is_missing());
        assert_eq!(payload.rows(), 3);
        assert_eq!(payload.column(col(0)), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn dsm_payload_merges_column_subsets() {
        let a = DsmChunkData::new(vec![
            (col(2), Arc::new(vec![5, 6])),
            (col(0), Arc::new(vec![1, 2])),
        ]);
        assert_eq!(
            a.resident_columns().collect::<Vec<_>>(),
            vec![col(0), col(2)]
        );
        assert_eq!(a.column(col(2)), Some(&[5, 6][..]));
        assert_eq!(a.column(col(1)), None);
        let b = DsmChunkData::new(vec![(col(1), Arc::new(vec![8, 9]))]);
        let merged = a.merged_with(&b);
        assert_eq!(
            merged.resident_columns().collect::<Vec<_>>(),
            vec![col(0), col(1), col(2)]
        );
        assert_eq!(merged.column(col(0)), Some(&[1, 2][..]));
        assert_eq!(merged.column(col(1)), Some(&[8, 9][..]));
        // Via the payload enum, merging shares the vectors.
        let pa = ChunkPayload::Dsm(Arc::new(a));
        let pb = ChunkPayload::Dsm(Arc::new(b));
        let pm = pa.merged_with(&pb);
        assert_eq!(pm.column(col(2)), Some(&[5, 6][..]));
    }

    #[test]
    fn dsm_retained_drops_dead_columns() {
        let d = DsmChunkData::new(vec![
            (col(0), Arc::new(vec![1])),
            (col(1), Arc::new(vec![2])),
        ]);
        let kept = d.retained(|c| c == col(1)).expect("one column survives");
        assert_eq!(kept.resident_columns().collect::<Vec<_>>(), vec![col(1)]);
        assert!(d.retained(|_| false).is_none());
    }

    #[test]
    fn missing_payload_is_inert() {
        let p = ChunkPayload::Missing;
        assert!(p.is_missing());
        assert_eq!(p.rows(), 0);
        assert_eq!(p.column(col(0)), None);
        // A load of real data over a metadata placeholder wins.
        let n = ChunkPayload::Nsm(Arc::new(NsmChunkData::new(vec![Arc::new(vec![7])])));
        assert_eq!(p.merged_with(&n), n);
    }

    #[test]
    fn seeded_store_is_deterministic_and_shape_correct() {
        let store = SeededStore::new(100, 3, 42);
        let chunk = ChunkId::new(5);
        let a = store.materialize(chunk, None);
        let b = store.materialize(chunk, None);
        assert_eq!(a, b, "two reads of the same chunk agree");
        assert_eq!(a.rows(), 100);
        assert!(a.column(col(2)).is_some());
        // The DSM subset matches the full materialization column-for-column.
        let subset = store.materialize(chunk, Some(&[col(1)]));
        assert_eq!(subset.column(col(1)), a.column(col(1)));
        assert_eq!(subset.column(col(0)), None);
        // Different seeds produce different data.
        let other = SeededStore::new(100, 3, 43).materialize(chunk, None);
        assert_ne!(a, other);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_nsm_rejected() {
        NsmChunkData::new(vec![Arc::new(vec![1]), Arc::new(vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_dsm_column_rejected() {
        DsmChunkData::new(vec![
            (col(0), Arc::new(vec![1])),
            (col(0), Arc::new(vec![2])),
        ]);
    }
}
