//! Chunk materialization: the *data plane* of a Cooperative Scan.
//!
//! The scheduling layers only ever talk about chunk *identities* and page
//! *counts*; this module supplies the bytes.  A [`ChunkStore`] is anything
//! that can materialize the column values of a logical chunk — the
//! reproduction's stores generate values deterministically instead of
//! reading a real table file, which is exactly what the layer above needs:
//! given a delivered chunk id, hand me that chunk's data.
//!
//! The two physical layouts of the paper produce two payload shapes:
//!
//! * **NSM/PAX** ([`NsmChunkData`]): a chunk is all-or-nothing and carries
//!   *every* column.  Within the chunk the values are held as per-column
//!   mini-columns (the PAX arrangement MonetDB/X100 uses inside NSM pages),
//!   so consumers get contiguous `&[i64]` column views without a gather.
//! * **DSM** ([`DsmChunkData`]): a chunk may be *partially* resident — only
//!   the loaded column subset is present, and later loads merge further
//!   columns in ([`ChunkPayload::merged_with`]).
//!
//! # Compressed mini-columns
//!
//! A mini-column is either *plain* (a shared `Vec<i64>`) or *compressed*
//! (PDICT / PFOR / PFOR-DELTA bytes produced by [`crate::codec`], see
//! [`LazyColumn`]).  A compressed column decodes **lazily, exactly once**:
//! the first reader pays the decompression CPU cost and every later reader
//! — including later pins of the same buffered chunk, which share the
//! column `Arc` — hits the decoded form.  Eviction drops the whole column
//! (both states); a re-load re-installs fresh compressed bytes and the
//! next pin re-decodes.  This is the two-state frame lifecycle the paper's
//! Figure 9 experiments rely on: I/O moves *encoded* bytes, the CPU pays
//! for decoding on first use, and [`ChunkPayload::physical_bytes`] vs
//! [`ChunkPayload::logical_bytes`] exposes the traded volumes.
//!
//! Both shapes live behind the [`ChunkPayload`] enum.  Payload column
//! vectors are individually reference-counted, so cloning a payload
//! (handing it to a pinned chunk) and merging partial DSM payloads are
//! refcount bumps — the hot consume path of a scan performs no per-chunk
//! heap allocation and no data copies once a column is decoded.

use crate::codec::EncodedColumn;
use crate::compression::Compression;
use crate::fault::StoreError;
use crate::ids::{ChunkId, ColumnId};
use std::sync::Arc;
use std::sync::OnceLock;

/// A single materialized column of one chunk: contiguous values,
/// individually reference-counted so payload clones and DSM merges never
/// copy data.
pub type ColumnData = Arc<Vec<i64>>;

/// A compressed mini-column with a once-only decode cache.
///
/// The encoded bytes are installed by the I/O path; [`LazyColumn::values`]
/// decodes on first use (asserting the caller does not hold the executor's
/// hub lock) and every subsequent call — from any clone of the owning
/// payload, since payloads share the column `Arc` — returns the cached
/// vector.
#[derive(Debug)]
pub struct LazyColumn {
    encoded: EncodedColumn,
    decoded: OnceLock<ColumnData>,
}

impl LazyColumn {
    /// Wraps encoded bytes for lazy decoding.
    pub fn new(encoded: EncodedColumn) -> Self {
        Self {
            encoded,
            decoded: OnceLock::new(),
        }
    }

    /// Number of values (known without decoding).
    pub fn rows(&self) -> usize {
        self.encoded.rows()
    }

    /// Encoded size in bytes — the column's physical I/O volume.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded.encoded_bytes()
    }

    /// The encoded form itself (state-preserving access; used by the fault
    /// injector to produce torn copies).
    pub fn encoded(&self) -> &EncodedColumn {
        &self.encoded
    }

    /// Verifies the encoded bytes against the checksum recorded at encode
    /// time.  An already-decoded column verified once and is trusted.
    pub fn verify_checksum(&self) -> Result<(), StoreError> {
        if self.is_decoded() || self.encoded.verify_checksum() {
            Ok(())
        } else {
            Err(StoreError::Corrupted)
        }
    }

    /// Checksum-verified decode: like [`LazyColumn::ensure_decoded`] but a
    /// damaged column surfaces as [`StoreError::Corrupted`] instead of a
    /// decoder panic.
    pub fn try_ensure_decoded(&self) -> Result<usize, StoreError> {
        self.verify_checksum()?;
        Ok(self.ensure_decoded())
    }

    /// Whether the decode has already happened.
    pub fn is_decoded(&self) -> bool {
        self.decoded.get().is_some()
    }

    /// The decoded values, decoding on first call (never under the hub
    /// lock — debug-asserted by the codec layer).
    pub fn values(&self) -> &ColumnData {
        self.decoded.get_or_init(|| Arc::new(self.encoded.decode()))
    }

    /// Ensures the column is decoded; returns the number of values decoded
    /// *by this call* (0 if the cache was already populated — e.g. by an
    /// earlier pin of the same buffered chunk).
    pub fn ensure_decoded(&self) -> usize {
        if self.is_decoded() {
            return 0;
        }
        let mut decoded_now = 0;
        self.decoded.get_or_init(|| {
            decoded_now = self.encoded.rows();
            Arc::new(self.encoded.decode())
        });
        decoded_now
    }
}

/// One mini-column of a chunk payload: plain shared values, or compressed
/// bytes that decode lazily on first read.  Cloning either form is a
/// refcount bump.
#[derive(Debug, Clone)]
pub enum ColumnChunk {
    /// Uncompressed, immediately readable values.
    Plain(ColumnData),
    /// Encoded bytes with a shared once-only decode cache.
    Compressed(Arc<LazyColumn>),
}

impl ColumnChunk {
    /// Encodes `values` under `scheme` into a compressed column
    /// (`Compression::None` stays plain — no codec detour for the common
    /// uncompressed case).
    pub fn encode(values: &[i64], scheme: Compression) -> ColumnChunk {
        match scheme {
            Compression::None => ColumnChunk::Plain(Arc::new(values.to_vec())),
            _ => ColumnChunk::Compressed(Arc::new(LazyColumn::new(EncodedColumn::encode(
                values, scheme,
            )))),
        }
    }

    /// Number of values (without triggering a decode).
    pub fn len(&self) -> usize {
        match self {
            ColumnChunk::Plain(d) => d.len(),
            ColumnChunk::Compressed(l) => l.rows(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The values, decoding first if necessary.
    pub fn as_slice(&self) -> &[i64] {
        match self {
            ColumnChunk::Plain(d) => d.as_slice(),
            ColumnChunk::Compressed(l) => l.values().as_slice(),
        }
    }

    /// Whether the values are readable without a decode (plain, or
    /// compressed-and-already-decoded).
    pub fn is_decoded(&self) -> bool {
        match self {
            ColumnChunk::Plain(_) => true,
            ColumnChunk::Compressed(l) => l.is_decoded(),
        }
    }

    /// Ensures the column is decoded; returns the values decoded by this
    /// call (0 for plain or already-decoded columns).
    pub fn ensure_decoded(&self) -> usize {
        match self {
            ColumnChunk::Plain(_) => 0,
            ColumnChunk::Compressed(l) => l.ensure_decoded(),
        }
    }

    /// Verifies the column's integrity checksum (plain columns have no
    /// checksum and always verify).
    pub fn verify_checksum(&self) -> Result<(), StoreError> {
        match self {
            ColumnChunk::Plain(_) => Ok(()),
            ColumnChunk::Compressed(l) => l.verify_checksum(),
        }
    }

    /// Checksum-verified decode; a damaged column surfaces as
    /// [`StoreError::Corrupted`] instead of a decoder panic.
    pub fn try_ensure_decoded(&self) -> Result<usize, StoreError> {
        match self {
            ColumnChunk::Plain(_) => Ok(0),
            ColumnChunk::Compressed(l) => l.try_ensure_decoded(),
        }
    }

    /// The column's physical size in bytes: encoded size when compressed,
    /// `8 × len` when plain.
    pub fn physical_bytes(&self) -> usize {
        match self {
            ColumnChunk::Plain(d) => d.len() * 8,
            ColumnChunk::Compressed(l) => l.encoded_bytes(),
        }
    }
}

impl PartialEq for ColumnChunk {
    fn eq(&self, other: &Self) -> bool {
        // Equality is logical (same values).  Identical encodings shortcut
        // without decoding; otherwise compare the decoded slices.
        if let (ColumnChunk::Compressed(a), ColumnChunk::Compressed(b)) = (self, other) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
            if a.encoded == b.encoded {
                return true;
            }
        }
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ColumnChunk {}

/// The materialized data of one NSM/PAX chunk: every column of the table,
/// as per-chunk mini-columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsmChunkData {
    rows: usize,
    /// One mini-column per table column, indexed by [`ColumnId`].
    columns: Vec<ColumnChunk>,
}

impl NsmChunkData {
    /// Builds the payload from one plain vector per column (index = column
    /// id).
    ///
    /// # Panics
    /// Panics if the chunk has no columns or the columns have unequal
    /// lengths.
    pub fn new(columns: Vec<ColumnData>) -> Self {
        Self::from_parts(columns.into_iter().map(ColumnChunk::Plain).collect())
    }

    /// Builds the payload from mini-columns in either state (plain or
    /// compressed).
    ///
    /// # Panics
    /// Panics if the chunk has no columns or the columns have unequal
    /// lengths.
    pub fn from_parts(columns: Vec<ColumnChunk>) -> Self {
        let rows = columns
            .first()
            .map(|c| c.len())
            .expect("an NSM chunk needs at least one column");
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all mini-columns of an NSM chunk must have the same length"
        );
        Self { rows, columns }
    }

    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (always the full table width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Zero-copy view of one column (decoding it first if compressed).
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        self.columns.get(col.as_usize()).map(|c| c.as_slice())
    }

    /// The mini-columns themselves (state-preserving access).
    pub fn parts(&self) -> &[ColumnChunk] {
        &self.columns
    }
}

/// The materialized data of the *resident column subset* of one DSM chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmChunkData {
    rows: usize,
    /// `(column, values)` pairs, sorted by column id.
    columns: Vec<(ColumnId, ColumnChunk)>,
}

impl DsmChunkData {
    /// Builds the payload from plain `(column, values)` pairs (any order).
    ///
    /// # Panics
    /// Panics if no columns are given, lengths differ, or a column repeats.
    pub fn new(columns: Vec<(ColumnId, ColumnData)>) -> Self {
        Self::from_parts(
            columns
                .into_iter()
                .map(|(id, d)| (id, ColumnChunk::Plain(d)))
                .collect(),
        )
    }

    /// Builds the payload from `(column, mini-column)` pairs in either
    /// state (any order).
    ///
    /// # Panics
    /// Panics if no columns are given, lengths differ, or a column repeats.
    pub fn from_parts(mut columns: Vec<(ColumnId, ColumnChunk)>) -> Self {
        let rows = columns
            .first()
            .map(|(_, c)| c.len())
            .expect("a DSM chunk payload needs at least one column");
        assert!(
            columns.iter().all(|(_, c)| c.len() == rows),
            "all columns of a DSM chunk must have the same length"
        );
        columns.sort_by_key(|(id, _)| *id);
        assert!(
            columns.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate column in DSM chunk payload"
        );
        Self { rows, columns }
    }

    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The resident columns, in ascending column-id order.
    pub fn resident_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.columns.iter().map(|(id, _)| *id)
    }

    /// Zero-copy view of one column, if resident (decoding it first if
    /// compressed).
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        self.columns
            .binary_search_by_key(&col, |(id, _)| *id)
            .ok()
            .map(|i| self.columns[i].1.as_slice())
    }

    /// The resident mini-columns (state-preserving access).
    pub fn parts(&self) -> &[(ColumnId, ColumnChunk)] {
        &self.columns
    }

    /// A new payload with `other`'s columns merged in (later loads win on
    /// overlap, which cannot happen in practice: the ABM only loads missing
    /// columns).  Column vectors are shared, not copied, and each keeps its
    /// plain/compressed state (a decoded column stays decoded across the
    /// merge).
    pub fn merged_with(&self, other: &DsmChunkData) -> DsmChunkData {
        assert_eq!(
            self.rows, other.rows,
            "cannot merge DSM payloads with different row counts"
        );
        let mut columns = other.columns.clone();
        for (id, data) in &self.columns {
            if other.column_state(*id).is_none() {
                columns.push((*id, data.clone()));
            }
        }
        DsmChunkData::from_parts(columns)
    }

    /// The mini-column of `col` without touching its decode state.
    fn column_state(&self, col: ColumnId) -> Option<&ColumnChunk> {
        self.columns
            .binary_search_by_key(&col, |(id, _)| *id)
            .ok()
            .map(|i| &self.columns[i].1)
    }

    /// A new payload keeping only the columns for which `keep` returns true
    /// (used when the ABM drops dead columns of a partially shared chunk).
    /// Returns `None` if nothing survives.
    pub fn retained(&self, mut keep: impl FnMut(ColumnId) -> bool) -> Option<DsmChunkData> {
        let columns: Vec<(ColumnId, ColumnChunk)> = self
            .columns
            .iter()
            .filter(|(id, _)| keep(*id))
            .map(|(id, data)| (*id, data.clone()))
            .collect();
        if columns.is_empty() {
            None
        } else {
            Some(DsmChunkData::from_parts(columns))
        }
    }
}

/// The payload travelling with a delivered chunk.
///
/// Cloning a payload is a refcount bump — the inner data is shared, never
/// copied — so a pinned chunk can carry its payload out of the buffer
/// manager's lock without per-chunk allocation.  Compressed mini-columns
/// share their decode cache across clones: the first pin decodes, later
/// pins of the same buffered chunk read the cached vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ChunkPayload {
    /// No data travels with the chunk (metadata-only delivery: the
    /// deterministic simulation, or a threaded server without a store).
    #[default]
    Missing,
    /// An NSM/PAX chunk: every column, as per-chunk mini-columns.
    Nsm(Arc<NsmChunkData>),
    /// A DSM chunk: the resident column subset.
    Dsm(Arc<DsmChunkData>),
}

impl ChunkPayload {
    /// Whether the chunk carries no data.
    pub fn is_missing(&self) -> bool {
        matches!(self, ChunkPayload::Missing)
    }

    /// Number of rows, or 0 for a metadata-only payload.
    pub fn rows(&self) -> usize {
        match self {
            ChunkPayload::Missing => 0,
            ChunkPayload::Nsm(d) => d.rows(),
            ChunkPayload::Dsm(d) => d.rows(),
        }
    }

    /// Zero-copy view of one column's values, if present in the payload
    /// (decoding the column first if it is compressed and not yet decoded).
    pub fn column(&self, col: ColumnId) -> Option<&[i64]> {
        match self {
            ChunkPayload::Missing => None,
            ChunkPayload::Nsm(d) => d.column(col),
            ChunkPayload::Dsm(d) => d.column(col),
        }
    }

    /// Ensures every column of the payload is decoded; returns the number
    /// of values decoded *by this call* (0 when everything was plain or
    /// already decoded — the steady-state hit path does no work here).
    pub fn decode_all(&self) -> usize {
        match self {
            ChunkPayload::Missing => 0,
            ChunkPayload::Nsm(d) => d.parts().iter().map(|c| c.ensure_decoded()).sum(),
            ChunkPayload::Dsm(d) => d.parts().iter().map(|(_, c)| c.ensure_decoded()).sum(),
        }
    }

    /// Verifies every compressed column's integrity checksum without
    /// decoding anything.  This is the *install-time* verification point:
    /// the I/O worker calls it before committing a load, so torn reads are
    /// retried as transient faults instead of reaching a consumer.
    pub fn verify_checksums(&self) -> Result<(), StoreError> {
        match self {
            ChunkPayload::Missing => Ok(()),
            ChunkPayload::Nsm(d) => d.parts().iter().try_for_each(|c| c.verify_checksum()),
            ChunkPayload::Dsm(d) => d.parts().iter().try_for_each(|(_, c)| c.verify_checksum()),
        }
    }

    /// Checksum-verified [`ChunkPayload::decode_all`]: the *decode-time*
    /// verification point (first pin).  A mismatch surfaces as
    /// [`StoreError::Corrupted`] — a retryable fault, never a decoder
    /// panic.
    pub fn try_decode_all(&self) -> Result<usize, StoreError> {
        match self {
            ChunkPayload::Missing => Ok(0),
            ChunkPayload::Nsm(d) => d
                .parts()
                .iter()
                .map(|c| c.try_ensure_decoded())
                .sum::<Result<usize, StoreError>>(),
            ChunkPayload::Dsm(d) => d
                .parts()
                .iter()
                .map(|(_, c)| c.try_ensure_decoded())
                .sum::<Result<usize, StoreError>>(),
        }
    }

    /// Whether every present column is readable without a decode.
    pub fn is_fully_decoded(&self) -> bool {
        match self {
            ChunkPayload::Missing => true,
            ChunkPayload::Nsm(d) => d.parts().iter().all(|c| c.is_decoded()),
            ChunkPayload::Dsm(d) => d.parts().iter().all(|(_, c)| c.is_decoded()),
        }
    }

    /// Physical bytes of the payload: encoded sizes for compressed columns,
    /// `8 × rows` for plain ones — the I/O volume this payload cost.
    pub fn physical_bytes(&self) -> usize {
        match self {
            ChunkPayload::Missing => 0,
            ChunkPayload::Nsm(d) => d.parts().iter().map(|c| c.physical_bytes()).sum(),
            ChunkPayload::Dsm(d) => d.parts().iter().map(|(_, c)| c.physical_bytes()).sum(),
        }
    }

    /// Logical (decoded) bytes of the payload: `8 × rows × columns`.
    pub fn logical_bytes(&self) -> usize {
        let cols = match self {
            ChunkPayload::Missing => 0,
            ChunkPayload::Nsm(d) => d.width(),
            ChunkPayload::Dsm(d) => d.parts().len(),
        };
        self.rows() * 8 * cols
    }

    /// Merges a newly loaded payload into this one.  For DSM this unions
    /// the resident column sets (sharing the vectors); for NSM or
    /// metadata-only payloads the newer payload simply wins.
    pub fn merged_with(&self, newer: &ChunkPayload) -> ChunkPayload {
        match (self, newer) {
            (ChunkPayload::Dsm(old), ChunkPayload::Dsm(new)) => {
                ChunkPayload::Dsm(Arc::new(old.merged_with(new)))
            }
            (_, n) => n.clone(),
        }
    }
}

/// A source of chunk data: the "table file" of the data plane.
///
/// `cols` selects what to materialize: `None` means the whole chunk in its
/// native NSM form (all columns — NSM chunks are all-or-nothing), while
/// `Some(subset)` asks for a DSM payload holding exactly those columns.
/// Implementations must be deterministic (two reads of the same chunk
/// agree) and thread-safe: the threaded executor calls `materialize` from
/// its I/O workers *outside* the hub lock.
///
/// A read can fail: the [`StoreError`] taxonomy distinguishes retryable
/// faults (transient, timeout, corrupted) from permanent ones, and the
/// I/O scheduler above retries or quarantines accordingly.
pub trait ChunkStore: Send + Sync {
    /// Materializes the given columns of `chunk`.
    fn materialize(
        &self,
        chunk: ChunkId,
        cols: Option<&[ColumnId]>,
    ) -> Result<ChunkPayload, StoreError>;
}

/// A [`ChunkStore`] adapter that stores its inner store's chunks
/// *compressed*: each materialized mini-column is encoded under the
/// per-column [`Compression`] scheme, so what travels to the buffer pool is
/// the encoded bytes and the decompression CPU cost lands on the first pin
/// (the Figure 9 trade-off, for real).
///
/// Columns beyond the scheme list — and columns mapped to
/// [`Compression::None`] — stay plain.
#[derive(Debug, Clone)]
pub struct CompressingStore<S> {
    inner: S,
    schemes: Vec<Compression>,
}

impl<S: ChunkStore> CompressingStore<S> {
    /// Wraps `inner`, compressing column `i` under `schemes[i]` (missing
    /// entries mean uncompressed).
    pub fn new(inner: S, schemes: Vec<Compression>) -> Self {
        Self { inner, schemes }
    }

    /// The scheme applied to `col`.
    pub fn scheme(&self, col: ColumnId) -> Compression {
        self.schemes
            .get(col.as_usize())
            .copied()
            .unwrap_or(Compression::None)
    }

    fn encode_column(&self, col: ColumnId, values: &[i64]) -> ColumnChunk {
        ColumnChunk::encode(values, self.scheme(col))
    }
}

impl<S: ChunkStore> ChunkStore for CompressingStore<S> {
    fn materialize(
        &self,
        chunk: ChunkId,
        cols: Option<&[ColumnId]>,
    ) -> Result<ChunkPayload, StoreError> {
        Ok(match self.inner.materialize(chunk, cols)? {
            ChunkPayload::Missing => ChunkPayload::Missing,
            ChunkPayload::Nsm(data) => {
                let parts = data
                    .parts()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| self.encode_column(ColumnId::new(i as u16), c.as_slice()))
                    .collect();
                ChunkPayload::Nsm(Arc::new(NsmChunkData::from_parts(parts)))
            }
            ChunkPayload::Dsm(data) => {
                let parts = data
                    .parts()
                    .iter()
                    .map(|(id, c)| (*id, self.encode_column(*id, c.as_slice())))
                    .collect();
                ChunkPayload::Dsm(Arc::new(DsmChunkData::from_parts(parts)))
            }
        })
    }
}

/// A deterministic synthetic store: value = mix(chunk, row, column, seed).
///
/// Used by the core-crate tests and benches, which cannot depend on the
/// executor's richer table generators.
#[derive(Debug, Clone)]
pub struct SeededStore {
    rows_per_chunk: u64,
    num_columns: u16,
    seed: u64,
}

impl SeededStore {
    /// A store producing `rows_per_chunk` rows and `num_columns` columns per
    /// chunk.
    ///
    /// # Panics
    /// Panics on a degenerate geometry.
    pub fn new(rows_per_chunk: u64, num_columns: u16, seed: u64) -> Self {
        assert!(
            rows_per_chunk > 0 && num_columns > 0,
            "degenerate store geometry"
        );
        Self {
            rows_per_chunk,
            num_columns,
            seed,
        }
    }

    /// The deterministic value of `(chunk, row, col)` under this seed.
    pub fn value(&self, chunk: ChunkId, row: u64, col: ColumnId) -> i64 {
        // SplitMix64 over the coordinates: cheap, deterministic, and
        // different per (chunk, row, column, seed).
        let mut z = (chunk.index() as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(row.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add((col.index() as u64).wrapping_mul(0x94D049BB133111EB))
            .wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as i64
    }

    fn column_values(&self, chunk: ChunkId, col: ColumnId) -> ColumnData {
        Arc::new(
            (0..self.rows_per_chunk)
                .map(|row| self.value(chunk, row, col))
                .collect(),
        )
    }
}

impl ChunkStore for SeededStore {
    fn materialize(
        &self,
        chunk: ChunkId,
        cols: Option<&[ColumnId]>,
    ) -> Result<ChunkPayload, StoreError> {
        Ok(match cols {
            None => ChunkPayload::Nsm(Arc::new(NsmChunkData::new(
                (0..self.num_columns)
                    .map(|c| self.column_values(chunk, ColumnId::new(c)))
                    .collect(),
            ))),
            Some(cols) => ChunkPayload::Dsm(Arc::new(DsmChunkData::new(
                cols.iter()
                    .map(|&c| (c, self.column_values(chunk, c)))
                    .collect(),
            ))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: u16) -> ColumnId {
        ColumnId::new(i)
    }

    #[test]
    fn nsm_payload_views_every_column() {
        let data = NsmChunkData::new(vec![Arc::new(vec![1, 2, 3]), Arc::new(vec![10, 20, 30])]);
        assert_eq!(data.rows(), 3);
        assert_eq!(data.width(), 2);
        assert_eq!(data.column(col(1)), Some(&[10, 20, 30][..]));
        assert_eq!(data.column(col(2)), None);
        let payload = ChunkPayload::Nsm(Arc::new(data));
        assert!(!payload.is_missing());
        assert_eq!(payload.rows(), 3);
        assert_eq!(payload.column(col(0)), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn dsm_payload_merges_column_subsets() {
        let a = DsmChunkData::new(vec![
            (col(2), Arc::new(vec![5, 6])),
            (col(0), Arc::new(vec![1, 2])),
        ]);
        assert_eq!(
            a.resident_columns().collect::<Vec<_>>(),
            vec![col(0), col(2)]
        );
        assert_eq!(a.column(col(2)), Some(&[5, 6][..]));
        assert_eq!(a.column(col(1)), None);
        let b = DsmChunkData::new(vec![(col(1), Arc::new(vec![8, 9]))]);
        let merged = a.merged_with(&b);
        assert_eq!(
            merged.resident_columns().collect::<Vec<_>>(),
            vec![col(0), col(1), col(2)]
        );
        assert_eq!(merged.column(col(0)), Some(&[1, 2][..]));
        assert_eq!(merged.column(col(1)), Some(&[8, 9][..]));
        // Via the payload enum, merging shares the vectors.
        let pa = ChunkPayload::Dsm(Arc::new(a));
        let pb = ChunkPayload::Dsm(Arc::new(b));
        let pm = pa.merged_with(&pb);
        assert_eq!(pm.column(col(2)), Some(&[5, 6][..]));
    }

    #[test]
    fn dsm_retained_drops_dead_columns() {
        let d = DsmChunkData::new(vec![
            (col(0), Arc::new(vec![1])),
            (col(1), Arc::new(vec![2])),
        ]);
        let kept = d.retained(|c| c == col(1)).expect("one column survives");
        assert_eq!(kept.resident_columns().collect::<Vec<_>>(), vec![col(1)]);
        assert!(d.retained(|_| false).is_none());
    }

    #[test]
    fn missing_payload_is_inert() {
        let p = ChunkPayload::Missing;
        assert!(p.is_missing());
        assert_eq!(p.rows(), 0);
        assert_eq!(p.column(col(0)), None);
        assert_eq!(p.decode_all(), 0);
        assert!(p.is_fully_decoded());
        assert_eq!(p.physical_bytes(), 0);
        assert_eq!(p.logical_bytes(), 0);
        // A load of real data over a metadata placeholder wins.
        let n = ChunkPayload::Nsm(Arc::new(NsmChunkData::new(vec![Arc::new(vec![7])])));
        assert_eq!(p.merged_with(&n), n);
    }

    #[test]
    fn seeded_store_is_deterministic_and_shape_correct() {
        let store = SeededStore::new(100, 3, 42);
        let chunk = ChunkId::new(5);
        let a = store.materialize(chunk, None).unwrap();
        let b = store.materialize(chunk, None).unwrap();
        assert_eq!(a, b, "two reads of the same chunk agree");
        assert_eq!(a.rows(), 100);
        assert!(a.column(col(2)).is_some());
        // The DSM subset matches the full materialization column-for-column.
        let subset = store.materialize(chunk, Some(&[col(1)])).unwrap();
        assert_eq!(subset.column(col(1)), a.column(col(1)));
        assert_eq!(subset.column(col(0)), None);
        // Different seeds produce different data.
        let other = SeededStore::new(100, 3, 43)
            .materialize(chunk, None)
            .unwrap();
        assert_ne!(a, other);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_nsm_rejected() {
        NsmChunkData::new(vec![Arc::new(vec![1]), Arc::new(vec![1, 2])]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_dsm_column_rejected() {
        DsmChunkData::new(vec![
            (col(0), Arc::new(vec![1])),
            (col(0), Arc::new(vec![2])),
        ]);
    }

    // ------------------------------------------------------------------
    // Compressed mini-columns.
    // ------------------------------------------------------------------

    fn pfor21() -> Compression {
        Compression::Pfor {
            bits: 21,
            exception_rate: 0.02,
        }
    }

    #[test]
    fn compressed_column_decodes_once_and_is_shared() {
        let values: Vec<i64> = (0..500).map(|i| i * 3).collect();
        let c = ColumnChunk::encode(&values, pfor21());
        assert_eq!(c.len(), 500);
        assert!(!c.is_decoded(), "encoding must not decode");
        let clone = c.clone();
        // The first reader decodes...
        assert_eq!(c.ensure_decoded(), 500);
        assert_eq!(c.as_slice(), &values[..]);
        // ...and the clone shares the cache: nothing left to decode.
        assert!(clone.is_decoded());
        assert_eq!(clone.ensure_decoded(), 0);
        assert_eq!(clone.as_slice(), &values[..]);
    }

    #[test]
    fn none_scheme_stays_plain() {
        let c = ColumnChunk::encode(&[1, 2, 3], Compression::None);
        assert!(matches!(c, ColumnChunk::Plain(_)));
        assert_eq!(c.ensure_decoded(), 0);
        assert_eq!(c.physical_bytes(), 24);
    }

    #[test]
    fn column_equality_is_logical() {
        let values: Vec<i64> = (0..300).map(|i| i % 7).collect();
        let plain = ColumnChunk::Plain(Arc::new(values.clone()));
        let dict = ColumnChunk::encode(&values, Compression::Dictionary { bits: 3 });
        let pfor = ColumnChunk::encode(&values, pfor21());
        assert_eq!(plain, dict, "same values, different physical form");
        assert_eq!(dict, pfor);
        let other = ColumnChunk::Plain(Arc::new(vec![9; 300]));
        assert_ne!(plain, other);
    }

    #[test]
    fn compressing_store_round_trips_and_shrinks() {
        let inner = SeededStore::new(256, 2, 9);
        // Column 0 dictionary-compressed would not shrink random data, so
        // compress column 1 only... both under PFOR: random 64-bit data is
        // all exceptions, which is the lossless worst case.
        let store = CompressingStore::new(inner.clone(), vec![Compression::None, pfor21()]);
        let chunk = ChunkId::new(3);
        let plain = inner.materialize(chunk, None).unwrap();
        let compressed = store.materialize(chunk, None).unwrap();
        assert!(!compressed.is_fully_decoded());
        assert!(compressed.verify_checksums().is_ok());
        assert_eq!(
            compressed.try_decode_all(),
            Ok(256),
            "one compressed column"
        );
        assert_eq!(compressed.decode_all(), 0, "second pass is free");
        assert_eq!(compressed, plain, "lossless through the store");
        // DSM subsets keep per-column schemes.
        let subset = store.materialize(chunk, Some(&[col(1)])).unwrap();
        assert!(!subset.is_fully_decoded());
        assert_eq!(subset.column(col(1)), plain.column(col(1)));
    }

    #[test]
    fn compressing_store_shrinks_compressible_data() {
        /// A store whose column values are small (dictionary-friendly).
        #[derive(Clone)]
        struct SmallValues;
        impl ChunkStore for SmallValues {
            fn materialize(
                &self,
                _chunk: ChunkId,
                _cols: Option<&[ColumnId]>,
            ) -> Result<ChunkPayload, StoreError> {
                Ok(ChunkPayload::Nsm(Arc::new(NsmChunkData::new(vec![
                    Arc::new((0..4096).map(|i| i % 3).collect()),
                ]))))
            }
        }
        let store = CompressingStore::new(SmallValues, vec![Compression::Dictionary { bits: 2 }]);
        let p = store.materialize(ChunkId::new(0), None).unwrap();
        assert!(
            p.physical_bytes() * 4 < p.logical_bytes(),
            "2-bit codes over 64-bit values must shrink >=4x: {} vs {}",
            p.physical_bytes(),
            p.logical_bytes()
        );
        assert_eq!(p.decode_all(), 4096);
    }

    #[test]
    fn dsm_merge_preserves_decode_state() {
        let a = DsmChunkData::from_parts(vec![(col(0), ColumnChunk::encode(&[1, 2, 3], pfor21()))]);
        // Decode a's column, then merge a new compressed column in.
        assert_eq!(a.column(col(0)), Some(&[1, 2, 3][..]));
        let b = DsmChunkData::from_parts(vec![(col(1), ColumnChunk::encode(&[7, 8, 9], pfor21()))]);
        let merged = a.merged_with(&b);
        let states: Vec<bool> = merged.parts().iter().map(|(_, c)| c.is_decoded()).collect();
        assert_eq!(
            states,
            vec![true, false],
            "the decoded column stays decoded, the new one stays encoded"
        );
        assert_eq!(merged.column(col(1)), Some(&[7, 8, 9][..]));
    }
}
