//! DSM (column-store) physical layout.
//!
//! Each column lives in its own contiguous on-disk area, stored at its
//! *physical* (possibly compressed) width.  Logical chunks are horizontal
//! partitions with a fixed tuple count, so — exactly as Figure 9 of the
//! paper illustrates — the same chunk occupies wildly different numbers of
//! pages in different columns, chunk boundaries do not coincide with page
//! boundaries, and a page loaded for one chunk usually also carries data of
//! its neighbours.

use crate::ids::{ChunkId, ColumnId};
use crate::schema::TableSchema;
use crate::{Layout, PhysRegion, DEFAULT_PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// DSM layout of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsmLayout {
    schema: TableSchema,
    num_tuples: u64,
    page_size: u64,
    tuples_per_chunk: u64,
    num_chunks: u32,
    /// Per-column physical width in bits.
    column_bits: Vec<u32>,
    /// Per-column starting byte offset of the column area (page aligned).
    column_offsets: Vec<u64>,
    /// Per-column area length in bytes (page aligned).
    column_lengths: Vec<u64>,
}

impl DsmLayout {
    /// Builds a DSM layout for `num_tuples` tuples partitioned into logical
    /// chunks of `tuples_per_chunk` tuples, with the given page size.
    ///
    /// # Panics
    /// Panics if `num_tuples` or `tuples_per_chunk` is zero, or the page size is zero.
    pub fn new(
        schema: TableSchema,
        num_tuples: u64,
        page_size: u64,
        tuples_per_chunk: u64,
    ) -> Self {
        assert!(num_tuples > 0, "table must contain at least one tuple");
        assert!(
            tuples_per_chunk > 0,
            "chunks must contain at least one tuple"
        );
        assert!(page_size > 0, "page size must be positive");
        let num_chunks = num_tuples.div_ceil(tuples_per_chunk) as u32;
        let column_bits: Vec<u32> = schema.columns().iter().map(|c| c.physical_bits()).collect();
        let mut column_offsets = Vec::with_capacity(column_bits.len());
        let mut column_lengths = Vec::with_capacity(column_bits.len());
        let mut cursor = 0u64;
        for &bits in &column_bits {
            let raw_bytes = (num_tuples as u128 * bits as u128).div_ceil(8) as u64;
            let len = raw_bytes.div_ceil(page_size) * page_size;
            column_offsets.push(cursor);
            column_lengths.push(len);
            cursor += len;
        }
        Self {
            schema,
            num_tuples,
            page_size,
            tuples_per_chunk,
            num_chunks,
            column_bits,
            column_offsets,
            column_lengths,
        }
    }

    /// Builds a layout with the defaults used in the paper's DSM experiments:
    /// 64 KiB pages and 100 000-tuple logical chunks.
    pub fn with_defaults(schema: TableSchema, num_tuples: u64) -> Self {
        Self::new(schema, num_tuples, DEFAULT_PAGE_SIZE, 100_000)
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Physical page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Tuples per logical chunk (the last chunk may hold fewer).
    pub fn tuples_per_chunk(&self) -> u64 {
        self.tuples_per_chunk
    }

    /// Physical width of one value of column `col`, in bits.
    pub fn column_bits(&self, col: ColumnId) -> u32 {
        self.column_bits[col.as_usize()]
    }

    /// The range of tuple positions `[start, end)` covered by `chunk`.
    pub fn chunk_tuple_range(&self, chunk: ChunkId) -> (u64, u64) {
        let start = chunk.index() as u64 * self.tuples_per_chunk;
        let end = (start + self.tuples_per_chunk).min(self.num_tuples);
        (start, end)
    }

    /// The chunk containing tuple position `tuple`.
    pub fn chunk_of_tuple(&self, tuple: u64) -> ChunkId {
        debug_assert!(tuple < self.num_tuples);
        ChunkId::new((tuple / self.tuples_per_chunk) as u32)
    }

    /// Byte range `[start, end)` of the given chunk's values inside the
    /// column area of `col` (relative to the start of that column area,
    /// not page aligned).
    fn chunk_column_byte_range(&self, chunk: ChunkId, col: ColumnId) -> (u64, u64) {
        let bits = self.column_bits[col.as_usize()] as u128;
        let (t_start, t_end) = self.chunk_tuple_range(chunk);
        let start = (t_start as u128 * bits) / 8;
        let end = (t_end as u128 * bits).div_ceil(8);
        (start as u64, end as u64)
    }

    /// The page index range `[first, last]` (inclusive) within the column
    /// area of `col` touched by `chunk`, or `None` for an empty chunk.
    pub fn chunk_column_page_span(&self, chunk: ChunkId, col: ColumnId) -> Option<(u64, u64)> {
        let (start, end) = self.chunk_column_byte_range(chunk, col);
        if end <= start {
            return None;
        }
        Some((start / self.page_size, (end - 1) / self.page_size))
    }

    /// Number of physical pages of column `col` that carry data of `chunk`.
    pub fn chunk_column_pages(&self, chunk: ChunkId, col: ColumnId) -> u64 {
        match self.chunk_column_page_span(chunk, col) {
            Some((first, last)) => last - first + 1,
            None => 0,
        }
    }

    /// Whether the first/last pages of the chunk's span in `col` are shared
    /// with the previous/next chunk — the "data waste" hazard of Section 6.2.
    pub fn chunk_column_shares_pages(&self, chunk: ChunkId, col: ColumnId) -> (bool, bool) {
        let span = match self.chunk_column_page_span(chunk, col) {
            Some(s) => s,
            None => return (false, false),
        };
        let shares_prev = chunk.index() > 0
            && self
                .chunk_column_page_span(ChunkId::new(chunk.index() - 1), col)
                .is_some_and(|prev| prev.1 == span.0);
        let shares_next = chunk.index() + 1 < self.num_chunks
            && self
                .chunk_column_page_span(ChunkId::new(chunk.index() + 1), col)
                .is_some_and(|next| next.0 == span.1);
        (shares_prev, shares_next)
    }
}

impl Layout for DsmLayout {
    fn num_chunks(&self) -> u32 {
        self.num_chunks
    }

    fn num_tuples(&self) -> u64 {
        self.num_tuples
    }

    fn chunk_tuples(&self, chunk: ChunkId) -> u64 {
        let (start, end) = self.chunk_tuple_range(chunk);
        end.saturating_sub(start)
    }

    fn chunk_pages(&self, chunk: ChunkId, cols: &[ColumnId]) -> u64 {
        cols.iter()
            .map(|&c| self.chunk_column_pages(chunk, c))
            .sum()
    }

    fn chunk_bytes(&self, chunk: ChunkId, cols: &[ColumnId]) -> u64 {
        self.chunk_pages(chunk, cols) * self.page_size
    }

    fn chunk_regions(&self, chunk: ChunkId, cols: &[ColumnId]) -> Vec<PhysRegion> {
        let mut regions = Vec::with_capacity(cols.len());
        for &col in cols {
            if let Some((first, last)) = self.chunk_column_page_span(chunk, col) {
                let base = self.column_offsets[col.as_usize()];
                regions.push(PhysRegion {
                    offset: base + first * self.page_size,
                    len: (last - first + 1) * self.page_size,
                });
            }
        }
        regions
    }

    fn num_columns(&self) -> u16 {
        self.schema.num_columns()
    }

    fn total_bytes(&self) -> u64 {
        self.column_lengths.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::Compression;
    use crate::schema::{ColumnDef, ColumnType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "lineitem_like",
            vec![
                ColumnDef::compressed(
                    "orderkey",
                    ColumnType::Int64,
                    Compression::PforDelta {
                        bits: 3,
                        exception_rate: 0.0,
                    },
                ),
                ColumnDef::compressed(
                    "partkey",
                    ColumnType::Int64,
                    Compression::Pfor {
                        bits: 21,
                        exception_rate: 0.0,
                    },
                ),
                ColumnDef::compressed(
                    "returnflag",
                    ColumnType::Char,
                    Compression::Dictionary { bits: 2 },
                ),
                ColumnDef::new("extendedprice", ColumnType::Decimal),
                ColumnDef::new("comment", ColumnType::Varchar { avg_len: 32 }),
            ],
        )
    }

    fn layout() -> DsmLayout {
        DsmLayout::new(schema(), 1_000_000, 64 * 1024, 100_000)
    }

    #[test]
    fn chunk_count_and_tuples() {
        let l = layout();
        assert_eq!(l.num_chunks(), 10);
        assert_eq!(l.chunk_tuples(ChunkId::new(0)), 100_000);
        assert_eq!(l.chunk_tuples(ChunkId::new(9)), 100_000);
        let l2 = DsmLayout::new(schema(), 950_001, 64 * 1024, 100_000);
        assert_eq!(l2.num_chunks(), 10);
        assert_eq!(l2.chunk_tuples(ChunkId::new(9)), 50_001);
    }

    #[test]
    fn column_widths_drive_page_counts() {
        let l = layout();
        let c = ChunkId::new(3);
        let orderkey = l.schema().column_id("orderkey").unwrap();
        let price = l.schema().column_id("extendedprice").unwrap();
        let comment = l.schema().column_id("comment").unwrap();
        // 3-bit column: 100k tuples ~ 37.5 KB -> 1-2 pages.
        assert!(l.chunk_column_pages(c, orderkey) <= 2);
        // 64-bit column: 100k tuples = 800 KB -> ~13 pages.
        let p = l.chunk_column_pages(c, price);
        assert!((12..=14).contains(&p), "got {p}");
        // 32-byte strings: 100k tuples = 3.2 MB -> ~49-50 pages.
        let pc = l.chunk_column_pages(c, comment);
        assert!((48..=51).contains(&pc), "got {pc}");
    }

    #[test]
    fn chunk_pages_sums_over_requested_columns() {
        let l = layout();
        let c = ChunkId::new(0);
        let cols = l.schema().resolve(&["orderkey", "extendedprice"]);
        let sum = l.chunk_column_pages(c, cols[0]) + l.chunk_column_pages(c, cols[1]);
        assert_eq!(l.chunk_pages(c, &cols), sum);
        assert_eq!(l.chunk_bytes(c, &cols), sum * 64 * 1024);
        assert_eq!(l.chunk_pages(c, &[]), 0);
    }

    #[test]
    fn narrow_columns_share_pages_between_chunks() {
        let l = layout();
        let orderkey = l.schema().column_id("orderkey").unwrap();
        // A 3-bit column packs ~174k values per 64 KiB page, so a 100k-tuple
        // chunk occupies at most two pages and adjacent chunks share the
        // boundary page (chunk boundaries never align with page boundaries).
        let s1 = l.chunk_column_page_span(ChunkId::new(0), orderkey).unwrap();
        let s2 = l.chunk_column_page_span(ChunkId::new(1), orderkey).unwrap();
        assert_eq!(s2.0, s1.1, "chunk 1 starts on the page where chunk 0 ends");
        assert!(l.chunk_column_pages(ChunkId::new(1), orderkey) <= 2);
        let (prev, _next) = l.chunk_column_shares_pages(ChunkId::new(1), orderkey);
        assert!(prev, "chunk 1 shares its first page with chunk 0");
    }

    #[test]
    fn wide_columns_rarely_share_pages() {
        let l = layout();
        let comment = l.schema().column_id("comment").unwrap();
        let s1 = l.chunk_column_page_span(ChunkId::new(0), comment).unwrap();
        let s2 = l.chunk_column_page_span(ChunkId::new(1), comment).unwrap();
        assert!(
            s2.0 >= s1.1,
            "chunk 1 starts at or after chunk 0's last page"
        );
        assert!(s2.1 > s1.1, "chunk 1 extends beyond chunk 0");
    }

    #[test]
    fn regions_live_in_their_column_area() {
        let l = layout();
        let cols = l.schema().all_columns();
        let regions = l.chunk_regions(ChunkId::new(5), &cols);
        assert_eq!(regions.len(), cols.len());
        // Regions of different columns never overlap.
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                let a_end = a.offset + a.len;
                let b_end = b.offset + b.len;
                assert!(
                    a_end <= b.offset || b_end <= a.offset,
                    "regions overlap: {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn dsm_reads_less_than_nsm_for_few_columns() {
        // The motivation for DSM in Section 2: reading 2 of many columns
        // costs far less I/O than reading full tuples.
        let l = layout();
        let two = l.schema().resolve(&["orderkey", "returnflag"]);
        let all = l.schema().all_columns();
        let few_bytes: u64 = (0..l.num_chunks())
            .map(|c| l.chunk_bytes(ChunkId::new(c), &two))
            .sum();
        let all_bytes: u64 = (0..l.num_chunks())
            .map(|c| l.chunk_bytes(ChunkId::new(c), &all))
            .sum();
        assert!(
            few_bytes * 10 < all_bytes,
            "few={few_bytes} all={all_bytes}"
        );
    }

    #[test]
    fn total_bytes_is_page_aligned_sum_of_columns() {
        let l = layout();
        assert_eq!(l.total_bytes() % l.page_size(), 0);
        assert!(l.total_bytes() > 0);
    }

    #[test]
    fn tuple_chunk_mapping() {
        let l = layout();
        assert_eq!(l.chunk_of_tuple(0), ChunkId::new(0));
        assert_eq!(l.chunk_of_tuple(99_999), ChunkId::new(0));
        assert_eq!(l.chunk_of_tuple(100_000), ChunkId::new(1));
        assert_eq!(l.chunk_of_tuple(999_999), ChunkId::new(9));
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_tuple_chunks_rejected() {
        DsmLayout::new(schema(), 100, 64 * 1024, 0);
    }
}
