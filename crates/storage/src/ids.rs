//! Strongly-typed identifiers shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical chunk within a table (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId(u32);

impl ChunkId {
    /// Creates a chunk id from its index.
    pub const fn new(index: u32) -> Self {
        ChunkId(index)
    }

    /// The underlying dense index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The index as a usize, for direct vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The chunk immediately after this one.
    pub const fn next(self) -> ChunkId {
        ChunkId(self.0 + 1)
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk#{}", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a column within a table schema (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId(u16);

impl ColumnId {
    /// Creates a column id from its index.
    pub const fn new(index: u16) -> Self {
        ColumnId(index)
    }

    /// The underlying dense index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// The index as a usize, for direct vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col#{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a physical page within a table's storage area.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from its index.
    pub const fn new(index: u64) -> Self {
        PageId(index)
    }

    /// The underlying dense index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chunk_id_basics() {
        let c = ChunkId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.as_usize(), 7);
        assert_eq!(c.next(), ChunkId::new(8));
        assert_eq!(format!("{c:?}"), "chunk#7");
        assert_eq!(format!("{c}"), "7");
        assert!(ChunkId::new(3) < ChunkId::new(4));
    }

    #[test]
    fn column_id_basics() {
        let c = ColumnId::new(2);
        assert_eq!(c.index(), 2);
        assert_eq!(c.as_usize(), 2);
        assert_eq!(format!("{c:?}"), "col#2");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<ChunkId> = (0..10).map(ChunkId::new).collect();
        assert_eq!(set.len(), 10);
        let pages: HashSet<PageId> = (0..5).map(PageId::new).collect();
        assert_eq!(pages.len(), 5);
        assert_eq!(PageId::new(3).index(), 3);
        assert_eq!(format!("{:?}", PageId::new(3)), "page#3");
    }
}
