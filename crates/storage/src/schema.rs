//! Table schemas.
//!
//! Schemas in this reproduction exist to drive the *physical* modelling
//! (column widths, compression, table sizes) and the example query
//! operators; they are deliberately small — just enough to describe a
//! TPC-H-style fact table.

use crate::compression::Compression;
use crate::ids::ColumnId;
use serde::{Deserialize, Serialize};

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer (also used for keys and dates encoded as days).
    Int64,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit fixed-point decimal (stored as scaled integer).
    Decimal,
    /// Calendar date stored as days since epoch.
    Date,
    /// Single ASCII character (flags).
    Char,
    /// Variable-length string with a declared average width.
    Varchar {
        /// Average uncompressed width in bytes, used for size modelling.
        avg_len: u16,
    },
}

impl ColumnType {
    /// Uncompressed width of one value in bytes, as stored by the engine.
    pub fn uncompressed_width(&self) -> u16 {
        match self {
            ColumnType::Int64 | ColumnType::Decimal => 8,
            ColumnType::Int32 | ColumnType::Date => 4,
            ColumnType::Char => 1,
            ColumnType::Varchar { avg_len } => *avg_len,
        }
    }
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Logical type.
    pub ty: ColumnType,
    /// On-disk compression scheme (affects physical width only).
    pub compression: Compression,
}

impl ColumnDef {
    /// Creates an uncompressed column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
            compression: Compression::None,
        }
    }

    /// Creates a compressed column.
    pub fn compressed(name: impl Into<String>, ty: ColumnType, compression: Compression) -> Self {
        Self {
            name: name.into(),
            ty,
            compression,
        }
    }

    /// Physical width of one value in *bits* after compression.
    pub fn physical_bits(&self) -> u32 {
        self.compression.physical_bits(self.ty)
    }

    /// Physical width of one value in bytes (fractional, for size modelling).
    pub fn physical_bytes(&self) -> f64 {
        self.physical_bits() as f64 / 8.0
    }
}

/// A table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema from a table name and column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name or if the column list is empty.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Self {
            name: name.into(),
            columns,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All column definitions in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn num_columns(&self) -> u16 {
        self.columns.len() as u16
    }

    /// The definition of column `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn column(&self, id: ColumnId) -> &ColumnDef {
        &self.columns[id.as_usize()]
    }

    /// Looks up a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId::new(i as u16))
    }

    /// All column ids, in declaration order.
    pub fn all_columns(&self) -> Vec<ColumnId> {
        (0..self.num_columns()).map(ColumnId::new).collect()
    }

    /// Sum of uncompressed per-tuple widths, in bytes.
    pub fn tuple_width_uncompressed(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.ty.uncompressed_width() as u64)
            .sum()
    }

    /// Sum of physical (compressed) per-tuple widths, in bytes.
    pub fn tuple_width_physical(&self) -> f64 {
        self.columns.iter().map(|c| c.physical_bytes()).sum()
    }

    /// Resolves a list of column names to ids.
    ///
    /// # Panics
    /// Panics if any name is unknown — schema/query mismatches are
    /// programming errors in this reproduction.
    pub fn resolve(&self, names: &[&str]) -> Vec<ColumnId> {
        names
            .iter()
            .map(|n| {
                self.column_id(n)
                    .unwrap_or_else(|| panic!("unknown column {n:?} in table {:?}", self.name))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Int64),
                ColumnDef::new("b", ColumnType::Int32),
                ColumnDef::compressed("c", ColumnType::Char, Compression::Dictionary { bits: 2 }),
                ColumnDef::new("d", ColumnType::Varchar { avg_len: 32 }),
            ],
        )
    }

    #[test]
    fn widths() {
        assert_eq!(ColumnType::Int64.uncompressed_width(), 8);
        assert_eq!(ColumnType::Date.uncompressed_width(), 4);
        assert_eq!(ColumnType::Varchar { avg_len: 25 }.uncompressed_width(), 25);
        let s = sample();
        assert_eq!(s.tuple_width_uncompressed(), 8 + 4 + 1 + 32);
        // c compresses from 8 bits to 2 bits.
        assert!(s.tuple_width_physical() < s.tuple_width_uncompressed() as f64);
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.column_id("c"), Some(ColumnId::new(2)));
        assert_eq!(s.column_id("nope"), None);
        assert_eq!(s.column(ColumnId::new(0)).name, "a");
        assert_eq!(
            s.resolve(&["b", "d"]),
            vec![ColumnId::new(1), ColumnId::new(3)]
        );
        assert_eq!(s.all_columns().len(), 4);
        assert_eq!(s.num_columns(), 4);
        assert_eq!(s.name(), "t");
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn resolve_unknown_panics() {
        sample().resolve(&["zzz"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Int64),
                ColumnDef::new("a", ColumnType::Int32),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_rejected() {
        TableSchema::new("t", vec![]);
    }
}
