//! Scan plans: which chunks a query needs.
//!
//! A CScan registers "a range or a set of ranges from a table or a clustered
//! index" (Section 4).  [`ScanRanges`] is that registration: an ordered set
//! of disjoint, coalesced chunk ranges.

use crate::ids::ChunkId;
use serde::{Deserialize, Serialize};

/// A half-open range of chunk indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkRange {
    /// First chunk index in the range.
    pub start: u32,
    /// One past the last chunk index in the range.
    pub end: u32,
}

impl ChunkRange {
    /// Creates a range; `start` must not exceed `end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "invalid chunk range {start}..{end}");
        Self { start, end }
    }

    /// Number of chunks in the range.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True if the range contains no chunks.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether the range contains `chunk`.
    pub fn contains(&self, chunk: ChunkId) -> bool {
        chunk.index() >= self.start && chunk.index() < self.end
    }

    /// Iterator over the chunk ids in the range.
    pub fn iter(&self) -> impl Iterator<Item = ChunkId> + '_ {
        (self.start..self.end).map(ChunkId::new)
    }
}

/// An ordered set of disjoint chunk ranges — the data need of one scan.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScanRanges {
    ranges: Vec<ChunkRange>,
}

impl ScanRanges {
    /// An empty scan (needs nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A scan over the single range `[start, end)`.
    pub fn single(start: u32, end: u32) -> Self {
        let r = ChunkRange::new(start, end);
        if r.is_empty() {
            Self::empty()
        } else {
            Self { ranges: vec![r] }
        }
    }

    /// A scan over the whole table of `num_chunks` chunks.
    pub fn full(num_chunks: u32) -> Self {
        Self::single(0, num_chunks)
    }

    /// Builds coalesced ranges from arbitrary (possibly unsorted, possibly
    /// duplicated) chunk indices.
    pub fn from_chunk_indices<I: IntoIterator<Item = u32>>(indices: I) -> Self {
        let mut v: Vec<u32> = indices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let mut ranges: Vec<ChunkRange> = Vec::new();
        for idx in v {
            match ranges.last_mut() {
                Some(last) if last.end == idx => last.end += 1,
                _ => ranges.push(ChunkRange::new(idx, idx + 1)),
            }
        }
        Self { ranges }
    }

    /// Builds a scan from explicit ranges, normalizing (sorting, merging
    /// overlapping or adjacent ranges, dropping empties).
    pub fn from_ranges<I: IntoIterator<Item = ChunkRange>>(ranges: I) -> Self {
        let mut v: Vec<ChunkRange> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        v.sort_by_key(|r| r.start);
        let mut out: Vec<ChunkRange> = Vec::with_capacity(v.len());
        for r in v {
            match out.last_mut() {
                Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
                _ => out.push(r),
            }
        }
        Self { ranges: out }
    }

    /// The normalized ranges.
    pub fn ranges(&self) -> &[ChunkRange] {
        &self.ranges
    }

    /// True if the scan needs no chunks.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of chunks needed.
    pub fn num_chunks(&self) -> u32 {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// Whether the scan needs `chunk`.
    pub fn contains(&self, chunk: ChunkId) -> bool {
        // Ranges are sorted and disjoint: binary search by start.
        self.ranges
            .binary_search_by(|r| {
                if chunk.index() < r.start {
                    std::cmp::Ordering::Greater
                } else if chunk.index() >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// All needed chunk ids, in table order.
    pub fn chunks(&self) -> Vec<ChunkId> {
        self.iter().collect()
    }

    /// Iterator over needed chunk ids in table order.
    pub fn iter(&self) -> impl Iterator<Item = ChunkId> + '_ {
        self.ranges.iter().flat_map(|r| r.iter())
    }

    /// The first needed chunk, if any.
    pub fn first(&self) -> Option<ChunkId> {
        self.ranges.first().map(|r| ChunkId::new(r.start))
    }

    /// The last needed chunk, if any.
    pub fn last(&self) -> Option<ChunkId> {
        self.ranges.last().map(|r| ChunkId::new(r.end - 1))
    }

    /// Number of chunks both scans need (the overlap that drives sharing).
    pub fn overlap(&self, other: &ScanRanges) -> u32 {
        let mut total = 0u32;
        let mut j = 0usize;
        for a in &self.ranges {
            while j < other.ranges.len() && other.ranges[j].end <= a.start {
                j += 1;
            }
            let mut k = j;
            while k < other.ranges.len() && other.ranges[k].start < a.end {
                let b = &other.ranges[k];
                let lo = a.start.max(b.start);
                let hi = a.end.min(b.end);
                total += hi - lo;
                k += 1;
            }
        }
        total
    }

    /// The next needed chunk at or after `pos`, wrapping around to the start
    /// of the scan if none — the circular-scan order used by `attach`.
    pub fn next_from(&self, pos: ChunkId) -> Option<ChunkId> {
        if self.is_empty() {
            return None;
        }
        for r in &self.ranges {
            if pos.index() < r.start {
                return Some(ChunkId::new(r.start));
            }
            if r.contains(pos) {
                return Some(pos);
            }
        }
        self.first()
    }
}

impl FromIterator<ChunkId> for ScanRanges {
    fn from_iter<T: IntoIterator<Item = ChunkId>>(iter: T) -> Self {
        Self::from_chunk_indices(iter.into_iter().map(|c| c.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_range_basics() {
        let s = ScanRanges::single(5, 10);
        assert_eq!(s.num_chunks(), 5);
        assert!(s.contains(ChunkId::new(5)));
        assert!(s.contains(ChunkId::new(9)));
        assert!(!s.contains(ChunkId::new(10)));
        assert!(!s.contains(ChunkId::new(0)));
        assert_eq!(s.first(), Some(ChunkId::new(5)));
        assert_eq!(s.last(), Some(ChunkId::new(9)));
        assert_eq!(s.chunks().len(), 5);
    }

    #[test]
    fn empty_scans() {
        assert!(ScanRanges::empty().is_empty());
        assert!(ScanRanges::single(3, 3).is_empty());
        assert_eq!(ScanRanges::empty().num_chunks(), 0);
        assert_eq!(ScanRanges::empty().first(), None);
        assert_eq!(ScanRanges::empty().next_from(ChunkId::new(0)), None);
    }

    #[test]
    fn from_indices_coalesces() {
        let s = ScanRanges::from_chunk_indices(vec![7, 1, 2, 3, 9, 8, 2]);
        assert_eq!(s.ranges(), &[ChunkRange::new(1, 4), ChunkRange::new(7, 10)]);
        assert_eq!(s.num_chunks(), 6);
    }

    #[test]
    fn from_ranges_merges_overlaps() {
        let s = ScanRanges::from_ranges(vec![
            ChunkRange::new(10, 20),
            ChunkRange::new(0, 5),
            ChunkRange::new(4, 12),
            ChunkRange::new(30, 30),
        ]);
        assert_eq!(s.ranges(), &[ChunkRange::new(0, 20)]);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let s = ScanRanges::from_ranges(vec![ChunkRange::new(0, 5), ChunkRange::new(5, 10)]);
        assert_eq!(s.ranges(), &[ChunkRange::new(0, 10)]);
    }

    #[test]
    fn overlap_counts_shared_chunks() {
        let a = ScanRanges::from_ranges(vec![ChunkRange::new(0, 10), ChunkRange::new(20, 30)]);
        let b = ScanRanges::from_ranges(vec![ChunkRange::new(5, 25)]);
        assert_eq!(a.overlap(&b), 5 + 5);
        assert_eq!(b.overlap(&a), 10);
        assert_eq!(a.overlap(&a), 20);
        assert_eq!(a.overlap(&ScanRanges::empty()), 0);
        let c = ScanRanges::single(50, 60);
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn next_from_wraps_circularly() {
        let s = ScanRanges::from_ranges(vec![ChunkRange::new(2, 5), ChunkRange::new(10, 12)]);
        assert_eq!(s.next_from(ChunkId::new(0)), Some(ChunkId::new(2)));
        assert_eq!(s.next_from(ChunkId::new(3)), Some(ChunkId::new(3)));
        assert_eq!(s.next_from(ChunkId::new(5)), Some(ChunkId::new(10)));
        assert_eq!(s.next_from(ChunkId::new(11)), Some(ChunkId::new(11)));
        // Past the end: wrap to the beginning.
        assert_eq!(s.next_from(ChunkId::new(12)), Some(ChunkId::new(2)));
        assert_eq!(s.next_from(ChunkId::new(100)), Some(ChunkId::new(2)));
    }

    #[test]
    fn iteration_is_in_table_order() {
        let s = ScanRanges::from_chunk_indices(vec![9, 1, 5, 6]);
        let order: Vec<u32> = s.iter().map(|c| c.index()).collect();
        assert_eq!(order, vec![1, 5, 6, 9]);
    }

    #[test]
    fn collect_from_chunk_ids() {
        let s: ScanRanges = vec![ChunkId::new(3), ChunkId::new(4), ChunkId::new(9)]
            .into_iter()
            .collect();
        assert_eq!(s.num_chunks(), 3);
        assert_eq!(s.ranges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid chunk range")]
    fn inverted_range_rejected() {
        ChunkRange::new(5, 2);
    }

    #[test]
    fn full_covers_everything() {
        let s = ScanRanges::full(100);
        assert_eq!(s.num_chunks(), 100);
        assert!(s.contains(ChunkId::new(0)));
        assert!(s.contains(ChunkId::new(99)));
    }
}
