//! Storage substrate: schemas, physical layouts and chunk maps.
//!
//! The Cooperative Scans framework schedules *logical chunks* — horizontal
//! partitions of a table — while the disk works in *physical pages*.  This
//! crate models both sides of that relationship for the two storage models
//! studied in the paper:
//!
//! * **NSM/PAX** ([`nsm::NsmLayout`]): all columns of a tuple live together,
//!   a chunk is a fixed number of contiguous pages, and chunk boundaries
//!   coincide with page boundaries.
//! * **DSM** ([`dsm::DsmLayout`]): each column is stored separately with its
//!   own (possibly compressed) physical width, a chunk is a tuple-count
//!   partition, and chunk boundaries generally do *not* coincide with page
//!   boundaries (Figure 9 of the paper).
//!
//! [`zonemap::ZoneMap`] implements the "small materialized aggregates" /
//! min-max metadata of Section 2, which turns range predicates on correlated
//! columns into multi-range scan plans ([`scan::ScanRanges`]).
//!
//! [`chunkdata`] is the data plane: [`chunkdata::ChunkStore`] materializes
//! the actual column values of a chunk as a [`chunkdata::ChunkPayload`]
//! (PAX mini-columns for NSM, a mergeable column subset for DSM), which is
//! what a pinned chunk hands to the query operators.  Mini-columns may be
//! stored *compressed*: [`codec`] implements the real PDICT / PFOR /
//! PFOR-DELTA encoders ([`compression`] keeps the width model they are
//! validated against), and [`chunkdata::CompressingStore`] wraps any store
//! so its payloads travel as encoded bytes that decode lazily on first pin.

#![warn(missing_docs)]

pub mod chunkdata;
pub mod codec;
pub mod compression;
pub mod dsm;
pub mod fault;
pub mod ids;
pub mod nsm;
pub mod scan;
pub mod schema;
pub mod segment;
pub mod zonemap;

pub use chunkdata::{
    ChunkPayload, ChunkStore, ColumnChunk, CompressingStore, DsmChunkData, LazyColumn,
    NsmChunkData, SeededStore,
};
pub use codec::{checksum64, EncodedColumn};
pub use compression::Compression;
pub use dsm::DsmLayout;
pub use fault::{FaultConfig, FaultInjectingStore, FaultOutcome, StoreError};
pub use ids::{ChunkId, ColumnId, PageId};
pub use nsm::NsmLayout;
pub use scan::{ChunkRange, ScanRanges};
pub use schema::{ColumnDef, ColumnType, TableSchema};
pub use segment::{FileStore, PreadFile, SegmentIo, SegmentSummary, SegmentWriter};
pub use zonemap::ZoneMap;

use cscan_simdisk::IoRequest;

/// Default physical page size used throughout the reproduction (64 KiB,
/// matching MonetDB/X100's large-page orientation).
pub const DEFAULT_PAGE_SIZE: u64 = 64 * 1024;

/// A physical region of the table file: where a piece of a chunk lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhysRegion {
    /// Byte offset within the table's storage area.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl PhysRegion {
    /// Converts the region into a chunk-read I/O request.
    pub fn to_io_request(self) -> IoRequest {
        IoRequest::chunk_read(self.offset, self.len)
    }
}

/// Common interface of the two physical layouts.
///
/// Everything the Active Buffer Manager needs to know about a table is
/// expressible through this trait: how many logical chunks there are, how
/// many tuples and physical pages each (chunk, column-set) combination
/// occupies, and which byte regions must be read to load it.
pub trait Layout {
    /// Number of logical chunks in the table.
    fn num_chunks(&self) -> u32;

    /// Number of tuples in the table.
    fn num_tuples(&self) -> u64;

    /// Number of tuples contained in the given chunk.
    fn chunk_tuples(&self, chunk: ChunkId) -> u64;

    /// Number of physical pages that must be resident to process the given
    /// columns of the given chunk.  For NSM the column set is irrelevant.
    fn chunk_pages(&self, chunk: ChunkId, cols: &[ColumnId]) -> u64;

    /// Bytes that must be read from disk for the given columns of the chunk.
    fn chunk_bytes(&self, chunk: ChunkId, cols: &[ColumnId]) -> u64;

    /// Physical regions to read for the given columns of the chunk.
    fn chunk_regions(&self, chunk: ChunkId, cols: &[ColumnId]) -> Vec<PhysRegion>;

    /// Total size of the table in bytes (all columns).
    fn total_bytes(&self) -> u64 {
        let all: Vec<ColumnId> = (0..self.num_columns()).map(ColumnId::new).collect();
        (0..self.num_chunks())
            .map(|c| self.chunk_bytes(ChunkId::new(c), &all))
            .sum()
    }

    /// Number of columns in the table.
    fn num_columns(&self) -> u16;

    /// Total pages occupied by the given columns over the whole table.
    fn total_pages(&self, cols: &[ColumnId]) -> u64 {
        (0..self.num_chunks())
            .map(|c| self.chunk_pages(ChunkId::new(c), cols))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_region_to_io_request() {
        let r = PhysRegion {
            offset: 4096,
            len: 1024,
        };
        let io = r.to_io_request();
        assert_eq!(io.offset, 4096);
        assert_eq!(io.len, 1024);
    }
}
