//! The storage-error taxonomy and a deterministic fault-injecting store.
//!
//! Real table files fail in ways the happy path never sees: a read errors
//! transiently (retry it), times out (retry it), returns damaged bytes
//! (the checksum catches it — retry it), or the sector is gone for good
//! (quarantine the chunk and err the queries that need it).  [`StoreError`]
//! names those four outcomes; every layer above — buffer manager, I/O
//! scheduler, scan sessions, query operators — routes them instead of
//! panicking.
//!
//! [`FaultInjectingStore`] wraps any [`ChunkStore`] and injects that whole
//! taxonomy *deterministically*: the outcome of attempt `n` on chunk `c` is
//! a pure function of `(seed, c, n)`, so a chaos run is exactly
//! reproducible from its seed, and a bounded retry loop provably clears
//! transient faults (attempt numbers advance, so rerolls differ).

use crate::chunkdata::{
    ChunkPayload, ChunkStore, ColumnChunk, DsmChunkData, LazyColumn, NsmChunkData,
};
use crate::ids::{ChunkId, ColumnId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a chunk read failed.
///
/// The variants matter to the retry layer: everything except
/// [`StoreError::Permanent`] is worth another attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StoreError {
    /// The read failed but a retry may succeed (EIO-class hiccup).
    Transient,
    /// The read did not complete within its deadline; retryable.
    TimedOut,
    /// The read completed but the payload failed checksum verification;
    /// the bytes were torn in flight, so a retry may return clean ones.
    Corrupted,
    /// The chunk is unreadable for good (bad sector, truncated file);
    /// retrying cannot help — quarantine the chunk.
    Permanent,
}

impl StoreError {
    /// Whether a bounded retry loop should try this read again.
    pub fn is_retryable(self) -> bool {
        !matches!(self, StoreError::Permanent)
    }

    /// Stable wire code for this error, used by the serving layer's binary
    /// protocol.  Codes are append-only: existing values never change
    /// meaning, and new variants (the enum is `#[non_exhaustive]`) claim
    /// fresh codes.
    pub fn wire_code(self) -> u16 {
        match self {
            StoreError::Transient => 1,
            StoreError::TimedOut => 2,
            StoreError::Corrupted => 3,
            StoreError::Permanent => 4,
        }
    }

    /// Decodes a wire code back into the error it names, or `None` for
    /// codes this build does not know (a newer peer may send them).
    pub fn from_wire_code(code: u16) -> Option<StoreError> {
        match code {
            1 => Some(StoreError::Transient),
            2 => Some(StoreError::TimedOut),
            3 => Some(StoreError::Corrupted),
            4 => Some(StoreError::Permanent),
            _ => None,
        }
    }

    /// Every variant this build knows, for exhaustive round-trip tests.
    pub const ALL: [StoreError; 4] = [
        StoreError::Transient,
        StoreError::TimedOut,
        StoreError::Corrupted,
        StoreError::Permanent,
    ];
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Transient => write!(f, "transient read failure"),
            StoreError::TimedOut => write!(f, "read timed out"),
            StoreError::Corrupted => write!(f, "payload failed checksum verification"),
            StoreError::Permanent => write!(f, "permanent read failure"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What the fault injector decided for one `(chunk, attempt)` read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver the payload untouched.
    Success,
    /// Deliver the payload with one byte flipped in a compressed column
    /// (the checksum at install/decode time turns this into
    /// [`StoreError::Corrupted`]).
    Corrupt,
    /// Fail the read outright with the given error.
    Fail(StoreError),
}

/// Deterministic fault model: rates, mix and targets.
///
/// All decisions derive from `seed` and the `(chunk, attempt)` coordinates
/// via SplitMix64, so two runs with the same config see the same faults in
/// the same places.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that a read fails outright.
    pub fault_rate: f64,
    /// Fraction of outright failures that are [`StoreError::Permanent`]
    /// (the rest split between transient failures and timeouts).
    pub permanent_fraction: f64,
    /// Probability in `[0, 1]` that an otherwise-successful read returns a
    /// payload with a flipped byte in a compressed column.
    pub corruption_rate: f64,
    /// Probability in `[0, 1]` that a read incurs an extra latency spike.
    pub latency_spike_rate: f64,
    /// Duration of an injected latency spike (real sleep in the threaded
    /// executor; the sim front-end never calls the store).
    pub latency_spike: Duration,
    /// Chunk indices that *always* fail permanently, regardless of rates —
    /// the "one bad sector" scenario of the acceptance criteria.
    pub permanent_chunks: Vec<u32>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_F417,
            fault_rate: 0.0,
            permanent_fraction: 0.0,
            corruption_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::from_millis(1),
            permanent_chunks: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A config injecting only transient/timeout failures at `rate`.
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            fault_rate: rate,
            ..Self::default()
        }
    }

    /// A uniform roll in `[0, 1)` for decision lane `lane` of
    /// `(chunk, attempt)`.
    fn roll(&self, chunk: ChunkId, attempt: u64, lane: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add((chunk.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(lane.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The deterministic outcome of attempt `attempt` on `chunk`.
    pub fn outcome(&self, chunk: ChunkId, attempt: u64) -> FaultOutcome {
        if self.permanent_chunks.contains(&chunk.index()) {
            return FaultOutcome::Fail(StoreError::Permanent);
        }
        if self.roll(chunk, attempt, 0) < self.fault_rate {
            let kind = if self.roll(chunk, attempt, 1) < self.permanent_fraction {
                StoreError::Permanent
            } else if self.roll(chunk, attempt, 2) < 0.25 {
                StoreError::TimedOut
            } else {
                StoreError::Transient
            };
            return FaultOutcome::Fail(kind);
        }
        if self.roll(chunk, attempt, 3) < self.corruption_rate {
            return FaultOutcome::Corrupt;
        }
        FaultOutcome::Success
    }

    /// Whether attempt `attempt` on `chunk` incurs a latency spike.
    pub fn spikes(&self, chunk: ChunkId, attempt: u64) -> bool {
        self.latency_spike_rate > 0.0 && self.roll(chunk, attempt, 4) < self.latency_spike_rate
    }

    /// The byte/bit selector used when corrupting attempt `attempt` on
    /// `chunk` (exposed so tests can predict the damage).
    pub fn corruption_selector(&self, chunk: ChunkId, attempt: u64) -> u64 {
        let lo = (self.roll(chunk, attempt, 5) * (1u64 << 32) as f64) as u64;
        let hi = (self.roll(chunk, attempt, 6) * 8.0) as u64;
        lo | (hi << 32)
    }
}

/// A [`ChunkStore`] wrapper that injects the full [`StoreError`] taxonomy
/// deterministically, per [`FaultConfig`].
///
/// Attempt numbers advance per chunk across calls (a retry of chunk `c`
/// rolls fresh dice), which is what lets a bounded retry loop clear
/// transient faults with probability `1 - rateᴬ`.
pub struct FaultInjectingStore<S> {
    inner: S,
    config: FaultConfig,
    attempts: Mutex<HashMap<u32, u64>>,
    faults_injected: AtomicU64,
    corruptions_injected: AtomicU64,
    spikes_injected: AtomicU64,
    /// Observability mirror of the three injection counters; disabled (a
    /// no-op) unless installed via [`FaultInjectingStore::with_observability`].
    obs: Arc<cscan_obs::Registry>,
}

impl<S: ChunkStore> FaultInjectingStore<S> {
    /// Wraps `inner` under the given fault model.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            attempts: Mutex::new(HashMap::new()),
            faults_injected: AtomicU64::new(0),
            corruptions_injected: AtomicU64::new(0),
            spikes_injected: AtomicU64::new(0),
            obs: Arc::new(cscan_obs::Registry::disabled()),
        }
    }

    /// Mirrors the injection counters (`faults_injected`,
    /// `corruptions_injected`, `latency_spikes_injected`) into `obs`, so a
    /// chaos run's snapshot shows how much damage was *injected* alongside
    /// how much the engine *observed*.
    pub fn with_observability(mut self, obs: Arc<cscan_obs::Registry>) -> Self {
        self.obs = obs;
        self
    }

    /// The fault model in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total reads failed so far (transient + timeout + permanent).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Total payloads delivered with a flipped byte so far.
    pub fn corruptions_injected(&self) -> u64 {
        self.corruptions_injected.load(Ordering::Relaxed)
    }

    /// Total latency spikes slept so far.
    pub fn spikes_injected(&self) -> u64 {
        self.spikes_injected.load(Ordering::Relaxed)
    }

    /// The next attempt number for `chunk` (0-based), advancing the counter.
    fn next_attempt(&self, chunk: ChunkId) -> u64 {
        let mut attempts = self.attempts.lock().expect("attempt counter lock");
        let n = attempts.entry(chunk.index()).or_insert(0);
        let attempt = *n;
        *n += 1;
        attempt
    }

    /// Flips one byte in the first compressed column of `payload` (keeping
    /// the recorded checksum), or returns the payload untouched if nothing
    /// is compressed — plain columns carry no checksum, so corrupting them
    /// would be silent.
    fn corrupt_payload(&self, payload: ChunkPayload, selector: u64) -> (ChunkPayload, bool) {
        fn corrupt_first(parts: &mut [ColumnChunk], selector: u64) -> bool {
            for part in parts.iter_mut() {
                if let ColumnChunk::Compressed(lazy) = part {
                    let torn = lazy.encoded().with_flipped_byte(selector);
                    *part = ColumnChunk::Compressed(Arc::new(LazyColumn::new(torn)));
                    return true;
                }
            }
            false
        }
        match payload {
            ChunkPayload::Missing => (ChunkPayload::Missing, false),
            ChunkPayload::Nsm(data) => {
                let mut parts: Vec<ColumnChunk> = data.parts().to_vec();
                let hit = corrupt_first(&mut parts, selector);
                if hit {
                    (
                        ChunkPayload::Nsm(Arc::new(NsmChunkData::from_parts(parts))),
                        true,
                    )
                } else {
                    (ChunkPayload::Nsm(data), false)
                }
            }
            ChunkPayload::Dsm(data) => {
                let mut pairs: Vec<(ColumnId, ColumnChunk)> = data.parts().to_vec();
                let mut cols: Vec<ColumnChunk> = pairs.iter().map(|(_, c)| c.clone()).collect();
                let hit = corrupt_first(&mut cols, selector);
                if hit {
                    for (pair, col) in pairs.iter_mut().zip(cols) {
                        pair.1 = col;
                    }
                    (
                        ChunkPayload::Dsm(Arc::new(DsmChunkData::from_parts(pairs))),
                        true,
                    )
                } else {
                    (ChunkPayload::Dsm(data), false)
                }
            }
        }
    }
}

impl<S: ChunkStore> ChunkStore for FaultInjectingStore<S> {
    fn materialize(
        &self,
        chunk: ChunkId,
        cols: Option<&[ColumnId]>,
    ) -> Result<ChunkPayload, StoreError> {
        let attempt = self.next_attempt(chunk);
        if self.config.spikes(chunk, attempt) {
            self.spikes_injected.fetch_add(1, Ordering::Relaxed);
            self.obs.inc(cscan_obs::Counter::LatencySpikesInjected);
            std::thread::sleep(self.config.latency_spike);
        }
        match self.config.outcome(chunk, attempt) {
            FaultOutcome::Fail(e) => {
                self.faults_injected.fetch_add(1, Ordering::Relaxed);
                self.obs.inc(cscan_obs::Counter::FaultsInjected);
                Err(e)
            }
            FaultOutcome::Success => self.inner.materialize(chunk, cols),
            FaultOutcome::Corrupt => {
                let payload = self.inner.materialize(chunk, cols)?;
                let selector = self.config.corruption_selector(chunk, attempt);
                let (payload, hit) = self.corrupt_payload(payload, selector);
                if hit {
                    self.corruptions_injected.fetch_add(1, Ordering::Relaxed);
                    self.obs.inc(cscan_obs::Counter::CorruptionsInjected);
                }
                Ok(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkdata::{CompressingStore, SeededStore};
    use crate::compression::Compression;

    fn base() -> SeededStore {
        SeededStore::new(64, 2, 7)
    }

    #[test]
    fn zero_rates_are_transparent() {
        let store = FaultInjectingStore::new(base(), FaultConfig::default());
        for i in 0..8 {
            let chunk = ChunkId::new(i);
            let a = store
                .materialize(chunk, None)
                .expect("no faults configured");
            let b = base()
                .materialize(chunk, None)
                .expect("seeded store is infallible");
            assert_eq!(a, b);
        }
        assert_eq!(store.faults_injected(), 0);
        assert_eq!(store.corruptions_injected(), 0);
    }

    #[test]
    fn outcomes_are_deterministic_and_attempt_sensitive() {
        let cfg = FaultConfig {
            fault_rate: 0.5,
            corruption_rate: 0.2,
            ..FaultConfig::transient_only(99, 0.5)
        };
        let chunk = ChunkId::new(3);
        // Same coordinates, same outcome.
        assert_eq!(cfg.outcome(chunk, 0), cfg.outcome(chunk, 0));
        // Across many attempts, outcomes vary (some succeed, some fail).
        let outcomes: Vec<FaultOutcome> = (0..64).map(|a| cfg.outcome(chunk, a)).collect();
        assert!(outcomes.iter().any(|o| matches!(o, FaultOutcome::Fail(_))));
        assert!(outcomes.contains(&FaultOutcome::Success));
    }

    #[test]
    fn transient_only_config_never_rolls_permanent() {
        let cfg = FaultConfig::transient_only(12345, 0.9);
        for c in 0..16 {
            for a in 0..32 {
                if let FaultOutcome::Fail(e) = cfg.outcome(ChunkId::new(c), a) {
                    assert!(e.is_retryable(), "transient-only must stay retryable");
                }
            }
        }
    }

    #[test]
    fn permanent_chunk_always_fails() {
        let cfg = FaultConfig {
            permanent_chunks: vec![5],
            ..FaultConfig::default()
        };
        let store = FaultInjectingStore::new(base(), cfg);
        for _ in 0..4 {
            assert_eq!(
                store.materialize(ChunkId::new(5), None),
                Err(StoreError::Permanent)
            );
        }
        assert!(store.materialize(ChunkId::new(4), None).is_ok());
        assert_eq!(store.faults_injected(), 4);
    }

    #[test]
    fn retry_clears_transient_faults() {
        let cfg = FaultConfig::transient_only(42, 0.5);
        let store = FaultInjectingStore::new(base(), cfg);
        let chunk = ChunkId::new(0);
        // With a 50% rate, 32 attempts succeed with probability 1 - 2^-32.
        let mut ok = false;
        for _ in 0..32 {
            if store.materialize(chunk, None).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "attempt numbers must advance so retries reroll");
    }

    #[test]
    fn corruption_breaks_checksums_but_not_plain_payloads() {
        let cfg = FaultConfig {
            corruption_rate: 1.0,
            ..FaultConfig::default()
        };
        // Plain inner store: nothing compressed, so corruption cannot land.
        let plain = FaultInjectingStore::new(base(), cfg.clone());
        let p = plain
            .materialize(ChunkId::new(1), None)
            .expect("corruption is not a read failure");
        assert!(p.verify_checksums().is_ok());
        assert_eq!(plain.corruptions_injected(), 0);
        // Compressed inner store: the flip lands and verification fails.
        let schemes = vec![
            Compression::Pfor {
                bits: 21,
                exception_rate: 0.02,
            };
            2
        ];
        let compressed = FaultInjectingStore::new(CompressingStore::new(base(), schemes), cfg);
        let p = compressed
            .materialize(ChunkId::new(1), None)
            .expect("corruption is not a read failure");
        assert_eq!(p.verify_checksums(), Err(StoreError::Corrupted));
        assert_eq!(compressed.corruptions_injected(), 1);
    }

    #[test]
    fn store_error_wire_codes_round_trip() {
        for e in StoreError::ALL {
            assert_eq!(StoreError::from_wire_code(e.wire_code()), Some(e));
            assert!(
                e.wire_code() >= 1 && e.wire_code() <= 99,
                "store errors own 1-99"
            );
        }
        // Codes are pairwise distinct.
        let mut codes: Vec<u16> = StoreError::ALL.iter().map(|e| e.wire_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), StoreError::ALL.len());
        // Unknown codes decode to None rather than panicking.
        assert_eq!(StoreError::from_wire_code(0), None);
        assert_eq!(StoreError::from_wire_code(99), None);
    }

    #[test]
    fn store_error_display_and_retryability() {
        assert!(StoreError::Transient.is_retryable());
        assert!(StoreError::TimedOut.is_retryable());
        assert!(StoreError::Corrupted.is_retryable());
        assert!(!StoreError::Permanent.is_retryable());
        assert!(StoreError::Permanent.to_string().contains("permanent"));
    }
}
