//! Real segment files: the on-disk chunk format, its writer, and a
//! [`FileStore`] that serves [`ChunkPayload`]s from positioned reads.
//!
//! Everything the engine scanned before this module came from in-memory
//! generators or the simulated disk.  A *segment* is the persistent form of
//! one table under one layout (one file for the NSM geometry, one for the
//! DSM geometry — the format itself is layout-agnostic; the geometry lives
//! in the chunk/row shape the loader chose):
//!
//! ```text
//! offset 0         8                                  dir_offset
//! +--------+----------------------------------------+-----------+---------+
//! | magic  | extents, chunk-major:                  | directory | trailer |
//! |cscanseg| chunk0.col0 chunk0.col1 .. chunk1.col0 | (footer)  | (40 B)  |
//! +--------+----------------------------------------+-----------+---------+
//! ```
//!
//! * **Extents** — one per `(chunk, column)`, laid out chunk-major so a
//!   whole-chunk (NSM) read touches a contiguous byte range while a DSM
//!   projection reads only the requested columns' extents.  A column whose
//!   [`Compression`] scheme is `None` is stored as raw little-endian `i64`s;
//!   any other scheme stores the [`EncodedColumn`] byte stream verbatim
//!   (leading wire-codec tag included), so what travels from disk into the
//!   buffer pool is *still compressed* and [`CompressingStore`] semantics —
//!   decode on first pin, never under a hub or shard lock — hold end to end.
//! * **Directory (footer)** — per extent: byte offset, byte length, row
//!   count, [`checksum64`], and a codec id ([`CODEC_PLAIN`] or the encoded
//!   column's wire tag).  For encoded extents the recorded checksum is the
//!   *encode-time* checksum, so a byte damaged on disk fails
//!   [`ChunkPayload::verify_checksums`] at payload install exactly like a
//!   torn in-memory read; for plain extents [`FileStore`] verifies the
//!   checksum itself at read time.
//! * **Trailer** — directory offset/length/checksum, chunk and column
//!   counts, format version, and a closing magic.  A torn or truncated
//!   footer is detected here (wrong magic, impossible bounds, checksum
//!   mismatch) and the reader refuses to trust the segment at all.
//!
//! # Durability
//!
//! [`SegmentWriter`] writes to `<path>.tmp`, fsyncs the file, atomically
//! renames it over the final path, then fsyncs the parent directory.  A
//! load killed at any point leaves either the previous segment or a `.tmp`
//! orphan that no reader ever opens — never a half-written file the reader
//! would trust.
//!
//! # Fault taxonomy
//!
//! Read failures map honestly onto [`StoreError`] so the retry/quarantine
//! machinery upstream treats real disks like injected faults:
//!
//! | observation                                   | error                    |
//! |-----------------------------------------------|--------------------------|
//! | interrupted syscall                           | retried internally       |
//! | transient I/O error                           | [`StoreError::Transient`]|
//! | timed-out I/O                                 | [`StoreError::TimedOut`] |
//! | short read / checksum or codec mismatch       | [`StoreError::Corrupted`]|
//! | file gone, permission lost, bad chunk/column  | [`StoreError::Permanent`]|
//!
//! # I/O backend
//!
//! Reads go through the small [`SegmentIo`] trait (positioned
//! `read_exact_at`, pread-style).  The default backend is [`PreadFile`]
//! (`std::os::unix::fs::FileExt::read_at`); an io_uring-style batched
//! backend can slot in behind the same trait without touching the hub or
//! the I/O workers.  Every read records the `file_read` span plus the
//! `file_read_calls` / `file_bytes_read` counters on the attached
//! [`Registry`].
//!
//! [`CompressingStore`]: crate::chunkdata::CompressingStore

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use crate::chunkdata::{
    ChunkPayload, ChunkStore, ColumnChunk, DsmChunkData, LazyColumn, NsmChunkData,
};
use crate::codec::{checksum64, EncodedColumn};
use crate::compression::Compression;
use crate::fault::StoreError;
use crate::ids::{ChunkId, ColumnId};
use cscan_obs::{Counter, Registry, SpanKind};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening the file and closing the trailer.
pub const SEGMENT_MAGIC: [u8; 8] = *b"cscanseg";
/// On-disk format version this module reads and writes.
pub const SEGMENT_VERSION: u16 = 1;
/// Directory codec id of a plain (raw little-endian `i64`) extent; encoded
/// extents carry their [`EncodedColumn`] wire tag instead.
pub const CODEC_PLAIN: u8 = 0xFF;

/// Bytes of the leading magic.
const HEADER_LEN: u64 = 8;
/// Bytes of the fixed trailer: directory offset + length + checksum (3×8),
/// chunk count (4), column count (2), version (2), closing magic (8).
const TRAILER_LEN: u64 = 40;
/// Serialized bytes per directory entry: offset + length + rows + checksum
/// (4×8) and the codec id (1).
const EXTENT_ENTRY_LEN: u64 = 33;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Maps an I/O failure from a [`SegmentIo`] backend onto the store fault
/// taxonomy (see the module docs for the table).
fn map_io_error(e: &io::Error) -> StoreError {
    match e.kind() {
        io::ErrorKind::NotFound | io::ErrorKind::PermissionDenied => StoreError::Permanent,
        io::ErrorKind::UnexpectedEof => StoreError::Corrupted,
        io::ErrorKind::TimedOut => StoreError::TimedOut,
        _ => StoreError::Transient,
    }
}

// ----------------------------------------------------------------------
// Directory
// ----------------------------------------------------------------------

/// One `(chunk, column)` extent as recorded in the footer directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset of the extent within the segment file.
    pub offset: u64,
    /// Byte length of the extent.
    pub len: u64,
    /// Number of values stored in the extent.
    pub rows: u64,
    /// [`checksum64`] of the extent bytes (for encoded extents: the
    /// encode-time checksum the install-path verification recomputes).
    pub checksum: u64,
    /// [`CODEC_PLAIN`], or the encoded column's wire-codec tag.
    pub codec: u8,
}

impl Extent {
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.push(self.codec);
    }

    fn read_from(bytes: &[u8]) -> Extent {
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(b)
        };
        Extent {
            offset: u64_at(0),
            len: u64_at(8),
            rows: u64_at(16),
            checksum: u64_at(24),
            codec: bytes[32],
        }
    }
}

/// The parsed footer directory of a segment: everything the reader knows
/// about the file without touching the data extents.  Also the
/// metadata-faithful source for sim-side table models — chunk counts, row
/// counts and physical bytes here describe the *actual file*, so a
/// core-layer `TableModel` built from a directory schedules exactly the
/// geometry on disk.
#[derive(Debug, Clone)]
pub struct SegmentDirectory {
    num_columns: u16,
    /// Chunk-major: extent of `(chunk, col)` at `chunk × num_columns + col`.
    extents: Vec<Extent>,
}

impl SegmentDirectory {
    /// Number of chunks in the segment.
    pub fn num_chunks(&self) -> u32 {
        (self.extents.len() / self.num_columns as usize) as u32
    }

    /// Number of columns in the segment.
    pub fn num_columns(&self) -> u16 {
        self.num_columns
    }

    /// Rows of `chunk`, if it exists.
    pub fn chunk_rows(&self, chunk: ChunkId) -> Option<u64> {
        self.extent(chunk, ColumnId::new(0)).map(|e| e.rows)
    }

    /// Total rows across all chunks.
    pub fn total_rows(&self) -> u64 {
        (0..self.num_chunks())
            .filter_map(|c| self.chunk_rows(ChunkId::new(c)))
            .sum()
    }

    /// The extent of `(chunk, col)`, if both exist.
    pub fn extent(&self, chunk: ChunkId, col: ColumnId) -> Option<&Extent> {
        if col.index() >= self.num_columns {
            return None;
        }
        self.extents
            .get(chunk.as_usize() * self.num_columns as usize + col.as_usize())
    }

    /// Physical on-disk bytes of the given columns of `chunk` (`None` =
    /// every column) — the I/O volume a materialization of that selection
    /// costs.
    pub fn chunk_bytes(&self, chunk: ChunkId, cols: Option<&[ColumnId]>) -> u64 {
        match cols {
            None => (0..self.num_columns)
                .filter_map(|c| self.extent(chunk, ColumnId::new(c)))
                .map(|e| e.len)
                .sum(),
            Some(cols) => cols
                .iter()
                .filter_map(|&c| self.extent(chunk, c))
                .map(|e| e.len)
                .sum(),
        }
    }

    /// Physical bytes of all data extents (the file minus header, footer
    /// and trailer).
    pub fn data_bytes(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }
}

// ----------------------------------------------------------------------
// SegmentIo: the positioned-read backend
// ----------------------------------------------------------------------

/// A positioned-read backend for segment files.
///
/// The contract is pread-style: `read_exact_at` fills the whole buffer from
/// the given byte offset without moving any shared cursor, so concurrent
/// I/O workers can read disjoint extents of one file without coordination.
/// Implementations retry `EINTR` internally and report a read past the end
/// of the file as [`io::ErrorKind::UnexpectedEof`] (a *short read*, mapped
/// to [`StoreError::Corrupted`] by the store).
///
/// [`FileStore`] holds the backend as a trait object, so an io_uring-style
/// batched implementation can replace [`PreadFile`] without touching the
/// hub, the I/O workers, or the format.
// `len` is a fallible file-size accessor, not a collection length, so an
// `is_empty` counterpart would be meaningless here.
#[allow(clippy::len_without_is_empty)]
pub trait SegmentIo: Send + Sync + std::fmt::Debug {
    /// Fills `buf` from byte `offset` of the segment.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;

    /// Current length of the segment in bytes.
    fn len(&self) -> io::Result<u64>;
}

/// The default [`SegmentIo`]: one shared read-only file descriptor issuing
/// `pread`-style positioned reads (`std::os::unix::fs::FileExt::read_at`),
/// so no seek state is shared between I/O workers.
#[derive(Debug)]
pub struct PreadFile {
    #[cfg(unix)]
    file: File,
    /// Non-Unix fallback: positioned reads emulated with seek+read under a
    /// lock (correct, not concurrent).
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl PreadFile {
    /// Opens `path` read-only.
    pub fn open(path: &Path) -> io::Result<PreadFile> {
        let file = File::open(path)?;
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        Ok(PreadFile { file })
    }
}

impl SegmentIo for PreadFile {
    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        let mut filled = 0usize;
        while filled < buf.len() {
            match self
                .file
                .read_at(&mut buf[filled..], offset + filled as u64)
            {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short read past end of segment",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self
            .file
            .lock()
            .map_err(|_| io::Error::new(io::ErrorKind::Other, "poisoned segment file lock"))?;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }

    fn len(&self) -> io::Result<u64> {
        #[cfg(unix)]
        return Ok(self.file.metadata()?.len());
        #[cfg(not(unix))]
        {
            let file = self
                .file
                .lock()
                .map_err(|_| io::Error::new(io::ErrorKind::Other, "poisoned segment file lock"))?;
            Ok(file.metadata()?.len())
        }
    }
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

/// What [`SegmentWriter::finish`] reports about the segment it durably
/// installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Final path of the segment.
    pub path: PathBuf,
    /// Chunks written.
    pub chunks: u32,
    /// Columns per chunk.
    pub columns: u16,
    /// Rows across all chunks.
    pub rows: u64,
    /// Bytes of data extents (compressed where a scheme applied).
    pub data_bytes: u64,
    /// Total file size including header, directory and trailer.
    pub file_bytes: u64,
}

/// Streaming segment writer: append chunks column by column, then
/// [`finish`](SegmentWriter::finish) to write the footer and atomically
/// install the file.
///
/// The writer targets `<path>.tmp` until `finish` fsyncs and renames it, so
/// an interrupted load never leaves a partial file under the final name —
/// see the module docs for the durability story.  Dropping the writer
/// without finishing leaves the `.tmp` orphan behind (readers never open
/// it); rerunning the load simply overwrites it.
#[derive(Debug)]
pub struct SegmentWriter {
    final_path: PathBuf,
    tmp_path: PathBuf,
    file: BufWriter<File>,
    /// Per-column schemes; the list's length is the table width.
    schemes: Vec<Compression>,
    /// Next free byte offset in the file.
    offset: u64,
    extents: Vec<Extent>,
    chunks: u32,
    rows: u64,
}

impl SegmentWriter {
    /// Creates `<path>.tmp` and writes the header.  `schemes` fixes the
    /// column count and the per-column on-disk encoding
    /// ([`Compression::None`] = raw little-endian `i64`s).
    pub fn create(
        path: impl Into<PathBuf>,
        schemes: Vec<Compression>,
    ) -> io::Result<SegmentWriter> {
        let final_path = path.into();
        if schemes.is_empty() {
            return Err(invalid("a segment needs at least one column"));
        }
        if schemes.len() > u16::MAX as usize {
            return Err(invalid("too many columns for the segment format"));
        }
        let mut tmp = final_path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp_path = PathBuf::from(tmp);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        file.write_all(&SEGMENT_MAGIC)?;
        Ok(SegmentWriter {
            final_path,
            tmp_path,
            file,
            schemes,
            offset: HEADER_LEN,
            extents: Vec::new(),
            chunks: 0,
            rows: 0,
        })
    }

    /// Appends one chunk: one value slice per column, in column-id order.
    /// All columns of a chunk must have the same non-zero length; different
    /// chunks may differ (a short last chunk is fine).
    pub fn append_chunk(&mut self, columns: &[&[i64]]) -> io::Result<()> {
        if columns.len() != self.schemes.len() {
            return Err(invalid(format!(
                "chunk has {} columns, segment expects {}",
                columns.len(),
                self.schemes.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if rows == 0 {
            return Err(invalid("empty chunk"));
        }
        if columns.iter().any(|c| c.len() != rows) {
            return Err(invalid("ragged chunk: column lengths differ"));
        }
        for (values, &scheme) in columns.iter().zip(&self.schemes) {
            let (len, checksum, codec) = match scheme {
                Compression::None => {
                    let mut bytes = Vec::with_capacity(values.len() * 8);
                    for &v in *values {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                    let checksum = checksum64(&bytes);
                    self.file.write_all(&bytes)?;
                    (bytes.len() as u64, checksum, CODEC_PLAIN)
                }
                _ => {
                    let enc = EncodedColumn::encode(values, scheme);
                    self.file.write_all(enc.as_bytes())?;
                    (enc.as_bytes().len() as u64, enc.checksum(), enc.wire_tag())
                }
            };
            self.extents.push(Extent {
                offset: self.offset,
                len,
                rows: rows as u64,
                checksum,
                codec,
            });
            self.offset += len;
        }
        self.chunks += 1;
        self.rows += rows as u64;
        Ok(())
    }

    /// Writes directory and trailer, fsyncs, renames `<path>.tmp` over the
    /// final path, and fsyncs the parent directory.  Only after this
    /// returns is the segment visible to readers.
    pub fn finish(self) -> io::Result<SegmentSummary> {
        let SegmentWriter {
            final_path,
            tmp_path,
            mut file,
            schemes,
            offset,
            extents,
            chunks,
            rows,
        } = self;
        if chunks == 0 {
            return Err(invalid("refusing to finish an empty segment"));
        }
        let mut dir = Vec::with_capacity(extents.len() * EXTENT_ENTRY_LEN as usize);
        for e in &extents {
            e.write_to(&mut dir);
        }
        file.write_all(&dir)?;
        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        trailer.extend_from_slice(&offset.to_le_bytes());
        trailer.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        trailer.extend_from_slice(&checksum64(&dir).to_le_bytes());
        trailer.extend_from_slice(&chunks.to_le_bytes());
        trailer.extend_from_slice(&(schemes.len() as u16).to_le_bytes());
        trailer.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        trailer.extend_from_slice(&SEGMENT_MAGIC);
        file.write_all(&trailer)?;
        file.flush()?;
        let file = file.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp_path, &final_path)?;
        if let Some(parent) = final_path.parent() {
            if !parent.as_os_str().is_empty() {
                File::open(parent)?.sync_all()?;
            }
        }
        Ok(SegmentSummary {
            path: final_path,
            chunks,
            columns: schemes.len() as u16,
            rows,
            data_bytes: offset - HEADER_LEN,
            file_bytes: offset + dir.len() as u64 + TRAILER_LEN,
        })
    }
}

// ----------------------------------------------------------------------
// Reader
// ----------------------------------------------------------------------

/// Reads and validates the footer through a [`SegmentIo`] backend.
///
/// Any inconsistency — wrong magic, unsupported version, impossible
/// bounds, directory checksum mismatch, ragged row counts — makes the
/// whole segment untrusted ([`io::ErrorKind::InvalidData`]): a torn footer
/// must never yield a directory that *mostly* works.
pub fn read_directory(io: &dyn SegmentIo) -> io::Result<SegmentDirectory> {
    let len = io.len()?;
    if len < HEADER_LEN + TRAILER_LEN {
        return Err(invalid("truncated segment: shorter than header + trailer"));
    }
    let mut header = [0u8; HEADER_LEN as usize];
    io.read_exact_at(&mut header, 0)?;
    if header != SEGMENT_MAGIC {
        return Err(invalid("not a segment file (bad leading magic)"));
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    io.read_exact_at(&mut trailer, len - TRAILER_LEN)?;
    let u64_at = |i: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&trailer[i..i + 8]);
        u64::from_le_bytes(b)
    };
    let dir_offset = u64_at(0);
    let dir_len = u64_at(8);
    let dir_checksum = u64_at(16);
    let num_chunks = u32::from_le_bytes([trailer[24], trailer[25], trailer[26], trailer[27]]);
    let num_columns = u16::from_le_bytes([trailer[28], trailer[29]]);
    let version = u16::from_le_bytes([trailer[30], trailer[31]]);
    if trailer[32..] != SEGMENT_MAGIC {
        return Err(invalid("torn footer: bad trailing magic"));
    }
    if version != SEGMENT_VERSION {
        return Err(invalid(format!("unsupported segment version {version}")));
    }
    if num_chunks == 0 || num_columns == 0 {
        return Err(invalid("torn footer: empty geometry"));
    }
    if dir_offset < HEADER_LEN
        || dir_offset.checked_add(dir_len) != Some(len - TRAILER_LEN)
        || dir_len != num_chunks as u64 * num_columns as u64 * EXTENT_ENTRY_LEN
    {
        return Err(invalid("torn footer: directory bounds are inconsistent"));
    }
    let mut dir = vec![0u8; dir_len as usize];
    io.read_exact_at(&mut dir, dir_offset)?;
    if checksum64(&dir) != dir_checksum {
        return Err(invalid("torn footer: directory checksum mismatch"));
    }
    let extents: Vec<Extent> = dir
        .chunks_exact(EXTENT_ENTRY_LEN as usize)
        .map(Extent::read_from)
        .collect();
    for (i, e) in extents.iter().enumerate() {
        if e.offset < HEADER_LEN
            || e.offset
                .checked_add(e.len)
                .is_none_or(|end| end > dir_offset)
        {
            return Err(invalid(format!("extent {i} lies outside the data area")));
        }
        if e.rows == 0 {
            return Err(invalid(format!("extent {i} is empty")));
        }
        // Every column of one chunk must agree on the row count.
        if i % num_columns as usize != 0 && e.rows != extents[i - 1].rows {
            return Err(invalid(format!("extent {i} disagrees on chunk row count")));
        }
    }
    Ok(SegmentDirectory {
        num_columns,
        extents,
    })
}

/// A [`ChunkStore`] serving chunks from a real segment file.
///
/// The directory is read and validated once at open; every `materialize`
/// then issues one positioned read per requested extent — `cols: None`
/// returns the full NSM chunk (all columns), `cols: Some(subset)` reads
/// *only* the requested columns' extents and returns a DSM payload.
/// Encoded extents come back as lazily-decoding [`ColumnChunk::Compressed`]
/// mini-columns carrying the footer's encode-time checksum, so the
/// install-time [`ChunkPayload::verify_checksums`] (and the retry machinery
/// behind it) covers the disk path with no special cases.
#[derive(Debug)]
pub struct FileStore {
    io: Arc<dyn SegmentIo>,
    directory: SegmentDirectory,
    obs: Arc<Registry>,
}

impl FileStore {
    /// Opens the segment at `path` with the default pread backend.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileStore> {
        Self::from_io(Arc::new(PreadFile::open(path.as_ref())?))
    }

    /// Opens a segment through a custom [`SegmentIo`] backend.
    pub fn from_io(io: Arc<dyn SegmentIo>) -> io::Result<FileStore> {
        let directory = read_directory(io.as_ref())?;
        Ok(FileStore {
            io,
            directory,
            obs: Arc::new(Registry::disabled()),
        })
    }

    /// Attaches a metrics registry; reads then record the `file_read` span
    /// and the `file_read_calls` / `file_bytes_read` counters.
    pub fn with_observability(mut self, obs: Arc<Registry>) -> Self {
        self.obs = obs;
        self
    }

    /// The validated footer directory.
    pub fn directory(&self) -> &SegmentDirectory {
        &self.directory
    }

    /// Number of chunks in the segment.
    pub fn num_chunks(&self) -> u32 {
        self.directory.num_chunks()
    }

    /// Number of columns in the segment.
    pub fn num_columns(&self) -> u16 {
        self.directory.num_columns()
    }

    /// Rows of `chunk`, if it exists.
    pub fn chunk_rows(&self, chunk: ChunkId) -> Option<u64> {
        self.directory.chunk_rows(chunk)
    }

    /// One positioned, instrumented extent read.  The span and the call
    /// counter record regardless of outcome (so `file_read_calls` always
    /// equals the span histogram's count); only delivered bytes land in
    /// `file_bytes_read`.
    fn read_extent(&self, e: &Extent) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; e.len as usize];
        let result = {
            let _t = self.obs.time(SpanKind::FileRead);
            self.io.read_exact_at(&mut buf, e.offset)
        };
        self.obs.inc(Counter::FileReadCalls);
        match result {
            Ok(()) => {
                self.obs.add(Counter::FileBytesRead, e.len);
                Ok(buf)
            }
            Err(err) => Err(map_io_error(&err)),
        }
    }

    /// Rebuilds one mini-column from its extent bytes.
    fn column_chunk(&self, e: &Extent, bytes: Vec<u8>) -> Result<ColumnChunk, StoreError> {
        if e.codec == CODEC_PLAIN {
            // Plain columns carry no checksum once in memory, so the store
            // is their verification point.
            if bytes.len() as u64 != e.rows.saturating_mul(8) || checksum64(&bytes) != e.checksum {
                return Err(StoreError::Corrupted);
            }
            let values: Vec<i64> = bytes
                .chunks_exact(8)
                .map(|b| {
                    let mut w = [0u8; 8];
                    w.copy_from_slice(b);
                    i64::from_le_bytes(w)
                })
                .collect();
            Ok(ColumnChunk::Plain(Arc::new(values)))
        } else {
            // Encoded columns keep the footer's encode-time checksum; a
            // damaged byte surfaces at install-time verification, exactly
            // like a torn in-memory read.
            if bytes.first() != Some(&e.codec) {
                return Err(StoreError::Corrupted);
            }
            let enc = EncodedColumn::from_parts(e.rows as usize, bytes, e.checksum)
                .ok_or(StoreError::Corrupted)?;
            Ok(ColumnChunk::Compressed(Arc::new(LazyColumn::new(enc))))
        }
    }

    /// Reads and rebuilds one column of one chunk.
    fn load_column(&self, chunk: ChunkId, col: ColumnId) -> Result<ColumnChunk, StoreError> {
        let e = *self
            .directory
            .extent(chunk, col)
            .ok_or(StoreError::Permanent)?;
        let bytes = self.read_extent(&e)?;
        self.column_chunk(&e, bytes)
    }
}

impl ChunkStore for FileStore {
    fn materialize(
        &self,
        chunk: ChunkId,
        cols: Option<&[ColumnId]>,
    ) -> Result<ChunkPayload, StoreError> {
        if chunk.index() >= self.directory.num_chunks() {
            return Err(StoreError::Permanent);
        }
        Ok(match cols {
            None => {
                let parts = (0..self.directory.num_columns())
                    .map(|c| self.load_column(chunk, ColumnId::new(c)))
                    .collect::<Result<Vec<_>, _>>()?;
                ChunkPayload::Nsm(Arc::new(NsmChunkData::from_parts(parts)))
            }
            Some(cols) => {
                let parts = cols
                    .iter()
                    .map(|&c| Ok((c, self.load_column(chunk, c)?)))
                    .collect::<Result<Vec<_>, StoreError>>()?;
                ChunkPayload::Dsm(Arc::new(DsmChunkData::from_parts(parts)))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per test invocation (no tempfile dependency).
    fn tmp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "cscan_seg_{tag}_{}_{}.seg",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Deterministic test table: 3 columns (plain, dict-friendly, delta-
    /// friendly), `chunks` chunks of `rows` rows.
    fn column_values(chunk: u32, col: u16, rows: usize) -> Vec<i64> {
        (0..rows as i64)
            .map(|r| match col {
                0 => chunk as i64 * 1_000_000 + r * 17 - 5,
                1 => (r + chunk as i64) % 6,
                _ => chunk as i64 * rows as i64 + r,
            })
            .collect()
    }

    fn schemes() -> Vec<Compression> {
        vec![
            Compression::None,
            Compression::Dictionary { bits: 3 },
            Compression::PforDelta {
                bits: 3,
                exception_rate: 0.02,
            },
        ]
    }

    fn write_segment(path: &Path, chunks: u32, rows: usize, schemes: Vec<Compression>) {
        let width = schemes.len() as u16;
        let mut w = SegmentWriter::create(path, schemes).unwrap();
        for chunk in 0..chunks {
            let cols: Vec<Vec<i64>> = (0..width).map(|c| column_values(chunk, c, rows)).collect();
            let refs: Vec<&[i64]> = cols.iter().map(|c| c.as_slice()).collect();
            w.append_chunk(&refs).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn round_trips_nsm_and_dsm_projections() {
        let path = tmp_path("roundtrip");
        write_segment(&path, 4, 500, schemes());
        let obs = Arc::new(Registry::new());
        let store = FileStore::open(&path)
            .unwrap()
            .with_observability(Arc::clone(&obs));
        assert_eq!(store.num_chunks(), 4);
        assert_eq!(store.num_columns(), 3);
        assert_eq!(store.chunk_rows(ChunkId::new(2)), Some(500));

        // Full NSM materialization: all columns, values bit-identical.
        let full = store.materialize(ChunkId::new(1), None).unwrap();
        full.verify_checksums().unwrap();
        for col in 0..3u16 {
            assert_eq!(
                full.column(ColumnId::new(col)).unwrap(),
                column_values(1, col, 500).as_slice()
            );
        }
        let full_bytes = obs.counter(Counter::FileBytesRead);

        // DSM projection: only the requested columns' extents are read.
        let subset = [ColumnId::new(2)];
        let proj = store.materialize(ChunkId::new(1), Some(&subset)).unwrap();
        proj.verify_checksums().unwrap();
        assert_eq!(
            proj.column(ColumnId::new(2)).unwrap(),
            column_values(1, 2, 500).as_slice()
        );
        assert!(proj.column(ColumnId::new(0)).is_none());
        let proj_bytes = obs.counter(Counter::FileBytesRead) - full_bytes;
        assert_eq!(
            proj_bytes,
            store
                .directory()
                .chunk_bytes(ChunkId::new(1), Some(&subset)),
            "a projection reads exactly its columns' extents"
        );
        assert!(proj_bytes < full_bytes, "subset read costs less I/O");

        // The file-I/O metrics are internally consistent.
        let snap = obs.snapshot();
        assert_eq!(snap.counter("file_read_calls"), 4);
        assert_eq!(snap.span("file_read").count(), 4);
        assert!(snap.is_consistent());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compressed_segment_is_smaller_and_stays_encoded_until_pinned() {
        let plain_path = tmp_path("vol_plain");
        let comp_path = tmp_path("vol_comp");
        write_segment(&plain_path, 4, 1000, vec![Compression::None; 3]);
        write_segment(&comp_path, 4, 1000, schemes());
        let plain = FileStore::open(&plain_path).unwrap();
        let comp = FileStore::open(&comp_path).unwrap();
        assert!(
            comp.directory().data_bytes() * 2 < plain.directory().data_bytes(),
            "the mixed schemes must at least halve the on-disk volume"
        );
        let payload = comp.materialize(ChunkId::new(0), None).unwrap();
        assert!(
            !payload.is_fully_decoded(),
            "encoded extents must travel compressed, decoding only on pin"
        );
        assert_eq!(payload.decode_all(), 2 * 1000, "two encoded columns decode");
        std::fs::remove_file(&plain_path).unwrap();
        std::fs::remove_file(&comp_path).unwrap();
    }

    #[test]
    fn plain_on_disk_bit_flip_is_corrupted_at_read() {
        let path = tmp_path("flip_plain");
        write_segment(&path, 2, 100, vec![Compression::None; 3]);
        // Flip one byte inside the first data extent (plain column 0).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize + 11] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = FileStore::open(&path).unwrap();
        assert_eq!(
            store.materialize(ChunkId::new(0), None).unwrap_err(),
            StoreError::Corrupted
        );
        // The other chunk is untouched and still reads fine.
        store.materialize(ChunkId::new(1), None).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn encoded_on_disk_bit_flip_fails_install_time_verification() {
        let path = tmp_path("flip_enc");
        write_segment(&path, 1, 400, schemes());
        let clean = FileStore::open(&path).unwrap();
        let dict = *clean
            .directory()
            .extent(ChunkId::new(0), ColumnId::new(1))
            .unwrap();
        // Flip a byte in the middle of the encoded dictionary extent
        // (past the wire tag, so the structure still parses).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(dict.offset + dict.len / 2) as usize] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let store = FileStore::open(&path).unwrap();
        // The store itself returns the payload (encoded columns are not
        // verified at read time) ...
        let payload = store.materialize(ChunkId::new(0), None).unwrap();
        // ... and the install-time verification the I/O worker runs
        // catches the damage before any consumer sees it.
        assert_eq!(
            payload.verify_checksums().unwrap_err(),
            StoreError::Corrupted
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_footer_refuses_to_open() {
        let path = tmp_path("torn");
        write_segment(&path, 2, 50, schemes());
        let good = std::fs::read(&path).unwrap();

        // Damage a directory byte: checksum mismatch.
        let mut torn = good.clone();
        let dir_byte = torn.len() - TRAILER_LEN as usize - 5;
        torn[dir_byte] ^= 0x01;
        std::fs::write(&path, &torn).unwrap();
        assert!(FileStore::open(&path).is_err(), "torn directory must fail");

        // Truncate mid-file: bounds cannot reconcile.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(FileStore::open(&path).is_err(), "truncated file must fail");

        // Damage the trailing magic.
        let mut bad_magic = good.clone();
        let last = bad_magic.len() - 1;
        bad_magic[last] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(FileStore::open(&path).is_err(), "bad magic must fail");

        // And the pristine bytes still open.
        std::fs::write(&path, &good).unwrap();
        FileStore::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_writer_leaves_only_a_tmp_orphan() {
        let path = tmp_path("atomic");
        {
            let mut w = SegmentWriter::create(&path, schemes()).unwrap();
            let cols: Vec<Vec<i64>> = (0..3).map(|c| column_values(0, c, 64)).collect();
            let refs: Vec<&[i64]> = cols.iter().map(|c| c.as_slice()).collect();
            w.append_chunk(&refs).unwrap();
            // Dropped without finish(): the crash-mid-load case.
        }
        assert!(!path.exists(), "no torn segment under the final name");
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        assert!(tmp.exists(), "the orphan stays under the tmp name");
        assert!(
            FileStore::open(&tmp).is_err(),
            "even opening the orphan directly finds no valid footer"
        );
        std::fs::remove_file(&tmp).unwrap();
    }

    #[test]
    fn writer_rejects_degenerate_chunks() {
        let path = tmp_path("degenerate");
        assert!(SegmentWriter::create(&path, vec![]).is_err());
        let mut w = SegmentWriter::create(&path, schemes()).unwrap();
        assert!(w.append_chunk(&[]).is_err(), "wrong column count");
        assert!(
            w.append_chunk(&[&[][..], &[][..], &[][..]]).is_err(),
            "empty chunk"
        );
        assert!(
            w.append_chunk(&[&[1][..], &[1, 2][..], &[1][..]]).is_err(),
            "ragged chunk"
        );
        assert!(w.finish().is_err(), "empty segment cannot finish");
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn bad_chunk_and_column_requests_are_permanent() {
        let path = tmp_path("bounds");
        write_segment(&path, 2, 10, schemes());
        let store = FileStore::open(&path).unwrap();
        assert_eq!(
            store.materialize(ChunkId::new(2), None).unwrap_err(),
            StoreError::Permanent
        );
        assert_eq!(
            store
                .materialize(ChunkId::new(0), Some(&[ColumnId::new(9)]))
                .unwrap_err(),
            StoreError::Permanent
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// A [`SegmentIo`] decorator that fails reads overlapping a byte range.
    #[derive(Debug)]
    struct FailingIo {
        inner: PreadFile,
        fail_from: u64,
        fail_len: u64,
        kind: io::ErrorKind,
    }

    impl SegmentIo for FailingIo {
        fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
            let end = offset + buf.len() as u64;
            if offset < self.fail_from + self.fail_len && end > self.fail_from {
                return Err(io::Error::new(self.kind, "injected backend failure"));
            }
            self.inner.read_exact_at(buf, offset)
        }

        fn len(&self) -> io::Result<u64> {
            self.inner.len()
        }
    }

    #[test]
    fn backend_errors_map_onto_the_fault_taxonomy() {
        let path = tmp_path("iomap");
        write_segment(&path, 1, 20, schemes());
        let clean = FileStore::open(&path).unwrap();
        let e0 = *clean
            .directory()
            .extent(ChunkId::new(0), ColumnId::new(0))
            .unwrap();
        for (kind, want) in [
            (io::ErrorKind::TimedOut, StoreError::TimedOut),
            (io::ErrorKind::UnexpectedEof, StoreError::Corrupted),
            (io::ErrorKind::NotFound, StoreError::Permanent),
            (io::ErrorKind::BrokenPipe, StoreError::Transient),
        ] {
            let io = Arc::new(FailingIo {
                inner: PreadFile::open(&path).unwrap(),
                fail_from: e0.offset,
                fail_len: e0.len,
                kind,
            });
            let store = FileStore::from_io(io).unwrap();
            assert_eq!(store.materialize(ChunkId::new(0), None).unwrap_err(), want);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
