//! The shared log2 histogram.
//!
//! One histogram implementation serves every distribution the engine
//! tracks — lock hold times, pin-wait times, span durations, time to first
//! chunk, queue depths — replacing the three hand-rolled variants that grew
//! in `threaded.rs`, the queue-depth trace and the bench reports.  Buckets
//! are powers of two ([`Log2Histogram`] bucket `i` counts values in
//! `[2^i, 2^{i+1})`, with 0 folded into bucket 0), recording is a single
//! relaxed `fetch_add`, and quantile queries answer with the containing
//! bucket's upper bound — an at-most-2× overestimate, which the crate's
//! brute-twin tests pin down against exact sorted-vector percentiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` covers `[2^i, 2^{i+1})`, so
/// 64 buckets cover the full `u64` range and nothing ever saturates.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free power-of-two histogram of `u64` samples.
///
/// Recording is wait-free (one relaxed `fetch_add` on the sample's bucket,
/// one on the running sum) and performs no heap allocation, so it is cheap
/// enough for the zero-alloc consume path.  Read sides copy the buckets out
/// into a [`HistogramSnapshot`] for quantile queries.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded sample (for means).
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in (`floor(log2(max(value, 1)))`).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        63 - (value | 1).leading_zeros() as usize
    }

    /// Records one sample.  Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket and the running sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Atomically takes the bucket counts and sum, leaving the histogram
    /// empty.  Unlike [`Log2Histogram::snapshot`] followed by
    /// [`Log2Histogram::reset`], a concurrent [`Log2Histogram::record`]
    /// lands in exactly one window — either this drain's snapshot or the
    /// next — never in both and never in neither.
    pub fn drain(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.swap(0, Ordering::Relaxed))
                .collect(),
            sum: self.sum.swap(0, Ordering::Relaxed),
        }
    }
}

/// A copied-out [`Log2Histogram`]: bucket `i` counts samples in
/// `[2^i, 2^{i+1})` (0 folds into bucket 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (all buckets zero).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// The per-bucket counts (bucket `i` covers `[2^i, 2^{i+1})`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of every recorded sample.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample (`q` in
    /// `[0, 1]`); 0 when nothing was recorded.  The true quantile lies in
    /// `(upper/2, upper]`, so the answer overestimates by at most 2×.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median bucket upper bound ([`HistogramSnapshot::quantile_upper`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile_upper(0.5)
    }

    /// 99th-percentile bucket upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile_upper(0.99)
    }

    /// Upper bound of the highest non-empty bucket; 0 when empty.
    pub fn max_value(&self) -> u64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => upper_bound(i),
            None => 0,
        }
    }

    /// Adds another snapshot's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The exclusive upper bound of bucket `i`, saturating at `u64::MAX` for
/// the last bucket.
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact quantile of a sorted sample set (nearest-rank method, the
    /// same rank arithmetic the histogram uses).
    fn brute_quantile(sorted: &[u64], q: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 0);
        assert_eq!(Log2Histogram::bucket_of(2), 1);
        assert_eq!(Log2Histogram::bucket_of(3), 1);
        assert_eq!(Log2Histogram::bucket_of(4), 2);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_the_brute_twin() {
        // Deterministic pseudo-random samples spanning many magnitudes.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut samples = Vec::new();
        let h = Log2Histogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Spread over ~13 orders of magnitude, capped below 2^44 so a
            // 10k-sample sum stays far from u64 overflow.
            let v = (x >> 20) >> (x % 40);
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = brute_quantile(&samples, q);
            let approx = snap.quantile_upper(q);
            assert!(
                approx >= exact,
                "q={q}: bucket upper bound {approx} below exact {exact}"
            );
            // The bound is the containing bucket's upper edge: less than 2x
            // the exact value (values >= 1; 0 maps to bucket 0, bound 2).
            assert!(
                approx <= exact.saturating_mul(2).max(2),
                "q={q}: bucket upper bound {approx} too loose for exact {exact}"
            );
        }
        assert!(snap.max_value() >= *samples.last().unwrap());
        assert_eq!(snap.sum(), samples.iter().sum::<u64>());
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((snap.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let h = Log2Histogram::new();
        for v in [1u64, 5, 9, 100, 4096, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p99());
        assert!(s.p99() <= s.max_value());
        assert_eq!(s.quantile_upper(0.0), s.quantile_upper(0.001));
    }

    #[test]
    fn empty_reset_and_merge() {
        let h = Log2Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max_value(), 0);
        assert_eq!(s.mean(), 0.0);

        h.record(7);
        assert_eq!(h.snapshot().count(), 1);
        h.reset();
        assert!(h.snapshot().is_empty());

        let a = Log2Histogram::new();
        let b = Log2Histogram::new();
        a.record(3);
        b.record(300);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 303);
        assert!(merged.max_value() >= 300);
    }
}
