//! The metrics registry: counters, gauges, span histograms and per-query
//! scopes behind one shared handle.
//!
//! A [`Registry`] is created per engine instance (one per `ScanServer` by
//! default; benches share one across sweep points and call
//! [`Registry::snapshot_and_reset`] between them).  All write paths are
//! lock-free relaxed atomics — cheap enough for the zero-alloc consume path
//! — except query attach/detach, which takes a short mutex on the scope
//! table (an inherently control-plane event).
//!
//! # Label dimensions
//!
//! Global metrics are plain enum-indexed atomics.  The *query* dimension is
//! a [`QueryScope`] per attached scan: the scope carries its own counter
//! array plus pin-wait and time-to-first-chunk measurements, and every
//! scope-side increment also lands in a shared per-registry total, so a
//! [`MetricsSnapshot`](crate::MetricsSnapshot) can verify that the sum of
//! per-query counters equals the global counter (the registry's internal
//! consistency invariant, asserted under attach/detach storms by the stress
//! tests).  The *table* dimension is derived at snapshot time by grouping
//! scopes by their table label, so it adds no write-path cost.
//!
//! Label cardinality is bounded by construction: the only labels are the
//! query label (bounded by concurrently attached scans plus detached scans
//! retained until the next reset) and the table name.  Free-form label maps
//! are deliberately not offered.

use crate::hist::Log2Histogram;
use crate::recorder::{EventKind, FlightEvent, FlightRecorder};
use crate::snapshot::{MetricsSnapshot, QuerySnapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Global monotonically increasing counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Chunk loads committed and installed.
    LoadsCompleted,
    /// Loads cancelled mid-flight (last interested query detached).
    LoadsCancelled,
    /// Read failures observed by the I/O path (before retry).
    LoadFaults,
    /// Failed reads that were retried (a subset of `LoadFaults`).
    LoadRetries,
    /// Payloads rejected by checksum verification.
    ChecksumFailures,
    /// Panics caught unwinding out of payload work.
    WorkerPanics,
    /// Chunks moved into quarantine.
    ChunksQuarantined,
    /// Queries closed with a scan error.
    QueriesErred,
    /// Column values decompressed by first-pin decodes.
    ValuesDecoded,
    /// Nanoseconds spent in first-pin payload decodes.
    DecodeNanos,
    /// Pins dropped without an explicit `complete()`.
    UnconsumedDrops,
    /// Frame-pool pin operations.
    FramePins,
    /// Frame-pool unpin operations.
    FrameUnpins,
    /// Frame-pool evictions.
    FrameEvictions,
    /// Frame-pool fetches satisfied from a resident frame.
    FrameHits,
    /// Frame-pool fetches that required a load.
    FrameMisses,
    /// Loads issued by the async I/O scheduler.
    IoLoadsIssued,
    /// Scheduling bursts run by the async I/O scheduler.
    IoBursts,
    /// Faults injected by a fault-injecting store.
    FaultsInjected,
    /// Payload corruptions injected by a fault-injecting store.
    CorruptionsInjected,
    /// Latency spikes injected by a fault-injecting store.
    LatencySpikesInjected,
    /// Chunk batches delivered through exec-layer session sources.
    ExecBatches,
    /// Rows delivered through exec-layer session sources.
    ExecRows,
    /// Release fast-path attempts that found the scheduler lock busy and
    /// deferred their bookkeeping to the sharded release inbox.
    HubShardConflicts,
    /// Positioned reads issued against segment files (one per extent).
    FileReadCalls,
    /// Bytes read from segment files on disk (physical I/O volume).
    FileBytesRead,
    /// Scans admitted to a table (immediately or after queueing).
    AdmissionAdmitted,
    /// Scans that had to wait in a table's FIFO admission queue.
    AdmissionQueued,
    /// Scans shed by admission control (queue full or queue-wait timeout).
    AdmissionShed,
    /// Network connections accepted by the scan service.
    ConnectionsOpened,
    /// Connections shed because the consumer stalled (stopped reading or
    /// stopped requesting batches while holding open scans).
    ConnectionsShed,
    /// Column batches served over the wire protocol.
    BatchesServed,
    /// Payload bytes served over the wire protocol (encoded frame bodies).
    BytesServed,
}

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; 33] = [
        Counter::LoadsCompleted,
        Counter::LoadsCancelled,
        Counter::LoadFaults,
        Counter::LoadRetries,
        Counter::ChecksumFailures,
        Counter::WorkerPanics,
        Counter::ChunksQuarantined,
        Counter::QueriesErred,
        Counter::ValuesDecoded,
        Counter::DecodeNanos,
        Counter::UnconsumedDrops,
        Counter::FramePins,
        Counter::FrameUnpins,
        Counter::FrameEvictions,
        Counter::FrameHits,
        Counter::FrameMisses,
        Counter::IoLoadsIssued,
        Counter::IoBursts,
        Counter::FaultsInjected,
        Counter::CorruptionsInjected,
        Counter::LatencySpikesInjected,
        Counter::ExecBatches,
        Counter::ExecRows,
        Counter::HubShardConflicts,
        Counter::FileReadCalls,
        Counter::FileBytesRead,
        Counter::AdmissionAdmitted,
        Counter::AdmissionQueued,
        Counter::AdmissionShed,
        Counter::ConnectionsOpened,
        Counter::ConnectionsShed,
        Counter::BatchesServed,
        Counter::BytesServed,
    ];

    /// The counter's stable metric name (snake case, no prefix).
    pub fn name(&self) -> &'static str {
        match self {
            Counter::LoadsCompleted => "loads_completed",
            Counter::LoadsCancelled => "loads_cancelled",
            Counter::LoadFaults => "load_faults",
            Counter::LoadRetries => "load_retries",
            Counter::ChecksumFailures => "checksum_failures",
            Counter::WorkerPanics => "worker_panics",
            Counter::ChunksQuarantined => "chunks_quarantined",
            Counter::QueriesErred => "queries_erred",
            Counter::ValuesDecoded => "values_decoded",
            Counter::DecodeNanos => "decode_nanos",
            Counter::UnconsumedDrops => "unconsumed_drops",
            Counter::FramePins => "frame_pins",
            Counter::FrameUnpins => "frame_unpins",
            Counter::FrameEvictions => "frame_evictions",
            Counter::FrameHits => "frame_hits",
            Counter::FrameMisses => "frame_misses",
            Counter::IoLoadsIssued => "io_loads_issued",
            Counter::IoBursts => "io_bursts",
            Counter::FaultsInjected => "faults_injected",
            Counter::CorruptionsInjected => "corruptions_injected",
            Counter::LatencySpikesInjected => "latency_spikes_injected",
            Counter::ExecBatches => "exec_batches",
            Counter::ExecRows => "exec_rows",
            Counter::HubShardConflicts => "hub_shard_conflicts",
            Counter::FileReadCalls => "file_read_calls",
            Counter::FileBytesRead => "file_bytes_read",
            Counter::AdmissionAdmitted => "admission_admitted",
            Counter::AdmissionQueued => "admission_queued",
            Counter::AdmissionShed => "admission_shed",
            Counter::ConnectionsOpened => "connections_opened",
            Counter::ConnectionsShed => "connections_shed",
            Counter::BatchesServed => "batches_served",
            Counter::BytesServed => "bytes_served",
        }
    }
}

/// Counters kept per attached query (and mirrored into a registry-wide
/// total on every increment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum QueryCounter {
    /// Chunks delivered to this query.
    ChunksDelivered,
    /// Rows delivered to this query.
    RowsDelivered,
    /// Nanoseconds this query's consumer spent blocked in `next_chunk`.
    PinWaitNanos,
}

impl QueryCounter {
    /// Every per-query counter, in index order.
    pub const ALL: [QueryCounter; 3] = [
        QueryCounter::ChunksDelivered,
        QueryCounter::RowsDelivered,
        QueryCounter::PinWaitNanos,
    ];

    /// The counter's stable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryCounter::ChunksDelivered => "chunks_delivered",
            QueryCounter::RowsDelivered => "rows_delivered",
            QueryCounter::PinWaitNanos => "pin_wait_nanos",
        }
    }
}

/// Point-in-time gauges (set, not accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Frames currently pinned by outstanding chunk pins.
    PinnedFrames,
    /// Frames currently resident in the pool.
    ResidentFrames,
    /// Queries currently attached.
    ActiveQueries,
    /// Unreserved buffer pages available to the load planner.
    FreePages,
    /// Scans currently waiting in admission queues (all tables).
    AdmissionQueueDepth,
    /// Scans currently admitted past admission control (all tables).
    AdmittedScans,
    /// Network connections currently open against the scan service.
    OpenConnections,
}

impl Gauge {
    /// Every gauge, in index order.
    pub const ALL: [Gauge; 7] = [
        Gauge::PinnedFrames,
        Gauge::ResidentFrames,
        Gauge::ActiveQueries,
        Gauge::FreePages,
        Gauge::AdmissionQueueDepth,
        Gauge::AdmittedScans,
        Gauge::OpenConnections,
    ];

    /// The gauge's stable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            Gauge::PinnedFrames => "pinned_frames",
            Gauge::ResidentFrames => "resident_frames",
            Gauge::ActiveQueries => "active_queries",
            Gauge::FreePages => "free_pages",
            Gauge::AdmissionQueueDepth => "admission_queue_depth",
            Gauge::AdmittedScans => "admitted_scans",
            Gauge::OpenConnections => "open_connections",
        }
    }
}

/// The engine phases measured by span timers.  Each kind owns one
/// [`Log2Histogram`] of nanosecond durations in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// Planning a load under the hub lock (policy decision + eviction).
    Plan,
    /// Committing a completed load under the hub lock.
    Commit,
    /// Materializing a chunk payload (the "disk read").
    Materialize,
    /// Decode-on-first-pin payload decompression.
    Decode,
    /// A consumer blocked in `next_chunk` (one wait episode).
    PinWait,
    /// Retry backoff sleeps after failed reads.
    Backoff,
    /// Scheduler-lock critical sections (hold time, not wait time).
    LockHold,
    /// Per-shard lock critical sections on the consume fast path (frame
    /// pin/unpin and release-inbox pushes; hold time, not wait time).
    ShardLockHold,
    /// One positioned read against a segment file (syscall latency).
    FileRead,
}

impl SpanKind {
    /// Every span kind, in index order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Plan,
        SpanKind::Commit,
        SpanKind::Materialize,
        SpanKind::Decode,
        SpanKind::PinWait,
        SpanKind::Backoff,
        SpanKind::LockHold,
        SpanKind::ShardLockHold,
        SpanKind::FileRead,
    ];

    /// The span's stable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Plan => "plan",
            SpanKind::Commit => "commit",
            SpanKind::Materialize => "materialize",
            SpanKind::Decode => "decode",
            SpanKind::PinWait => "pin_wait",
            SpanKind::Backoff => "backoff",
            SpanKind::LockHold => "lock_hold",
            SpanKind::ShardLockHold => "shard_lock_hold",
            SpanKind::FileRead => "file_read",
        }
    }
}

/// The shared per-registry totals every [`QueryScope`] mirrors into.
///
/// Lives in its own `Arc` so scopes can reference it without a cycle back
/// to the registry.
#[derive(Debug)]
pub(crate) struct QueryTotals {
    pub(crate) counters: [AtomicU64; QueryCounter::ALL.len()],
    /// Merged pin-wait distribution across every query.
    pub(crate) pin_wait: Log2Histogram,
    /// Time-to-first-chunk distribution: one sample per query that received
    /// at least one chunk.
    pub(crate) ttfc: Log2Histogram,
}

impl QueryTotals {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            pin_wait: Log2Histogram::new(),
            ttfc: Log2Histogram::new(),
        }
    }
}

/// Per-query metric scope, created by [`Registry::attach_query`].
///
/// All write methods are lock-free and allocation-free; every increment
/// lands both in this scope and in the registry-wide total, so snapshots
/// can check per-query/global consistency.
#[derive(Debug)]
pub struct QueryScope {
    label: String,
    table: String,
    enabled: bool,
    counters: [AtomicU64; QueryCounter::ALL.len()],
    pin_wait: Log2Histogram,
    /// Time to first chunk in nanoseconds; 0 = no chunk delivered yet.
    ttfc_ns: AtomicU64,
    detached: AtomicBool,
    totals: Arc<QueryTotals>,
}

impl QueryScope {
    /// The query's label (the scan plan's label).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The table the query scans.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Adds `n` to a per-query counter (and the registry-wide total).
    #[inline]
    pub fn add(&self, counter: QueryCounter, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        self.totals.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a per-query counter.
    pub fn value(&self, counter: QueryCounter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Records one pin-wait episode of `ns` nanoseconds: the per-query and
    /// merged histograms plus the [`QueryCounter::PinWaitNanos`] sum.
    #[inline]
    pub fn record_pin_wait(&self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.pin_wait.record(ns);
        self.totals.pin_wait.record(ns);
        self.add(QueryCounter::PinWaitNanos, ns);
    }

    /// Records the time to this query's first delivered chunk.  Only the
    /// first call has an effect.
    #[inline]
    pub fn record_first_chunk(&self, ns_since_attach: u64) {
        if !self.enabled {
            return;
        }
        if self
            .ttfc_ns
            .compare_exchange(
                0,
                ns_since_attach.max(1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.totals.ttfc.record(ns_since_attach.max(1));
        }
    }

    /// Time to first chunk, if one was delivered.
    pub fn time_to_first_chunk_ns(&self) -> Option<u64> {
        match self.ttfc_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Marks the scope detached (its metrics are retained until the next
    /// [`Registry::snapshot_and_reset`]).
    pub fn detach(&self) {
        self.detached.store(true, Ordering::Relaxed);
    }

    /// True once [`QueryScope::detach`] ran.
    pub fn is_detached(&self) -> bool {
        self.detached.load(Ordering::Relaxed)
    }

    pub(crate) fn to_snapshot(&self) -> QuerySnapshot {
        QuerySnapshot {
            label: self.label.clone(),
            table: self.table.clone(),
            detached: self.is_detached(),
            counters: QueryCounter::ALL
                .iter()
                .map(|&c| (c.name(), self.value(c)))
                .collect(),
            ttfc_ns: self.time_to_first_chunk_ns(),
            pin_wait: self.pin_wait.snapshot(),
        }
    }

    /// Like [`QueryScope::to_snapshot`], but atomically takes the values
    /// (swap-to-zero), so concurrent increments land in exactly one
    /// reset window.
    pub(crate) fn drain_snapshot(&self) -> QuerySnapshot {
        QuerySnapshot {
            label: self.label.clone(),
            table: self.table.clone(),
            detached: self.is_detached(),
            counters: QueryCounter::ALL
                .iter()
                .map(|&c| {
                    (
                        c.name(),
                        self.counters[c as usize].swap(0, Ordering::Relaxed),
                    )
                })
                .collect(),
            ttfc_ns: match self.ttfc_ns.swap(0, Ordering::Relaxed) {
                0 => None,
                ns => Some(ns),
            },
            pin_wait: self.pin_wait.drain(),
        }
    }
}

/// A scoped span timer: measures from creation to drop and records the
/// elapsed nanoseconds into the registry's histogram for its [`SpanKind`].
#[must_use = "a SpanTimer measures until it is dropped"]
pub struct SpanTimer<'a> {
    registry: &'a Registry,
    kind: SpanKind,
    started: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.registry
            .record_span_ns(self.kind, self.started.elapsed().as_nanos() as u64);
    }
}

/// The unified metrics registry.  See the [crate docs](crate) for the
/// design; create one with [`Registry::new`] (or [`Registry::disabled`]
/// for a zero-overhead baseline) and share it via `Arc`.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    started: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    spans: [Log2Histogram; SpanKind::ALL.len()],
    totals: Arc<QueryTotals>,
    scopes: Mutex<Vec<Arc<QueryScope>>>,
    recorder: FlightRecorder,
    /// The most recent flight-recorder dump (set on quarantine, scan error
    /// or worker panic).
    last_dump: Mutex<Option<String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Default flight-recorder capacity (events retained).
    pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

    /// Creates an enabled registry with the default flight-recorder size.
    pub fn new() -> Self {
        Self::with_flight_capacity(Self::DEFAULT_FLIGHT_CAPACITY)
    }

    /// Creates an enabled registry retaining `capacity` flight events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Self::build(true, capacity)
    }

    /// Creates a disabled registry: every record call is a no-op behind one
    /// branch.  This is the "no-obs" baseline the release overhead gate
    /// measures instrumented runs against.
    pub fn disabled() -> Self {
        Self::build(false, 1)
    }

    fn build(enabled: bool, capacity: usize) -> Self {
        Self {
            enabled,
            started: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: std::array::from_fn(|_| Log2Histogram::new()),
            totals: Arc::new(QueryTotals::new()),
            scopes: Mutex::new(Vec::new()),
            recorder: FlightRecorder::new(capacity),
            last_dump: Mutex::new(None),
        }
    }

    /// False for [`Registry::disabled`] registries.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the registry was created — the timestamp source
    /// the threaded front-end stamps flight events with.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    // -- counters ------------------------------------------------------

    /// Adds `n` to a global counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.enabled && n > 0 {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a global counter.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a global counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Current registry-wide total of a per-query counter (the sum the
    /// scopes mirror into).
    pub fn query_total(&self, counter: QueryCounter) -> u64 {
        self.totals.counters[counter as usize].load(Ordering::Relaxed)
    }

    // -- gauges --------------------------------------------------------

    /// Sets a gauge to `value`.
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        if self.enabled {
            self.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    // -- spans ---------------------------------------------------------

    /// Records a span duration in nanoseconds.  The simulation front-end
    /// calls this directly with *virtual* durations, keeping deterministic
    /// runs deterministic.
    #[inline]
    pub fn record_span_ns(&self, kind: SpanKind, ns: u64) {
        if self.enabled {
            self.spans[kind as usize].record(ns);
        }
    }

    /// Starts a wall-clock span timer; the elapsed time records on drop.
    #[inline]
    pub fn time(&self, kind: SpanKind) -> SpanTimer<'_> {
        SpanTimer {
            registry: self,
            kind,
            started: Instant::now(),
        }
    }

    /// Direct access to a span's histogram (for instrumentation that
    /// measures its own intervals, like the hub-lock guard).
    #[inline]
    pub fn span_hist(&self, kind: SpanKind) -> &Log2Histogram {
        &self.spans[kind as usize]
    }

    // -- query scopes --------------------------------------------------

    /// Attaches a per-query metric scope labelled `label` over `table`.
    /// The scope is retained (even after detach) until the next
    /// [`Registry::snapshot_and_reset`], so sweep snapshots see every query
    /// of their window.
    pub fn attach_query(
        self: &Arc<Self>,
        label: impl Into<String>,
        table: impl Into<String>,
    ) -> Arc<QueryScope> {
        let scope = Arc::new(QueryScope {
            label: label.into(),
            table: table.into(),
            enabled: self.enabled,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            pin_wait: Log2Histogram::new(),
            ttfc_ns: AtomicU64::new(0),
            detached: AtomicBool::new(false),
            totals: Arc::clone(&self.totals),
        });
        if self.enabled {
            let mut scopes = self.scopes.lock();
            scopes.push(Arc::clone(&scope));
            self.gauges[Gauge::ActiveQueries as usize].store(
                scopes.iter().filter(|s| !s.is_detached()).count() as u64,
                Ordering::Relaxed,
            );
        }
        scope
    }

    /// Marks `scope` detached and refreshes the active-query gauge.
    pub fn detach_query(&self, scope: &QueryScope) {
        scope.detach();
        if self.enabled {
            let scopes = self.scopes.lock();
            self.gauges[Gauge::ActiveQueries as usize].store(
                scopes.iter().filter(|s| !s.is_detached()).count() as u64,
                Ordering::Relaxed,
            );
        }
    }

    // -- flight recorder -----------------------------------------------

    /// Records a flight event with an explicit timestamp (virtual time in
    /// the simulation, [`Registry::now_ns`] on the threaded front-end).
    #[inline]
    pub fn event_at(&self, at_ns: u64, kind: EventKind, chunk: u32, query: u64, aux: u64) {
        if self.enabled {
            self.recorder.record(FlightEvent {
                at_ns,
                kind,
                chunk,
                query,
                aux,
            });
        }
    }

    /// Records a flight event stamped with real elapsed time.
    #[inline]
    pub fn event(&self, kind: EventKind, chunk: u32, query: u64, aux: u64) {
        if self.enabled {
            self.event_at(self.now_ns(), kind, chunk, query, aux);
        }
    }

    /// The flight recorder itself.
    pub fn flight(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Dumps the flight recorder (the automatic response to quarantine,
    /// scan errors and worker panics): renders the ring, stores the text as
    /// [`Registry::last_flight_dump`], optionally echoes it to stderr when
    /// `CSCAN_OBS_DUMP` is set in the environment, and returns it.
    pub fn dump_flight(&self, reason: &str) -> String {
        let dump = self.recorder.dump(reason);
        if std::env::var_os("CSCAN_OBS_DUMP").is_some() {
            eprintln!("{dump}");
        }
        *self.last_dump.lock() = Some(dump.clone());
        dump
    }

    /// The most recent automatic flight dump, if any failure triggered one.
    pub fn last_flight_dump(&self) -> Option<String> {
        self.last_dump.lock().clone()
    }

    // -- snapshots -----------------------------------------------------

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let scopes = self.scopes.lock();
        // Read the per-scope values *before* the mirrored totals: every
        // write bumps its scope first and the total second, so this order
        // keeps a live snapshot's scope sums at most one in-flight
        // increment per writer ahead of the totals (never unboundedly
        // skewed by writes landing between the two passes).
        let queries: Vec<_> = scopes.iter().map(|s| s.to_snapshot()).collect();
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.counter(c)))
                .collect(),
            query_totals: QueryCounter::ALL
                .iter()
                .map(|&c| (c.name(), self.query_total(c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), self.gauge(g)))
                .collect(),
            spans: SpanKind::ALL
                .iter()
                .map(|&k| (k.name(), self.spans[k as usize].snapshot()))
                .collect(),
            ttfc: self.totals.ttfc.snapshot(),
            pin_wait: self.totals.pin_wait.snapshot(),
            queries,
            flight_dropped: self.recorder.dropped(),
        }
    }

    /// Takes a snapshot, then zeroes every counter, gauge, histogram and
    /// flight event, and drops detached query scopes (live scopes are kept
    /// but zeroed).  Benches call this between sweep points so one point's
    /// faults never bleed into the next.
    ///
    /// Every value is taken with an atomic swap-to-zero, so a concurrent
    /// increment lands in exactly one window — this snapshot or the next,
    /// never both, never neither (the multi-threaded stress suite sweeps
    /// resets against writers to prove it).
    pub fn snapshot_and_reset(&self) -> MetricsSnapshot {
        // Hold the scope table across the whole operation so an attach
        // cannot slip between the snapshot and the reset.
        let mut scopes = self.scopes.lock();
        let snap = MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| {
                    (
                        c.name(),
                        self.counters[c as usize].swap(0, Ordering::Relaxed),
                    )
                })
                .collect(),
            query_totals: QueryCounter::ALL
                .iter()
                .map(|&c| {
                    (
                        c.name(),
                        self.totals.counters[c as usize].swap(0, Ordering::Relaxed),
                    )
                })
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), self.gauges[g as usize].swap(0, Ordering::Relaxed)))
                .collect(),
            spans: SpanKind::ALL
                .iter()
                .map(|&k| (k.name(), self.spans[k as usize].drain()))
                .collect(),
            ttfc: self.totals.ttfc.drain(),
            pin_wait: self.totals.pin_wait.drain(),
            queries: scopes.iter().map(|s| s.drain_snapshot()).collect(),
            flight_dropped: self.recorder.dropped(),
        };
        scopes.retain(|s| !s.is_detached());
        self.recorder.clear();
        *self.last_dump.lock() = None;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{NO_CHUNK, NO_QUERY};

    #[test]
    fn counters_gauges_and_spans_round_trip() {
        let r = Registry::new();
        r.inc(Counter::LoadsCompleted);
        r.add(Counter::LoadsCompleted, 4);
        r.add(Counter::LoadFaults, 0); // no-op
        assert_eq!(r.counter(Counter::LoadsCompleted), 5);
        assert_eq!(r.counter(Counter::LoadFaults), 0);

        r.gauge_set(Gauge::PinnedFrames, 7);
        assert_eq!(r.gauge(Gauge::PinnedFrames), 7);

        r.record_span_ns(SpanKind::Plan, 1000);
        {
            let _t = r.time(SpanKind::Commit);
        }
        let snap = r.snapshot();
        assert_eq!(snap.span("plan").count(), 1);
        assert_eq!(snap.span("commit").count(), 1);
        assert_eq!(snap.counter("loads_completed"), 5);
        assert_eq!(snap.gauge("pinned_frames"), 7);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Arc::new(Registry::disabled());
        r.inc(Counter::LoadsCompleted);
        r.gauge_set(Gauge::PinnedFrames, 3);
        r.record_span_ns(SpanKind::Plan, 5);
        r.event(EventKind::WorkerPanic, NO_CHUNK, NO_QUERY, 0);
        let scope = r.attach_query("q", "t");
        scope.add(QueryCounter::ChunksDelivered, 9);
        scope.record_pin_wait(100);
        scope.record_first_chunk(10);
        assert!(!r.is_enabled());
        assert_eq!(r.counter(Counter::LoadsCompleted), 0);
        assert_eq!(r.gauge(Gauge::PinnedFrames), 0);
        assert_eq!(r.query_total(QueryCounter::ChunksDelivered), 0);
        assert!(r.flight().events().is_empty());
        let snap = r.snapshot();
        assert!(snap.queries.is_empty(), "disabled scopes are not retained");
    }

    #[test]
    fn scope_mirrors_into_totals_and_reset_clears() {
        let r = Arc::new(Registry::new());
        let a = r.attach_query("a", "lineitem");
        let b = r.attach_query("b", "lineitem");
        a.add(QueryCounter::ChunksDelivered, 3);
        b.add(QueryCounter::ChunksDelivered, 5);
        a.record_pin_wait(1_000);
        b.record_first_chunk(2_000);
        assert_eq!(r.query_total(QueryCounter::ChunksDelivered), 8);
        assert_eq!(r.gauge(Gauge::ActiveQueries), 2);

        let snap = r.snapshot();
        assert!(snap.is_consistent(), "{snap:?}");
        assert_eq!(snap.queries.len(), 2);
        assert_eq!(snap.ttfc.count(), 1);

        r.detach_query(&a);
        assert_eq!(r.gauge(Gauge::ActiveQueries), 1);
        let snap = r.snapshot_and_reset();
        assert_eq!(snap.query_counter_sum("chunks_delivered"), 8);
        // After the reset: detached scope dropped, live scope zeroed.
        let snap = r.snapshot();
        assert_eq!(snap.queries.len(), 1);
        assert_eq!(snap.query_total("chunks_delivered"), 0);
        assert_eq!(snap.queries[0].counters[0].1, 0);
        assert!(snap.ttfc.is_empty());
    }

    #[test]
    fn flight_dump_is_stored() {
        let r = Registry::new();
        r.event_at(10, EventKind::LoadFault, 3, 1, 1);
        r.event_at(20, EventKind::ChunkQuarantined, 3, NO_QUERY, 0);
        assert!(r.last_flight_dump().is_none());
        let dump = r.dump_flight("quarantine");
        assert!(dump.contains("chunk_quarantined"));
        assert_eq!(r.last_flight_dump().as_deref(), Some(dump.as_str()));
        r.snapshot_and_reset();
        assert!(r.last_flight_dump().is_none());
        assert!(r.flight().events().is_empty());
    }
}
