//! The flight recorder: a bounded ring buffer of recent engine events.
//!
//! Every control-plane transition of the scan engine — query attach/detach,
//! load planned/committed/cancelled, faults, retries, quarantines, worker
//! panics — is recorded as a fixed-size [`FlightEvent`].  The ring holds the
//! most recent [`FlightRecorder::capacity`] events (older ones are
//! overwritten, with a counter of how many were lost), so when something
//! goes wrong the engine can dump the run-up to the failure without having
//! paid for an unbounded log.
//!
//! Recording never allocates: the ring is pre-sized at construction and
//! events are plain `Copy` structs.  Hot *data-plane* operations (chunk
//! delivery, column reads) are deliberately **not** recorded here — they go
//! to the registry's counters and histograms — so the recorder's mutex only
//! sees control-plane rates.
//!
//! Timestamps are supplied by the caller (`at_ns`): the threaded front-end
//! stamps real elapsed nanoseconds, the simulation stamps *virtual* time —
//! which keeps chaos/differential dumps byte-identical across runs.

use parking_lot::Mutex;

/// What happened.  Every variant names one control-plane transition of the
/// cooperative-scan engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A query registered with the ABM.
    QueryAttached,
    /// A query deregistered (finished, limit hit, or dropped).
    QueryDetached,
    /// A query was closed with a scan error.
    QueryErred,
    /// An I/O worker planned a chunk load (aux = pages reserved).
    LoadPlanned,
    /// A completed load was committed and installed (aux = queries woken).
    LoadCommitted,
    /// A load was cancelled mid-flight (its last interested query left).
    LoadCancelled,
    /// A read attempt failed (aux = failed attempts so far).
    LoadFault,
    /// A failed read was scheduled for retry (aux = backoff nanoseconds).
    LoadRetry,
    /// A payload failed checksum verification (at install or decode).
    ChecksumFailure,
    /// A panic was caught unwinding out of payload work.
    WorkerPanic,
    /// A chunk entered quarantine: its retry budget is spent.
    ChunkQuarantined,
    /// A resident chunk's frame was evicted.
    FrameEvicted,
}

impl EventKind {
    /// The event's stable dump/metric name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::QueryAttached => "query_attached",
            EventKind::QueryDetached => "query_detached",
            EventKind::QueryErred => "query_erred",
            EventKind::LoadPlanned => "load_planned",
            EventKind::LoadCommitted => "load_committed",
            EventKind::LoadCancelled => "load_cancelled",
            EventKind::LoadFault => "load_fault",
            EventKind::LoadRetry => "load_retry",
            EventKind::ChecksumFailure => "checksum_failure",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::ChunkQuarantined => "chunk_quarantined",
            EventKind::FrameEvicted => "frame_evicted",
        }
    }
}

/// Sentinel for "no chunk" in a [`FlightEvent`].
pub const NO_CHUNK: u32 = u32::MAX;
/// Sentinel for "no query" in a [`FlightEvent`].
pub const NO_QUERY: u64 = u64::MAX;

/// One recorded engine event.  `Copy`, fixed-size, allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Caller-supplied timestamp in nanoseconds (real elapsed time on the
    /// threaded front-end, virtual time in the simulation).
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// The chunk involved, or [`NO_CHUNK`].
    pub chunk: u32,
    /// The query involved, or [`NO_QUERY`].
    pub query: u64,
    /// Event-specific detail (see [`EventKind`] variants).
    pub aux: u64,
}

impl FlightEvent {
    /// Renders the event as one dump line.
    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "  [{:>12}ns] {:<18}", self.at_ns, self.kind.name());
        if self.chunk != NO_CHUNK {
            let _ = write!(out, " chunk={}", self.chunk);
        }
        if self.query != NO_QUERY {
            let _ = write!(out, " query={}", self.query);
        }
        if self.aux != 0 {
            let _ = write!(out, " aux={}", self.aux);
        }
        out.push('\n');
    }
}

/// The ring state behind the recorder's mutex.
struct Ring {
    /// Pre-sized storage; never reallocates after construction.
    buf: Vec<FlightEvent>,
    /// Index the next event is written at once the ring is full.
    next: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

/// A bounded, allocation-free ring buffer of recent [`FlightEvent`]s.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                next: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, overwriting the oldest once full.  Never
    /// allocates after the ring has filled once.
    pub fn record(&self, event: FlightEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(event);
        } else {
            let at = ring.next;
            ring.buf[at] = event;
            ring.next = (at + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.next..]);
        out.extend_from_slice(&ring.buf[..ring.next]);
        out
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Renders the retained events as a human-readable dump, oldest first.
    /// Deterministic for deterministic timestamps (the seeded-chaos tests
    /// compare dumps of identical runs byte-for-byte).
    pub fn dump(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let dropped = self.dropped();
        let mut out = String::with_capacity(64 + events.len() * 48);
        let _ = writeln!(
            out,
            "=== flight recorder dump ({reason}): {} events, {} overwritten ===",
            events.len(),
            dropped
        );
        for e in &events {
            e.render(&mut out);
        }
        out.push_str("=== end of dump ===\n");
        out
    }

    /// Discards every retained event and the overwrite counter.
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.buf.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind, chunk: u32) -> FlightEvent {
        FlightEvent {
            at_ns: at,
            kind,
            chunk,
            query: NO_QUERY,
            aux: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(ev(i, EventKind::LoadCommitted, i as u32));
        }
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.at_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest first, most recent retained"
        );
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn dump_is_deterministic_and_named() {
        let make = || {
            let r = FlightRecorder::new(8);
            r.record(ev(100, EventKind::QueryAttached, NO_CHUNK));
            r.record(ev(250, EventKind::LoadFault, 3));
            r.record(ev(300, EventKind::ChunkQuarantined, 3));
            r.dump("test")
        };
        let d = make();
        assert_eq!(d, make(), "same events, same dump bytes");
        assert!(d.contains("chunk_quarantined"));
        assert!(d.contains("chunk=3"));
        assert!(d.contains("3 events"));
    }

    #[test]
    fn clear_resets() {
        let r = FlightRecorder::new(2);
        r.record(ev(1, EventKind::WorkerPanic, NO_CHUNK));
        r.record(ev(2, EventKind::WorkerPanic, NO_CHUNK));
        r.record(ev(3, EventKind::WorkerPanic, NO_CHUNK));
        assert_eq!(r.dropped(), 1);
        r.clear();
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }
}
