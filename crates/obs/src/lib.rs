//! # cscan_obs — the unified observability plane
//!
//! One crate owns every piece of telemetry the cooperative-scan engine
//! emits:
//!
//! * a lock-free **metrics registry** ([`Registry`]) of atomic counters,
//!   gauges and power-of-two histograms, cheap enough for the zero-alloc
//!   consume path (one relaxed `fetch_add` per sample, no heap traffic);
//! * **span timers** ([`SpanTimer`], [`SpanKind`]) for the engine's
//!   phases — plan/commit under the hub lock, payload materialize,
//!   decode-on-first-pin, pin-wait, retry backoff;
//! * per-query **label dimensions** ([`QueryScope`]) so fairness and
//!   tail-latency metrics (time-to-first-chunk, per-query pin-wait) exist
//!   per scan, with a per-table roll-up derived at snapshot time;
//! * a bounded ring-buffer **flight recorder** ([`FlightRecorder`]) of
//!   recent control-plane events, dumped automatically on quarantine,
//!   scan error, or worker panic;
//! * two snapshot sinks: [`MetricsSnapshot::render_json`] for the bench
//!   harness and [`MetricsSnapshot::render_prometheus`] for text
//!   exposition.
//!
//! Both engine front-ends share the crate: the threaded `ScanServer`
//! stamps real elapsed time, the deterministic simulation stamps *virtual*
//! time (via [`Registry::event_at`] and [`Registry::record_span_ns`]), so
//! seeded chaos runs keep producing byte-identical flight dumps.
//!
//! The crate is a dependency leaf: it knows nothing about chunks, queries
//! or policies beyond opaque `u32`/`u64` identifiers, so every other crate
//! in the workspace can depend on it.

mod hist;
mod recorder;
mod registry;
mod snapshot;

pub use hist::{HistogramSnapshot, Log2Histogram, HISTOGRAM_BUCKETS};
pub use recorder::{EventKind, FlightEvent, FlightRecorder, NO_CHUNK, NO_QUERY};
pub use registry::{Counter, Gauge, QueryCounter, QueryScope, Registry, SpanKind, SpanTimer};
pub use snapshot::{MetricsSnapshot, QuerySnapshot};
