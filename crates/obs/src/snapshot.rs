//! Point-in-time metric snapshots and their two render sinks: hand-rolled
//! JSON (the workspace deliberately carries no JSON dependency) and
//! Prometheus-style text exposition.

use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;

/// One query's metrics as captured by [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    /// The query's label (scan-plan label).
    pub label: String,
    /// The table the query scans.
    pub table: String,
    /// True if the query had detached by snapshot time.
    pub detached: bool,
    /// Per-query counter values, in [`QueryCounter::ALL`](crate::QueryCounter::ALL) order.
    pub counters: Vec<(&'static str, u64)>,
    /// Time to first delivered chunk, if one arrived.
    pub ttfc_ns: Option<u64>,
    /// This query's pin-wait episode distribution (nanoseconds).
    pub pin_wait: HistogramSnapshot,
}

impl QuerySnapshot {
    /// A named per-query counter value (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// A point-in-time copy of every metric in a
/// [`Registry`](crate::Registry): global counters, per-query mirrored
/// totals, gauges, span histograms, the merged time-to-first-chunk and
/// pin-wait distributions, and one [`QuerySnapshot`] per attached (or
/// not-yet-reset detached) query.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Global counters, in [`Counter::ALL`](crate::Counter::ALL) order.
    pub counters: Vec<(&'static str, u64)>,
    /// Registry-wide totals of the per-query counters.
    pub query_totals: Vec<(&'static str, u64)>,
    /// Gauges, in [`Gauge::ALL`](crate::Gauge::ALL) order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Span histograms (nanoseconds), in [`SpanKind::ALL`](crate::SpanKind::ALL) order.
    pub spans: Vec<(&'static str, HistogramSnapshot)>,
    /// Time-to-first-chunk distribution: one sample per query that received
    /// at least one chunk (nanoseconds since attach).
    pub ttfc: HistogramSnapshot,
    /// Merged pin-wait episode distribution across every query.
    pub pin_wait: HistogramSnapshot,
    /// Per-query snapshots.
    pub queries: Vec<QuerySnapshot>,
    /// Flight-recorder events overwritten because the ring was full.
    pub flight_dropped: u64,
}

impl MetricsSnapshot {
    /// A named global counter value (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name)
    }

    /// A named registry-wide per-query total (0 if unknown).
    pub fn query_total(&self, name: &str) -> u64 {
        lookup(&self.query_totals, name)
    }

    /// A named gauge value (0 if unknown).
    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name)
    }

    /// A named span histogram (empty if unknown).
    pub fn span(&self, name: &str) -> HistogramSnapshot {
        self.spans
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.clone())
            .unwrap_or_default()
    }

    /// Sums a per-query counter across every [`QuerySnapshot`].
    pub fn query_counter_sum(&self, name: &str) -> u64 {
        self.queries.iter().map(|q| q.counter(name)).sum()
    }

    /// Per-table aggregation of a per-query counter, keyed by table label.
    /// Derived entirely at snapshot time — the table dimension costs the
    /// write path nothing.
    pub fn per_table(&self, name: &str) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for q in &self.queries {
            *out.entry(q.table.clone()).or_insert(0) += q.counter(name);
        }
        out
    }

    /// The registry's internal consistency invariant: for every per-query
    /// counter, the sum over [`MetricsSnapshot::queries`] equals the
    /// registry-wide mirrored total, and the file-I/O metrics agree with
    /// each other — every positioned segment read records exactly one
    /// `file_read` span, so the `file_read_calls` counter must equal the
    /// span histogram's sample count (a reader that bumped one but not the
    /// other would silently skew the Figure 9 I/O accounting).
    ///
    /// Note: a concurrent writer between the scope reads and the total
    /// reads can skew a *live* snapshot; call this on quiesced registries
    /// (as the tests do after joining their writers).
    pub fn is_consistent(&self) -> bool {
        let queries_agree = self
            .query_totals
            .iter()
            .all(|(name, total)| self.query_counter_sum(name) == *total);
        let file_reads_agree = self.counter("file_read_calls") == self.span("file_read").count();
        queries_agree && file_reads_agree
    }

    /// Renders the snapshot as a Prometheus text-exposition document.
    ///
    /// Naming scheme: every family is prefixed `cscan_`; counters keep
    /// their registry name, span histograms become
    /// `cscan_span_<kind>_ns` with the standard `_bucket{le=}` /
    /// `_sum` / `_count` triple, and per-query series carry
    /// `{query="...",table="..."}` labels.  Label values are escaped per
    /// the exposition format.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE cscan_{name} counter");
            let _ = writeln!(out, "cscan_{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE cscan_{name} gauge");
            let _ = writeln!(out, "cscan_{name} {value}");
        }
        for (name, hist) in &self.spans {
            render_prom_histogram(&mut out, &format!("cscan_span_{name}_ns"), "", hist);
        }
        render_prom_histogram(&mut out, "cscan_time_to_first_chunk_ns", "", &self.ttfc);
        render_prom_histogram(&mut out, "cscan_pin_wait_ns", "", &self.pin_wait);
        for q in &self.queries {
            let labels = format!(
                "{{query=\"{}\",table=\"{}\"}}",
                escape_label(&q.label),
                escape_label(&q.table)
            );
            for (name, value) in &q.counters {
                let _ = writeln!(out, "cscan_query_{name}{labels} {value}");
            }
            if let Some(ttfc) = q.ttfc_ns {
                let _ = writeln!(out, "cscan_query_time_to_first_chunk_ns{labels} {ttfc}");
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the workspace
    /// carries no JSON dependency).  Shape:
    /// `{"counters": {...}, "query_totals": {...}, "gauges": {...},
    /// "spans": {name: {count, sum, p50, p99, max}}, "ttfc": {...},
    /// "pin_wait": {...}, "queries": [{label, table, detached, counters,
    /// ttfc_ns, pin_wait}]}`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"counters\": {");
        render_json_pairs(&mut out, &self.counters);
        out.push_str("},\n  \"query_totals\": {");
        render_json_pairs(&mut out, &self.query_totals);
        out.push_str("},\n  \"gauges\": {");
        render_json_pairs(&mut out, &self.gauges);
        out.push_str("},\n  \"spans\": {");
        for (i, (name, hist)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": ");
            render_json_histogram(&mut out, hist);
        }
        out.push_str("},\n  \"ttfc\": ");
        render_json_histogram(&mut out, &self.ttfc);
        out.push_str(",\n  \"pin_wait\": ");
        render_json_histogram(&mut out, &self.pin_wait);
        out.push_str(",\n  \"queries\": [");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"label\": \"{}\", \"table\": \"{}\", \"detached\": {}, \"counters\": {{",
                escape_json(&q.label),
                escape_json(&q.table),
                q.detached
            );
            render_json_pairs(&mut out, &q.counters);
            out.push_str("}, \"ttfc_ns\": ");
            match q.ttfc_ns {
                Some(ns) => {
                    let _ = write!(out, "{ns}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"pin_wait\": ");
            render_json_histogram(&mut out, &q.pin_wait);
            out.push('}');
        }
        if !self.queries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn lookup(pairs: &[(&'static str, u64)], name: &str) -> u64 {
    pairs
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Renders one histogram as Prometheus `_bucket`/`_sum`/`_count` series,
/// skipping empty buckets (le labels are the log2 bucket upper bounds).
fn render_prom_histogram(out: &mut String, family: &str, labels: &str, hist: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {family} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in hist.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let upper = if i + 1 >= 64 {
            f64::INFINITY
        } else {
            (1u128 << (i + 1)) as f64
        };
        if upper.is_infinite() {
            let _ = writeln!(out, "{family}_bucket{{{labels}le=\"+Inf\"}} {cumulative}");
        } else {
            let _ = writeln!(
                out,
                "{family}_bucket{{{labels}le=\"{upper}\"}} {cumulative}"
            );
        }
    }
    let _ = writeln!(
        out,
        "{family}_bucket{{{labels}le=\"+Inf\"}} {}",
        hist.count()
    );
    let _ = writeln!(out, "{family}_sum{{{labels}}} {}", hist.sum());
    let _ = writeln!(out, "{family}_count{{{labels}}} {}", hist.count());
}

fn render_json_pairs(out: &mut String, pairs: &[(&'static str, u64)]) {
    use std::fmt::Write as _;
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{name}\": {value}");
    }
}

fn render_json_histogram(out: &mut String, hist: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
        hist.count(),
        hist.sum(),
        hist.p50(),
        hist.p99(),
        hist.max_value()
    );
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use crate::{Counter, QueryCounter, Registry, SpanKind};
    use std::sync::Arc;

    fn sample_registry() -> Arc<Registry> {
        let r = Arc::new(Registry::new());
        r.add(Counter::LoadsCompleted, 12);
        r.add(Counter::LoadFaults, 2);
        r.record_span_ns(SpanKind::Plan, 900);
        r.record_span_ns(SpanKind::Plan, 1_800);
        let q = r.attach_query("scan-0", "lineitem");
        q.add(QueryCounter::ChunksDelivered, 4);
        q.record_pin_wait(5_000);
        q.record_first_chunk(42_000);
        r
    }

    #[test]
    fn prometheus_exposition_has_families_and_labels() {
        let text = sample_registry().snapshot().render_prometheus();
        assert!(text.contains("# TYPE cscan_loads_completed counter"));
        assert!(text.contains("cscan_loads_completed 12"));
        assert!(text.contains("# TYPE cscan_span_plan_ns histogram"));
        assert!(text.contains("cscan_span_plan_ns_count{} 2"));
        assert!(text.contains("cscan_time_to_first_chunk_ns_count{} 1"));
        assert!(
            text.contains("cscan_query_chunks_delivered{query=\"scan-0\",table=\"lineitem\"} 4")
        );
        assert!(text.contains(
            "cscan_query_time_to_first_chunk_ns{query=\"scan-0\",table=\"lineitem\"} 42000"
        ));
        // Cumulative bucket counts end with the +Inf bucket == count.
        assert!(text.contains("cscan_pin_wait_ns_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn json_snapshot_is_well_formed_enough() {
        let json = sample_registry().snapshot().render_json();
        assert!(json.contains("\"loads_completed\": 12"));
        assert!(json.contains("\"label\": \"scan-0\""));
        assert!(json.contains("\"table\": \"lineitem\""));
        assert!(json.contains("\"ttfc_ns\": 42000"));
        // Balanced braces/brackets (cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn per_table_aggregates() {
        let r = sample_registry();
        let q2 = r.attach_query("scan-1", "orders");
        q2.add(QueryCounter::ChunksDelivered, 6);
        let q3 = r.attach_query("scan-2", "lineitem");
        q3.add(QueryCounter::ChunksDelivered, 1);
        let snap = r.snapshot();
        let tables = snap.per_table("chunks_delivered");
        assert_eq!(tables.get("lineitem"), Some(&5));
        assert_eq!(tables.get("orders"), Some(&6));
        assert!(snap.is_consistent());
    }
}
