//! Multi-threaded registry stress tests: no lost increments and snapshot
//! consistency under attach/detach storms.

use cscan_obs::{Counter, Gauge, QueryCounter, Registry, SpanKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn no_lost_increments_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let r = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let r = Arc::clone(&r);
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                r.inc(Counter::LoadsCompleted);
                r.add(Counter::ValuesDecoded, 3);
                r.record_span_ns(SpanKind::Plan, (t as u64) * 1_000 + i % 977);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(r.counter(Counter::LoadsCompleted), total);
    assert_eq!(r.counter(Counter::ValuesDecoded), 3 * total);
    assert_eq!(r.snapshot().span("plan").count(), total);
}

#[test]
fn snapshot_consistent_under_attach_detach_storm() {
    const WRITERS: usize = 6;
    const QUERIES_PER_WRITER: usize = 40;
    const CHUNKS_PER_QUERY: u64 = 250;
    let r = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A reader thread hammers snapshot() concurrently; its snapshots may be
    // transiently skewed (scopes and totals are read at different instants)
    // but must never panic or see impossible values (sum > total+slack is
    // impossible because scope increments happen before total increments).
    let reader = {
        let r = Arc::clone(&r);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = r.snapshot();
                let sum = snap.query_counter_sum("chunks_delivered");
                let total = snap.query_total("chunks_delivered");
                // Scope bumps before total bumps, so a racing snapshot can
                // see sum ahead of total, never more than in-flight writers.
                assert!(
                    sum <= total + WRITERS as u64,
                    "sum {sum} impossibly far ahead of total {total}"
                );
                snaps += 1;
            }
            snaps
        })
    };

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let r = Arc::clone(&r);
        writers.push(thread::spawn(move || {
            for q in 0..QUERIES_PER_WRITER {
                let scope = r.attach_query(format!("w{w}-q{q}"), format!("table{}", q % 3));
                for c in 0..CHUNKS_PER_QUERY {
                    scope.add(QueryCounter::ChunksDelivered, 1);
                    scope.add(QueryCounter::RowsDelivered, 100);
                    scope.record_pin_wait(c + 1);
                    if c == 0 {
                        scope.record_first_chunk(w as u64 * 1_000 + q as u64 + 1);
                    }
                }
                r.detach_query(&scope);
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    // Quiesced: the invariant must hold exactly.
    let snap = r.snapshot();
    assert!(snap.is_consistent(), "per-query sums diverge from totals");
    let queries = (WRITERS * QUERIES_PER_WRITER) as u64;
    assert_eq!(
        snap.query_total("chunks_delivered"),
        queries * CHUNKS_PER_QUERY
    );
    assert_eq!(
        snap.query_total("rows_delivered"),
        queries * CHUNKS_PER_QUERY * 100
    );
    assert_eq!(snap.pin_wait.count(), queries * CHUNKS_PER_QUERY);
    assert_eq!(snap.ttfc.count(), queries, "one ttfc sample per query");
    assert_eq!(snap.queries.len(), queries as usize);
    assert_eq!(snap.gauge("active_queries"), 0);

    // Per-table roll-up covers every chunk exactly once.
    let tables = snap.per_table("chunks_delivered");
    assert_eq!(tables.values().sum::<u64>(), queries * CHUNKS_PER_QUERY);
    assert_eq!(tables.len(), 3);

    // And a reset drops the detached scopes and zeroes the totals.
    r.snapshot_and_reset();
    let snap = r.snapshot();
    assert!(snap.queries.is_empty());
    assert_eq!(snap.query_total("chunks_delivered"), 0);
    assert!(snap.ttfc.is_empty());
    assert!(snap.is_consistent());
}

#[test]
fn concurrent_resets_never_lose_whole_windows() {
    // Writers bump one counter; a sweeper snapshots-and-resets repeatedly.
    // Every increment must land in exactly one window: the sum of all
    // windows plus the final residue equals the number of increments.
    // (This caught a real bug: a read-then-zero reset wipes every
    // increment that lands while the sweeper is descheduled in between —
    // the reset must swap values out atomically.)
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let r = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let sweeper = {
        let r = Arc::clone(&r);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut harvested = 0u64;
            let mut windows = 0u64;
            while !stop.load(Ordering::Relaxed) {
                harvested += r.snapshot_and_reset().counter("loads_completed");
                windows += 1;
            }
            (harvested, windows)
        })
    };
    let mut writers = Vec::new();
    for _ in 0..WRITERS {
        let r = Arc::clone(&r);
        writers.push(thread::spawn(move || {
            for _ in 0..PER_WRITER {
                r.inc(Counter::LoadsCompleted);
            }
        }));
    }
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let (harvested, windows) = sweeper.join().unwrap();
    let residue = r.snapshot_and_reset().counter("loads_completed");
    assert_eq!(
        harvested + residue,
        WRITERS as u64 * PER_WRITER,
        "increments lost or double-counted across {windows} reset windows \
         (harvested {harvested}, residue {residue})"
    );
}

#[test]
fn resets_conserve_histogram_samples_and_scope_counts() {
    // Same conservation law for the histogram-backed metrics: pin-wait
    // samples recorded through a live scope must land in exactly one
    // window, with the reset sweeping concurrently.
    const SAMPLES: u64 = 30_000;
    let r = Arc::new(Registry::new());
    let scope = r.attach_query("windowed", "t");
    let stop = Arc::new(AtomicBool::new(false));
    let sweeper = {
        let r = Arc::clone(&r);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut count = 0u64;
            let mut delivered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = r.snapshot_and_reset();
                count += snap.pin_wait.count();
                delivered += snap.query_total("chunks_delivered");
            }
            (count, delivered)
        })
    };
    let writer = {
        let scope = Arc::clone(&scope);
        thread::spawn(move || {
            for i in 0..SAMPLES {
                scope.record_pin_wait(i % 4_096 + 1);
                scope.add(QueryCounter::ChunksDelivered, 1);
            }
        })
    };
    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let (mut count, mut delivered) = sweeper.join().unwrap();
    let last = r.snapshot_and_reset();
    count += last.pin_wait.count();
    delivered += last.query_total("chunks_delivered");
    assert_eq!(count, SAMPLES, "pin-wait samples lost across reset windows");
    assert_eq!(
        delivered, SAMPLES,
        "per-query totals lost across reset windows"
    );
    r.detach_query(&scope);
}

#[test]
fn gauges_and_flight_under_contention() {
    let r = Arc::new(Registry::with_flight_capacity(64));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let r = Arc::clone(&r);
        handles.push(thread::spawn(move || {
            for i in 0..1_000u64 {
                r.gauge_set(Gauge::PinnedFrames, i);
                r.event_at(
                    t * 10_000 + i,
                    cscan_obs::EventKind::LoadCommitted,
                    i as u32,
                    t,
                    0,
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = r.flight().events();
    assert_eq!(events.len(), 64, "ring stays bounded");
    assert_eq!(r.flight().dropped(), 4 * 1_000 - 64);
    let dump = r.dump_flight("stress");
    assert!(dump.contains("64 events"));
}
