//! `cscan_serve` — run the scan service over a demo catalog.
//!
//! ```text
//! cscan_serve [--addr HOST:PORT] [--rows N] [--cap N] [--queue N]
//!             [--queue-timeout-ms N] [--stall-timeout-ms N] [--no-exit-on-shutdown]
//! ```
//!
//! Binds the address (default `127.0.0.1:0`), prints `LISTENING <addr>`
//! on stdout once accepting, and serves two in-memory tables —
//! `lineitem` and `orders` — until a client sends `Shutdown` (unless
//! `--no-exit-on-shutdown`).  On exit it prints a one-line JSON summary
//! of the admission and serving counters, and fails (exit 1) if any
//! buffer frame is still pinned — the smoke test's leak check.

use cscan_exec::MemTable;
use cscan_obs::{Counter, Gauge, Registry};
use cscan_server::{serve, AdmissionConfig, Catalog, ServerConfig, TableConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut rows: u64 = 40_000;
    let mut admission = AdmissionConfig::default();
    let mut server_cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--rows" => rows = value("--rows").parse().expect("--rows: integer"),
            "--cap" => {
                admission.max_attached = value("--cap").parse().expect("--cap: integer");
            }
            "--queue" => {
                admission.max_queued = value("--queue").parse().expect("--queue: integer");
            }
            "--queue-timeout-ms" => {
                admission.queue_timeout = Duration::from_millis(
                    value("--queue-timeout-ms")
                        .parse()
                        .expect("--queue-timeout-ms: integer"),
                );
            }
            "--stall-timeout-ms" => {
                server_cfg.stall_timeout = Duration::from_millis(
                    value("--stall-timeout-ms")
                        .parse()
                        .expect("--stall-timeout-ms: integer"),
                );
            }
            "--no-exit-on-shutdown" => server_cfg.exit_on_shutdown = false,
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let obs = Arc::new(Registry::new());
    let mut catalog = Catalog::with_observability(Arc::clone(&obs));
    let table_cfg = TableConfig {
        admission,
        ..TableConfig::default()
    };
    catalog.add_mem_table(
        "lineitem",
        MemTable::lineitem_demo(rows, (rows / 80).max(100)),
        table_cfg.clone(),
    );
    catalog.add_mem_table(
        "orders",
        MemTable::orders_demo(rows / 2, (rows / 160).max(100)),
        table_cfg,
    );
    let catalog = Arc::new(catalog);

    let handle = match serve(Arc::clone(&catalog), addr.as_str(), server_cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();

    handle.join();

    let pinned = catalog.pinned_frames();
    println!(
        "{{\"admitted\": {}, \"queued\": {}, \"shed\": {}, \"connections\": {}, \
         \"connections_shed\": {}, \"batches_served\": {}, \"bytes_served\": {}, \
         \"pinned_frames\": {}, \"open_connections\": {}}}",
        obs.counter(Counter::AdmissionAdmitted),
        obs.counter(Counter::AdmissionQueued),
        obs.counter(Counter::AdmissionShed),
        obs.counter(Counter::ConnectionsOpened),
        obs.counter(Counter::ConnectionsShed),
        obs.counter(Counter::BatchesServed),
        obs.counter(Counter::BytesServed),
        pinned,
        obs.gauge(Gauge::OpenConnections),
    );
    if pinned != 0 {
        eprintln!("leak: {pinned} frames still pinned at shutdown");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
