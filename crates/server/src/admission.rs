//! Per-table admission control: cap attached scans, FIFO-queue the
//! overflow, shed what the queue cannot hold.
//!
//! The cooperative-scans scheduler degrades gracefully as queries attach —
//! but only down to a point: past a few dozen concurrent scans per table
//! the buffer manager's working set fragments and everyone loses.  The
//! [`Admission`] gate keeps the attached set below a configured cap and
//! turns the excess into *queueing* (bounded, FIFO, with a deadline)
//! rather than *thrashing*.  Beyond the queue bound the scan is shed
//! immediately with [`ServeError::AdmissionRejected`] so clients can back
//! off instead of piling on.
//!
//! Admission is strictly FIFO: a waiter is admitted only when it reaches
//! the queue's front and a slot is free, so a burst of arrivals drains in
//! order and no scan starves behind a later arrival.

use cscan_obs::{Counter, Gauge, Registry};
use cscan_proto::ServeError;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one table's [`Admission`] gate.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Scans allowed to be attached to the table at once.
    pub max_attached: usize,
    /// Waiters allowed to queue once the cap is reached; arrivals beyond
    /// this are shed with [`ServeError::AdmissionRejected`].
    pub max_queued: usize,
    /// How long a queued scan waits for a slot before giving up with
    /// [`ServeError::AdmissionTimeout`].
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_attached: 16,
            max_queued: 32,
            queue_timeout: Duration::from_secs(10),
        }
    }
}

/// Cross-table admission totals behind the registry's gauges.
///
/// Gauges are plain `set` cells, and several tables share one
/// [`Registry`]; each table reporting only its own occupancy would make
/// the gauge flap between per-table values.  Every [`Admission`] instead
/// bumps these shared totals and publishes the *sum*, so
/// `admitted_scans` / `admission_queue_depth` always mean "across the
/// whole catalog".
#[derive(Debug, Default)]
pub struct AdmissionTotals {
    admitted: AtomicU64,
    queued: AtomicU64,
}

impl AdmissionTotals {
    /// Fresh totals (all zero).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn admitted_delta(&self, obs: &Registry, up: bool) {
        let now = if up {
            self.admitted.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.admitted.fetch_sub(1, Ordering::Relaxed) - 1
        };
        obs.gauge_set(Gauge::AdmittedScans, now);
    }

    fn queued_delta(&self, obs: &Registry, up: bool) {
        let now = if up {
            self.queued.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.queued.fetch_sub(1, Ordering::Relaxed) - 1
        };
        obs.gauge_set(Gauge::AdmissionQueueDepth, now);
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    /// Scans currently holding a slot (attached to the table).
    active: usize,
    /// Tickets of waiters, in arrival order.
    queue: VecDeque<u64>,
    /// Next ticket to hand out.
    next_ticket: u64,
}

/// One table's admission gate.  Cheap to share: the catalog hands a clone
/// of the inner `Arc` to every connection touching the table.
#[derive(Clone)]
pub struct Admission {
    inner: Arc<AdmissionInner>,
}

struct AdmissionInner {
    cfg: AdmissionConfig,
    state: Mutex<AdmissionState>,
    cv: Condvar,
    obs: Arc<Registry>,
    totals: Arc<AdmissionTotals>,
}

impl Admission {
    /// A gate with `cfg`'s bounds, reporting into `obs` and the shared
    /// cross-table `totals`.
    pub fn new(cfg: AdmissionConfig, obs: Arc<Registry>, totals: Arc<AdmissionTotals>) -> Self {
        assert!(cfg.max_attached > 0, "admission cap must be positive");
        Admission {
            inner: Arc::new(AdmissionInner {
                cfg,
                state: Mutex::new(AdmissionState::default()),
                cv: Condvar::new(),
                obs,
                totals,
            }),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.cfg
    }

    /// Scans currently attached through this gate.
    pub fn active(&self) -> usize {
        self.inner.state.lock().active
    }

    /// Waiters currently queued at this gate.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Waits for a slot, FIFO.  Returns the RAII [`Permit`] whose drop
    /// releases the slot, or the shed/timeout condition to send the peer.
    pub fn admit(&self) -> Result<Permit, ServeError> {
        let inner = &*self.inner;
        let mut st = inner.state.lock();

        // Fast path: a free slot and nobody queued ahead of us.
        if st.active < inner.cfg.max_attached && st.queue.is_empty() {
            st.active += 1;
            inner.obs.inc(Counter::AdmissionAdmitted);
            inner.totals.admitted_delta(&inner.obs, true);
            return Ok(self.permit());
        }

        // Full queue: shed immediately rather than letting latency grow
        // without bound (the client sees a retryable error).
        if st.queue.len() >= inner.cfg.max_queued {
            inner.obs.inc(Counter::AdmissionShed);
            return Err(ServeError::AdmissionRejected);
        }

        // Queue up and wait for our ticket to reach the front.
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        inner.obs.inc(Counter::AdmissionQueued);
        inner.totals.queued_delta(&inner.obs, true);

        let deadline = Instant::now() + inner.cfg.queue_timeout;
        loop {
            if st.queue.front() == Some(&ticket) && st.active < inner.cfg.max_attached {
                st.queue.pop_front();
                st.active += 1;
                inner.totals.queued_delta(&inner.obs, false);
                inner.obs.inc(Counter::AdmissionAdmitted);
                inner.totals.admitted_delta(&inner.obs, true);
                // The next waiter may also fit (slots can free in bursts).
                inner.cv.notify_all();
                return Ok(self.permit());
            }
            let now = Instant::now();
            if now >= deadline {
                st.queue.retain(|&t| t != ticket);
                inner.totals.queued_delta(&inner.obs, false);
                inner.obs.inc(Counter::AdmissionShed);
                return Err(ServeError::AdmissionTimeout);
            }
            inner.cv.wait_for(&mut st, deadline - now);
        }
    }

    fn permit(&self) -> Permit {
        Permit {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A held admission slot.  Dropping it releases the slot and wakes the
/// queue — tie its lifetime to the scan's so a disconnect (or a shed
/// connection) can never leak a slot.
pub struct Permit {
    inner: Arc<AdmissionInner>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.active -= 1;
        self.inner.totals.admitted_delta(&self.inner.obs, false);
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn gate(max_attached: usize, max_queued: usize, timeout_ms: u64) -> Admission {
        Admission::new(
            AdmissionConfig {
                max_attached,
                max_queued,
                queue_timeout: Duration::from_millis(timeout_ms),
            },
            Arc::new(Registry::new()),
            AdmissionTotals::new(),
        )
    }

    #[test]
    fn admits_up_to_cap_then_sheds_past_queue() {
        let g = gate(2, 1, 50);
        let p1 = g.admit().expect("slot 1");
        let p2 = g.admit().expect("slot 2");
        assert_eq!(g.active(), 2);
        // Third arrival queues and times out (nobody releases).
        assert_eq!(g.admit().unwrap_err(), ServeError::AdmissionTimeout);
        drop(p1);
        let p3 = g.admit().expect("freed slot");
        drop(p2);
        drop(p3);
        assert_eq!(g.active(), 0);
    }

    #[test]
    fn full_queue_is_shed_immediately() {
        let g = gate(1, 0, 1_000);
        let _p = g.admit().expect("slot");
        let start = Instant::now();
        assert_eq!(g.admit().unwrap_err(), ServeError::AdmissionRejected);
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "rejection must not wait out the queue timeout"
        );
    }

    #[test]
    fn queue_drains_fifo_under_contention() {
        let g = gate(1, 16, 5_000);
        let first = g.admit().expect("slot");
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for i in 0..4 {
            let gate = g.clone();
            let order = Arc::clone(&order);
            threads.push(thread::spawn(move || {
                let permit = gate.admit().expect("within timeout");
                order.lock().push(i);
                drop(permit);
            }));
            // Serialize arrivals: wait until thread i is visibly queued
            // before spawning thread i+1, so FIFO order is observable.
            while g.queued() < i + 1 {
                thread::yield_now();
            }
        }
        drop(first);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3], "admission is FIFO");
    }
}
