//! Per-scan serving state: credits in, encoded `Batch` frames out.
//!
//! A [`ServerScan`] owns the executor handle, the admission [`Permit`]
//! and the client's credit balance.  Pumping is strictly non-blocking
//! ([`CScanHandle::try_next_chunk`]) and a delivered pin lives only for
//! the duration of one `encode` call — the frame is released back to the
//! buffer pool *before* the bytes ever wait on the socket.  That is the
//! invariant that keeps a stalled client from wedging the pool: its
//! unsent data sits in a bounded byte buffer, never in pinned frames.

use crate::admission::Permit;
use cscan_core::threaded::CScanHandle;
use cscan_core::{CScanPlan, ColSet};
use cscan_obs::{Counter, Registry};
use cscan_proto::{encode_batch_frame, encode_frame, Message};
use cscan_storage::ColumnId;
use std::task::Poll;

/// What one pump attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pump {
    /// A batch was encoded into the output buffer.
    Delivered,
    /// Nothing to do right now: no credit, or the executor has no chunk
    /// ready (I/O still in flight).
    Idle,
    /// The scan completed or failed; its terminal frame (`ScanDone` or
    /// `Error`) is in the output buffer and the scan should be dropped.
    Closed,
}

/// One open scan on one connection.
pub struct ServerScan {
    /// Connection-scoped id the client addresses this scan by.
    pub id: u64,
    handle: CScanHandle,
    /// Held for the scan's lifetime; dropping the scan frees the slot.
    _permit: Permit,
    /// Resolved output columns as `(wire id, storage id)` pairs.
    columns: Vec<(u16, ColumnId)>,
    credits: u32,
    done: bool,
}

impl ServerScan {
    /// Wraps an admitted, attached scan.  `served` is the table's full
    /// column set; an empty plan column set resolves to all of it.
    pub fn new(
        id: u64,
        handle: CScanHandle,
        permit: Permit,
        served: ColSet,
        plan: &CScanPlan,
    ) -> Self {
        let cols = if plan.columns.is_empty() {
            served
        } else {
            plan.columns
        };
        let columns = cols.iter().map(|c| (c.index(), c)).collect();
        ServerScan {
            id,
            handle,
            _permit: permit,
            columns,
            credits: 0,
            done: false,
        }
    }

    /// Adds client credits (saturating — a hostile peer cannot overflow).
    pub fn add_credits(&mut self, n: u32) {
        self.credits = self.credits.saturating_add(n);
    }

    /// Credits the client has outstanding.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Whether a terminal frame has been emitted for this scan.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Tries to move one batch from the executor into `out`.  Never
    /// blocks; never holds a pin beyond the encode.
    pub fn pump(&mut self, out: &mut Vec<u8>, obs: &Registry) -> Pump {
        if self.done {
            return Pump::Closed;
        }
        if self.credits == 0 {
            return Pump::Idle;
        }
        match self.handle.try_next_chunk() {
            Err(error) => {
                self.done = true;
                encode_frame(out, &Message::scan_error(self.id, error));
                Pump::Closed
            }
            Ok(Poll::Pending) => Pump::Idle,
            Ok(Poll::Ready(None)) => {
                self.done = true;
                encode_frame(out, &Message::ScanDone { scan_id: self.id });
                Pump::Closed
            }
            Ok(Poll::Ready(Some(pin))) => {
                self.credits -= 1;
                let rows = pin.rows() as u32;
                let chunk = pin.chunk().index();
                // Borrow the pinned columns just long enough to encode.
                let cols: Vec<(u16, &[i64])> = self
                    .columns
                    .iter()
                    .filter_map(|&(raw, col)| pin.column(col).map(|v| (raw, v)))
                    .collect();
                let bytes = encode_batch_frame(out, self.id, chunk, rows, &cols);
                pin.complete();
                obs.inc(Counter::BatchesServed);
                obs.add(Counter::BytesServed, bytes as u64);
                Pump::Delivered
            }
        }
    }

    /// Detaches the scan from the executor (idempotent; also runs on
    /// drop).  The permit is released when the scan is dropped.
    pub fn abort(&mut self) {
        self.done = true;
        self.handle.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, TableConfig};
    use cscan_core::ColSet;
    use cscan_exec::MemTable;
    use cscan_proto::Decoder;
    use std::time::{Duration, Instant};

    #[test]
    fn pump_respects_credits_and_closes_with_scan_done() {
        let mut cat = Catalog::new();
        cat.add_mem_table(
            "t",
            MemTable::lineitem_demo(2_000, 500),
            TableConfig::default(),
        );
        let obs = cat.observability();
        let entry = cat.get("t").unwrap();
        let plan = CScanPlan::full_table("t", ColSet::first_n(2));
        let (permit, handle) = entry.open_scan(&plan).expect("admitted");
        let mut scan = ServerScan::new(1, handle, permit, entry.served_columns(), &plan);

        let mut out = Vec::new();
        assert_eq!(scan.pump(&mut out, &obs), Pump::Idle, "no credit, no data");
        assert!(out.is_empty());

        scan.add_credits(2);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = 0;
        while delivered < 2 {
            match scan.pump(&mut out, &obs) {
                Pump::Delivered => delivered += 1,
                Pump::Idle => assert!(Instant::now() < deadline, "executor stalled"),
                Pump::Closed => panic!("4 chunks expected, closed after {delivered}"),
            }
        }
        assert_eq!(scan.credits(), 0);
        assert_eq!(scan.pump(&mut out, &obs), Pump::Idle, "credits exhausted");

        scan.add_credits(10);
        loop {
            match scan.pump(&mut out, &obs) {
                Pump::Delivered => {}
                Pump::Closed => break,
                Pump::Idle => assert!(Instant::now() < deadline, "executor stalled"),
            }
        }

        // The byte stream decodes as 4 batches then ScanDone.
        let mut dec = Decoder::new();
        dec.feed(&out);
        let mut batches = 0;
        loop {
            match dec.next_message().expect("well-formed").expect("complete") {
                Message::Batch {
                    scan_id,
                    rows,
                    columns,
                    ..
                } => {
                    assert_eq!(scan_id, 1);
                    assert_eq!(rows, 500);
                    assert_eq!(columns.len(), 2);
                    batches += 1;
                }
                Message::ScanDone { scan_id } => {
                    assert_eq!(scan_id, 1);
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(batches, 4);
        drop(scan);
        assert_eq!(cat.pinned_frames(), 0, "encode-only pin lifetime");
    }
}
