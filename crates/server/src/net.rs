//! The TCP layer: accept loop, per-connection serving threads, stall
//! shedding and server lifecycle.
//!
//! Each connection runs one thread with a non-blocking socket and three
//! duties per iteration: read requests, pump admitted scans into the
//! output buffer (round-robin, credit-gated), and flush bytes out.  Two
//! bounds protect the server from a misbehaving peer:
//!
//! * **The output buffer cap** ([`ServerConfig::outbuf_cap`]) — once a
//!   connection has that many encoded-but-unsent bytes, pumping stops.
//!   Combined with the encode-only pin lifetime in
//!   [`crate::service::ServerScan`], a stalled client holds zero pinned
//!   frames — only plain heap bytes, and a bounded amount of them.
//! * **The stall timeout** ([`ServerConfig::stall_timeout`]) — a
//!   connection that neither sends requests nor drains its socket while
//!   holding open scans (or unsent bytes) is *shed*: its scans detach,
//!   its admission slots free, and it is told why with the stable code
//!   [`ServeError::StalledConsumer`] (203).

use crate::catalog::Catalog;
use crate::service::{Pump, ServerScan};
use cscan_obs::{Counter, Gauge, Registry};
use cscan_proto::{encode_frame, Decoder, Message, ServeError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Network-layer knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent open scans allowed per connection.
    pub max_scans_per_conn: usize,
    /// Encoded-but-unsent bytes a connection may hold before pumping
    /// pauses (the per-connection memory bound).
    pub outbuf_cap: usize,
    /// How long a connection may make no progress (no reads, no write
    /// drain) while holding scans or unsent bytes before being shed.
    pub stall_timeout: Duration,
    /// Whether a client `Shutdown` frame stops the whole server (used by
    /// the CI smoke test and the benches for deterministic teardown).
    pub exit_on_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_scans_per_conn: 16,
            outbuf_cap: 8 * 1024 * 1024,
            stall_timeout: Duration::from_secs(5),
            exit_on_shutdown: true,
        }
    }
}

/// A running scan service.  Dropping the handle does *not* stop the
/// server; call [`ServerHandle::stop`] or let a client send `Shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown: the accept loop exits and every connection is
    /// told [`ServeError::ServerShutdown`] and closed.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully stopped (accept loop exited,
    /// every connection thread joined).
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves `catalog` until stopped.  Returns once the
/// listener is bound and accepting.
pub fn serve(
    catalog: Arc<Catalog>,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let open_conns = Arc::new(AtomicU64::new(0));

    let accept = {
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("cscan-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let catalog = Arc::clone(&catalog);
                            let cfg = cfg.clone();
                            let stop = Arc::clone(&stop);
                            let open_conns = Arc::clone(&open_conns);
                            conns.push(
                                thread::Builder::new()
                                    .name("cscan-conn".into())
                                    .spawn(move || {
                                        Connection::new(stream, catalog, cfg, stop, open_conns)
                                            .run()
                                    })
                                    .expect("spawn connection thread"),
                            );
                            // Opportunistically reap finished threads so a
                            // long-lived server does not accumulate handles.
                            conns.retain(|t| !t.is_finished());
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                for t in conns {
                    let _ = t.join();
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// Why the connection loop ended (drives cleanup, not the peer).
enum Exit {
    /// Peer closed, I/O error, or protocol violation.
    Closed,
    /// Drained a `Shutdown`/stop-flag goodbye; flush already attempted.
    Drained,
    /// Shed for stalling.
    Shed,
}

struct Connection {
    stream: TcpStream,
    catalog: Arc<Catalog>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    open_conns: Arc<AtomicU64>,
    obs: Arc<Registry>,
    dec: Decoder,
    /// Encoded frames awaiting the socket; `out_at` is the send offset.
    out: Vec<u8>,
    out_at: usize,
    scans: Vec<ServerScan>,
    /// Ids of scans that reached a terminal state; late frames addressed
    /// to them are ignored (`NextBatch`) or acked (`Cancel`) instead of
    /// erroring, because the client may race our `ScanDone`.
    closed_ids: Vec<u64>,
    next_scan_id: u64,
    /// Index of the next scan to pump (round-robin fairness).
    pump_at: usize,
    last_progress: Instant,
    goodbye_sent: bool,
}

impl Connection {
    fn new(
        stream: TcpStream,
        catalog: Arc<Catalog>,
        cfg: ServerConfig,
        stop: Arc<AtomicBool>,
        open_conns: Arc<AtomicU64>,
    ) -> Connection {
        let obs = catalog.observability();
        obs.inc(Counter::ConnectionsOpened);
        let now = open_conns.fetch_add(1, Ordering::Relaxed) + 1;
        obs.gauge_set(Gauge::OpenConnections, now);
        Connection {
            stream,
            catalog,
            cfg,
            stop,
            open_conns,
            obs,
            dec: Decoder::new(),
            out: Vec::new(),
            out_at: 0,
            scans: Vec::new(),
            closed_ids: Vec::new(),
            next_scan_id: 1,
            pump_at: 0,
            last_progress: Instant::now(),
            goodbye_sent: false,
        }
    }

    fn run(mut self) {
        let _ = self.stream.set_nodelay(true);
        let _ = self.stream.set_nonblocking(true);
        let exit = self.serve_loop();
        // Detach every scan; Drop releases the admission permits.
        for scan in &mut self.scans {
            scan.abort();
        }
        self.scans.clear();
        if matches!(exit, Exit::Shed) {
            self.obs.inc(Counter::ConnectionsShed);
        }
        let now = self.open_conns.fetch_sub(1, Ordering::Relaxed) - 1;
        self.obs.gauge_set(Gauge::OpenConnections, now);
    }

    fn serve_loop(&mut self) -> Exit {
        let mut read_buf = vec![0u8; 64 * 1024];
        loop {
            let mut progressed = false;

            // Server-wide stop: say goodbye once, then drain and close.
            if self.stop.load(Ordering::Acquire) && !self.goodbye_sent {
                self.goodbye_sent = true;
                for scan in &mut self.scans {
                    scan.abort();
                }
                self.scans.clear();
                self.push(&Message::serve_error(0, &ServeError::ServerShutdown));
            }

            // 1. Read whatever the peer sent.
            match self.read_some(&mut read_buf) {
                Ok(true) => progressed = true,
                Ok(false) => {}
                Err(_) => return Exit::Closed,
            }

            // 2. Act on complete frames.
            loop {
                match self.dec.next_message() {
                    Ok(Some(msg)) => {
                        progressed = true;
                        match self.handle(msg) {
                            Ok(true) => {}
                            Ok(false) => {
                                // Goodbye queued; flush then close below.
                                self.goodbye_sent = true;
                                break;
                            }
                            Err(_) => return Exit::Closed,
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Framing is broken; tell the peer why, best
                        // effort, and drop the connection.
                        self.push(&Message::serve_error(
                            0,
                            &ServeError::BadRequest(e.to_string()),
                        ));
                        self.flush_blocking(Duration::from_millis(250));
                        return Exit::Closed;
                    }
                }
            }

            // 3. Pump scans while there is credit, data and buffer room.
            if self.pump_round() {
                progressed = true;
            }

            // 4. Push bytes to the socket.
            match self.write_some() {
                Ok(true) => progressed = true,
                Ok(false) => {}
                Err(_) => return Exit::Closed,
            }

            if self.goodbye_sent && self.out_at >= self.out.len() {
                return Exit::Drained;
            }

            if progressed {
                self.last_progress = Instant::now();
            } else {
                // Stall shedding: no progress in either direction while
                // the peer holds scans or unsent bytes.
                let holding = !self.scans.is_empty() || self.out_at < self.out.len();
                if holding && self.last_progress.elapsed() > self.cfg.stall_timeout {
                    for scan in &mut self.scans {
                        scan.abort();
                        self.closed_ids.push(scan.id);
                        let id = scan.id;
                        encode_frame(
                            &mut self.out,
                            &Message::serve_error(id, &ServeError::StalledConsumer),
                        );
                    }
                    self.scans.clear();
                    if self.out_at >= self.out.len() {
                        encode_frame(
                            &mut self.out,
                            &Message::serve_error(0, &ServeError::StalledConsumer),
                        );
                    }
                    self.flush_blocking(Duration::from_millis(250));
                    return Exit::Shed;
                }
                thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Applies one request frame.  `Ok(false)` means a goodbye is queued
    /// and the connection should flush and close.
    fn handle(&mut self, msg: Message) -> Result<bool, ()> {
        match msg {
            Message::OpenScan { table, plan } => {
                if self.scans.len() >= self.cfg.max_scans_per_conn {
                    self.push(&Message::serve_error(0, &ServeError::TooManyScans));
                    return Ok(true);
                }
                let Some(entry) = self.catalog.get(&table) else {
                    self.push(&Message::serve_error(0, &ServeError::UnknownTable(table)));
                    return Ok(true);
                };
                let entry = Arc::clone(entry);
                // Flush queued frames first: admission may block this
                // thread for up to the queue timeout, and earlier replies
                // should not be held hostage behind the wait.
                let _ = self.write_some();
                match entry.open_scan(&plan) {
                    Ok((permit, handle)) => {
                        let id = self.next_scan_id;
                        self.next_scan_id += 1;
                        let num_chunks = plan.num_chunks(entry.model());
                        self.scans.push(ServerScan::new(
                            id,
                            handle,
                            permit,
                            entry.served_columns(),
                            &plan,
                        ));
                        self.push(&Message::OpenOk {
                            scan_id: id,
                            num_chunks,
                        });
                    }
                    Err(e) => self.push(&Message::serve_error(0, &e)),
                }
                Ok(true)
            }
            Message::NextBatch { scan_id, credits } => {
                if let Some(scan) = self.scans.iter_mut().find(|s| s.id == scan_id) {
                    scan.add_credits(credits);
                } else if !self.closed_ids.contains(&scan_id) {
                    self.push(&Message::serve_error(0, &ServeError::UnknownScan(scan_id)));
                }
                // Credits racing a ScanDone are silently dropped.
                Ok(true)
            }
            Message::Cancel { scan_id } => {
                if let Some(at) = self.scans.iter().position(|s| s.id == scan_id) {
                    let mut scan = self.scans.remove(at);
                    scan.abort();
                    self.closed_ids.push(scan_id);
                    self.push(&Message::CancelOk { scan_id });
                } else if self.closed_ids.contains(&scan_id) {
                    // Cancel raced our ScanDone/Error; ack idempotently.
                    self.push(&Message::CancelOk { scan_id });
                } else {
                    self.push(&Message::serve_error(0, &ServeError::UnknownScan(scan_id)));
                }
                Ok(true)
            }
            Message::Shutdown => {
                for scan in &mut self.scans {
                    scan.abort();
                    self.closed_ids.push(scan.id);
                }
                self.scans.clear();
                self.push(&Message::ShutdownOk);
                if self.cfg.exit_on_shutdown {
                    self.stop.store(true, Ordering::Release);
                }
                Ok(false)
            }
            // Server-to-client frames arriving here are a protocol abuse.
            _ => {
                self.push(&Message::serve_error(
                    0,
                    &ServeError::BadRequest("unexpected server-side frame".into()),
                ));
                self.flush_blocking(Duration::from_millis(250));
                Err(())
            }
        }
    }

    /// One fair round over all scans: keep pumping until nobody can make
    /// progress or the output buffer reaches its cap.
    fn pump_round(&mut self) -> bool {
        let mut any = false;
        loop {
            if self.scans.is_empty() || self.unsent() >= self.cfg.outbuf_cap {
                return any;
            }
            let mut delivered = false;
            let mut idx = 0;
            while idx < self.scans.len() {
                if self.unsent() >= self.cfg.outbuf_cap {
                    break;
                }
                let at = (self.pump_at + idx) % self.scans.len();
                match self.scans[at].pump(&mut self.out, &self.obs) {
                    Pump::Delivered => {
                        delivered = true;
                        any = true;
                        idx += 1;
                    }
                    Pump::Idle => idx += 1,
                    Pump::Closed => {
                        any = true;
                        let closed = self.scans.remove(at);
                        self.closed_ids.push(closed.id);
                        // Restart the round: indices shifted.
                        break;
                    }
                }
            }
            self.pump_at = if self.scans.is_empty() {
                0
            } else {
                (self.pump_at + 1) % self.scans.len()
            };
            if !delivered {
                return any;
            }
        }
    }

    fn unsent(&self) -> usize {
        self.out.len() - self.out_at
    }

    fn push(&mut self, msg: &Message) {
        encode_frame(&mut self.out, msg);
    }

    /// Non-blocking read; `Ok(true)` if any bytes arrived.
    fn read_some(&mut self, buf: &mut [u8]) -> Result<bool, ()> {
        let mut got = false;
        loop {
            match self.stream.read(buf) {
                Ok(0) => return if got { Ok(got) } else { Err(()) },
                Ok(n) => {
                    self.dec.feed(&buf[..n]);
                    got = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(got),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Non-blocking write; `Ok(true)` if any bytes drained.
    fn write_some(&mut self) -> Result<bool, ()> {
        let mut wrote = false;
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.out_at += n;
                    wrote = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        // Compact once everything (or a large prefix) is sent.
        if self.out_at >= self.out.len() {
            self.out.clear();
            self.out_at = 0;
        } else if self.out_at > 256 * 1024 {
            self.out.drain(..self.out_at);
            self.out_at = 0;
        }
        Ok(wrote)
    }

    /// Best-effort bounded flush used on goodbye paths (the socket may be
    /// full — that is often *why* we are leaving).
    fn flush_blocking(&mut self, budget: Duration) {
        let deadline = Instant::now() + budget;
        while self.out_at < self.out.len() && Instant::now() < deadline {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => return,
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}
