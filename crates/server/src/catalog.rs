//! The multi-table catalog: name → scan server + admission gate.
//!
//! Each table owns a full threaded [`ScanServer`] (its own buffer pool,
//! I/O threads and ABM scheduler) plus an [`Admission`] gate, all
//! reporting into one shared [`Registry`] so the service's metrics read
//! as a single plane.  A table can be backed by anything that implements
//! [`ChunkStore`]: an in-memory [`MemTable`], a segment file on disk
//! ([`FileStore`]), or a caller-supplied store.

use crate::admission::{Admission, AdmissionConfig, AdmissionTotals, Permit};
use cscan_core::threaded::{CScanHandle, ScanServer};
use cscan_core::{CScanPlan, ColSet, PolicyKind, TableModel};
use cscan_exec::MemTable;
use cscan_obs::Registry;
use cscan_proto::ServeError;
use cscan_storage::segment::FileStore;
use cscan_storage::{ChunkId, ChunkStore, DEFAULT_PAGE_SIZE};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Per-table build knobs (executor sizing plus the admission gate).
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Scheduling policy for the table's ABM.
    pub policy: PolicyKind,
    /// Buffer-pool size in chunks.
    pub buffer_chunks: u64,
    /// I/O worker threads.
    pub io_threads: usize,
    /// Simulated cost per page read (zero for real stores).
    pub io_cost_per_page: Duration,
    /// Admission bounds for the table.
    pub admission: AdmissionConfig,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            policy: PolicyKind::Relevance,
            buffer_chunks: 16,
            io_threads: 2,
            io_cost_per_page: Duration::ZERO,
            admission: AdmissionConfig::default(),
        }
    }
}

/// One served table: its model, executor and admission gate.
pub struct TableEntry {
    name: String,
    model: TableModel,
    /// The columns the *store* can materialize.  Distinct from the
    /// model's column count: synthetic NSM models fold all columns into
    /// one page column for scheduling, but the store still delivers the
    /// real width.
    columns: ColSet,
    server: ScanServer,
    admission: Admission,
}

impl TableEntry {
    /// The catalog name clients address the table by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's logical layout (chunks, columns, page counts).
    pub fn model(&self) -> &TableModel {
        &self.model
    }

    /// The table's threaded scan server.
    pub fn server(&self) -> &ScanServer {
        &self.server
    }

    /// The table's admission gate.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The columns the table can serve (an empty plan column set resolves
    /// to all of these).
    pub fn served_columns(&self) -> ColSet {
        self.columns
    }

    /// Admits the scan (FIFO, may block up to the queue timeout) and
    /// attaches it.  The returned [`Permit`] must outlive the handle: the
    /// caller stores both so dropping the scan frees the slot.
    pub fn open_scan(&self, plan: &CScanPlan) -> Result<(Permit, CScanHandle), ServeError> {
        self.validate(plan)?;
        let permit = self.admission.admit()?;
        // The executor schedules over the *model's* columns; project the
        // requested set into them (a synthetic NSM model folds the whole
        // chunk into one page column, and its loads materialize every
        // store column anyway).  The wire-level column selection is
        // applied at encode time from the original plan.
        let mut exec_plan = plan.clone();
        exec_plan.columns = plan.columns.intersect(self.model.all_columns());
        let handle = self.server.cscan(exec_plan);
        Ok((permit, handle))
    }

    /// Rejects plans that reference chunks or columns the table lacks —
    /// the wire lets a client ask for anything, so the catalog is where
    /// impossible requests become [`ServeError::BadRequest`].
    fn validate(&self, plan: &CScanPlan) -> Result<(), ServeError> {
        if let Some(ranges) = &plan.ranges {
            for r in ranges.ranges() {
                if r.end > self.model.num_chunks() {
                    return Err(ServeError::BadRequest(format!(
                        "range {}..{} past table end ({} chunks)",
                        r.start,
                        r.end,
                        self.model.num_chunks()
                    )));
                }
            }
        }
        if !plan.columns.is_subset_of(self.columns) {
            return Err(ServeError::BadRequest(format!(
                "column set {:?} not within the table's {} columns",
                plan.columns,
                self.columns.len()
            )));
        }
        Ok(())
    }
}

/// Name → table map for the scan service.  Built once at startup, then
/// shared immutably across every connection thread.
pub struct Catalog {
    obs: Arc<Registry>,
    totals: Arc<AdmissionTotals>,
    tables: Vec<Arc<TableEntry>>,
}

impl Catalog {
    /// An empty catalog with its own metrics registry.
    pub fn new() -> Self {
        Self::with_observability(Arc::new(Registry::new()))
    }

    /// An empty catalog reporting into `obs`.
    pub fn with_observability(obs: Arc<Registry>) -> Self {
        Catalog {
            obs,
            totals: AdmissionTotals::new(),
            tables: Vec::new(),
        }
    }

    /// The registry every table and the network layer report into.
    pub fn observability(&self) -> Arc<Registry> {
        Arc::clone(&self.obs)
    }

    /// Serves `table` (an in-memory chunk store) under `name`.  The model
    /// is derived from the table's own shape.
    pub fn add_mem_table(&mut self, name: impl Into<String>, table: MemTable, cfg: TableConfig) {
        let chunks = table.num_chunks();
        let (start, end) = table.chunk_rows(ChunkId::new(0));
        let tuples_per_chunk = (end - start).max(1);
        // 16 pages/chunk matches the in-memory benches: enough that the
        // scheduler's page accounting is meaningful, cheap enough that
        // admission — not I/O modelling — is what's under test.
        let model = TableModel::nsm_uniform(chunks, tuples_per_chunk, 16);
        let columns = ColSet::first_n(table.width() as u16);
        self.add_store(name, Arc::new(table), model, columns, cfg);
    }

    /// Serves an explicit `store`/`model` pair under `name`.  `columns`
    /// is the set the store can materialize ([`ChunkStore`] itself does
    /// not expose a width, and synthetic NSM models under-report it).
    pub fn add_store(
        &mut self,
        name: impl Into<String>,
        store: Arc<dyn ChunkStore>,
        model: TableModel,
        columns: ColSet,
        cfg: TableConfig,
    ) {
        let name = name.into();
        let server = ScanServer::builder(model.clone())
            .policy(cfg.policy)
            .buffer_chunks(cfg.buffer_chunks.max(2))
            .io_threads(cfg.io_threads)
            .io_cost_per_page(cfg.io_cost_per_page)
            .store(store)
            .observability(Arc::clone(&self.obs))
            .table_label(name.clone())
            .build();
        let admission = Admission::new(
            cfg.admission,
            Arc::clone(&self.obs),
            Arc::clone(&self.totals),
        );
        self.tables.push(Arc::new(TableEntry {
            name,
            model,
            columns,
            server,
            admission,
        }));
    }

    /// Serves the segment file at `path` under `name`.  The model comes
    /// from the segment's footer directory, so scheduling reflects the
    /// real on-disk extent sizes.
    pub fn add_segment(
        &mut self,
        name: impl Into<String>,
        path: &Path,
        cfg: TableConfig,
    ) -> io::Result<()> {
        let store = FileStore::open(path)?.with_observability(Arc::clone(&self.obs));
        let model = model_from_segment(&store);
        let columns = ColSet::first_n(store.num_columns());
        self.add_store(name, Arc::new(store), model, columns, cfg);
        Ok(())
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<TableEntry>> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All tables, in registration order.
    pub fn tables(&self) -> &[Arc<TableEntry>] {
        &self.tables
    }

    /// Buffer frames currently pinned across every table — the leak check
    /// the benches assert reaches zero after all clients disconnect.
    pub fn pinned_frames(&self) -> usize {
        self.tables.iter().map(|t| t.server.pinned_frames()).sum()
    }

    /// Pins dropped without an explicit consume, summed across tables.
    pub fn unconsumed_drops(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| t.server.unconsumed_drops())
            .sum()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

/// Derives a [`TableModel`] from a segment's footer directory: chunk count
/// and rows straight from the directory, pages-per-chunk from the actual
/// on-disk extent bytes (compressed segments model proportionally less
/// I/O).  Mirrors the bench-side bridge so served segment tables schedule
/// exactly like local ones.
pub fn model_from_segment(store: &FileStore) -> TableModel {
    let dir = store.directory();
    let chunks = dir.num_chunks();
    let rows = dir.chunk_rows(ChunkId::new(0)).unwrap_or(1).max(1);
    let pages = (0..chunks)
        .map(|c| {
            dir.chunk_bytes(ChunkId::new(c), None)
                .div_ceil(DEFAULT_PAGE_SIZE)
        })
        .max()
        .unwrap_or(1)
        .max(1);
    TableModel::nsm_uniform(chunks, rows, pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_core::ColSet;
    use cscan_storage::ScanRanges;

    fn demo_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_mem_table(
            "lineitem",
            MemTable::lineitem_demo(4_000, 500),
            TableConfig::default(),
        );
        cat.add_mem_table(
            "orders",
            MemTable::orders_demo(2_000, 500),
            TableConfig::default(),
        );
        cat
    }

    #[test]
    fn lookup_finds_registered_tables_only() {
        let cat = demo_catalog();
        assert!(cat.get("lineitem").is_some());
        assert!(cat.get("orders").is_some());
        assert!(cat.get("nope").is_none());
        assert_eq!(cat.tables().len(), 2);
    }

    #[test]
    fn open_scan_streams_the_table_and_releases_everything() {
        let cat = demo_catalog();
        let t = cat.get("lineitem").unwrap();
        let plan = CScanPlan::full_table("t", ColSet::first_n(2));
        let (permit, handle) = t.open_scan(&plan).expect("admitted");
        let mut chunks = 0;
        while let Some(pin) = handle.next_chunk().expect("clean scan") {
            assert!(pin.rows() > 0);
            pin.complete();
            chunks += 1;
        }
        assert_eq!(chunks, t.model().num_chunks());
        drop(handle);
        drop(permit);
        assert_eq!(t.admission().active(), 0, "permit released");
        assert_eq!(cat.pinned_frames(), 0, "no leaked pins");
    }

    #[test]
    fn impossible_plans_are_rejected_before_admission() {
        let cat = demo_catalog();
        let t = cat.get("orders").unwrap();
        let past_end = CScanPlan::new(
            "bad",
            ScanRanges::single(0, t.model().num_chunks() + 5),
            ColSet::empty(),
        );
        assert!(matches!(
            t.open_scan(&past_end),
            Err(ServeError::BadRequest(_))
        ));
        let bad_cols = CScanPlan::full_table("bad", ColSet::first_n(40));
        assert!(matches!(
            t.open_scan(&bad_cols),
            Err(ServeError::BadRequest(_))
        ));
        assert_eq!(t.admission().active(), 0, "rejects never admit");
    }
}
