//! The Cooperative Scans network service.
//!
//! This crate turns the single-process scan executor into a served
//! system: a [`Catalog`] maps table names to per-table
//! [`ScanServer`](cscan_core::threaded::ScanServer)s, an [`Admission`]
//! gate bounds how many scans may attach to each table (FIFO queue, then
//! shed), and [`serve`] runs the wire protocol from [`cscan_proto`] over
//! TCP with credit-based batch streaming.
//!
//! The design splits cleanly by what can hurt the server:
//!
//! * [`admission`] — too many *scans*: cap, queue, shed.
//! * [`service`] — too many *pins*: a delivered chunk is pinned only for
//!   the microseconds it takes to encode, never while bytes wait on a
//!   socket.
//! * [`net`] — too many *bytes* and too little *progress*: a bounded
//!   per-connection output buffer, and stall-shedding for peers that
//!   stop reading while holding scans.
//!
//! The `cscan_serve` binary wires a demo catalog to a listener; the
//! `cscan_client` crate is the matching consumer.

#![warn(missing_docs)]

pub mod admission;
pub mod catalog;
pub mod net;
pub mod service;

pub use admission::{Admission, AdmissionConfig, AdmissionTotals, Permit};
pub use catalog::{model_from_segment, Catalog, TableConfig, TableEntry};
pub use net::{serve, ServerConfig, ServerHandle};
pub use service::{Pump, ServerScan};
