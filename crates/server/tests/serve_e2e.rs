//! End-to-end service tests over loopback TCP: open/stream/cancel,
//! catalog misses, admission shedding, and clean teardown.

use cscan_client::{ClientError, ScanClient};
use cscan_core::{CScanPlan, ColSet};
use cscan_exec::MemTable;
use cscan_proto::ServeError;
use cscan_server::{serve, AdmissionConfig, Catalog, ServerConfig, TableConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn demo_server(admission: AdmissionConfig) -> (Arc<Catalog>, cscan_server::ServerHandle) {
    let mut catalog = Catalog::new();
    let cfg = TableConfig {
        admission,
        buffer_chunks: 8,
        ..TableConfig::default()
    };
    catalog.add_mem_table(
        "lineitem",
        MemTable::lineitem_demo(16_000, 500),
        cfg.clone(),
    );
    catalog.add_mem_table("orders", MemTable::orders_demo(4_000, 500), cfg);
    let catalog = Arc::new(catalog);
    let handle = serve(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            exit_on_shutdown: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    (catalog, handle)
}

#[test]
fn full_scan_streams_every_chunk_once() {
    let (catalog, handle) = demo_server(AdmissionConfig::default());
    let addr = handle.addr();

    let mut client = ScanClient::connect(addr).expect("connect");
    let mut scan = client
        .open_scan("lineitem", CScanPlan::full_table("q", ColSet::first_n(2)))
        .expect("admitted");
    assert_eq!(scan.num_chunks(), 32);
    let mut chunks_seen = Vec::new();
    let mut rows = 0u64;
    while let Some(batch) = scan.next_batch().expect("clean stream") {
        assert_eq!(batch.rows, 500);
        assert_eq!(batch.columns.len(), 2);
        assert_eq!(batch.column(0).unwrap().len(), 500);
        chunks_seen.push(batch.chunk);
        rows += batch.rows as u64;
    }
    assert_eq!(rows, 16_000);
    chunks_seen.sort_unstable();
    chunks_seen.dedup();
    assert_eq!(chunks_seen.len(), 32, "each chunk delivered exactly once");

    drop(scan);
    drop(client);
    wait_for_zero_pins(&catalog);
    handle.stop();
    handle.join();
}

#[test]
fn two_tables_serve_concurrently_on_one_catalog() {
    let (catalog, handle) = demo_server(AdmissionConfig::default());
    let addr: SocketAddr = handle.addr();

    let threads: Vec<_> = [("lineitem", 16_000u64), ("orders", 4_000u64)]
        .into_iter()
        .map(|(table, want_rows)| {
            std::thread::spawn(move || {
                let mut client = ScanClient::connect(addr).expect("connect");
                let mut scan = client
                    .open_scan(table, CScanPlan::full_table("q", ColSet::empty()))
                    .expect("admitted");
                let mut rows = 0u64;
                while let Some(batch) = scan.next_batch().expect("clean stream") {
                    rows += batch.rows as u64;
                }
                assert_eq!(rows, want_rows, "{table}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    wait_for_zero_pins(&catalog);
    handle.stop();
    handle.join();
}

#[test]
fn cancel_mid_scan_frees_the_slot_and_connection_stays_usable() {
    let (catalog, handle) = demo_server(AdmissionConfig {
        max_attached: 1,
        max_queued: 0,
        queue_timeout: Duration::from_millis(100),
    });

    let mut client = ScanClient::connect(handle.addr()).expect("connect");
    let mut scan = client
        .open_scan("lineitem", CScanPlan::full_table("q", ColSet::first_n(1)))
        .expect("admitted");
    let first = scan.next_batch().expect("one batch").expect("not done");
    assert_eq!(first.rows, 500);
    scan.cancel().expect("cancel acknowledged");

    // The single admission slot must be free again: with cap 1 and no
    // queue, a second scan on the same connection succeeds only if the
    // cancel released its permit.
    let mut scan = client
        .open_scan("lineitem", CScanPlan::full_table("q2", ColSet::first_n(1)))
        .expect("slot was released by cancel");
    let mut rows = 0u64;
    while let Some(batch) = scan.next_batch().expect("clean stream") {
        rows += batch.rows as u64;
    }
    assert_eq!(rows, 16_000);

    drop(scan);
    drop(client);
    wait_for_zero_pins(&catalog);
    handle.stop();
    handle.join();
}

#[test]
fn dropped_scan_cancels_lazily_and_client_recovers() {
    let (catalog, handle) = demo_server(AdmissionConfig {
        max_attached: 1,
        max_queued: 0,
        queue_timeout: Duration::from_millis(100),
    });

    let mut client = ScanClient::connect(handle.addr()).expect("connect");
    {
        let mut scan = client
            .open_scan("lineitem", CScanPlan::full_table("q", ColSet::first_n(1)))
            .expect("admitted");
        let _ = scan.next_batch().expect("one batch");
        // Dropped mid-stream: Cancel is sent, the tail drains lazily.
    }
    let mut scan = client
        .open_scan("orders", CScanPlan::full_table("q2", ColSet::empty()))
        .expect("connection usable after dropped scan");
    let mut rows = 0u64;
    while let Some(batch) = scan.next_batch().expect("clean stream") {
        rows += batch.rows as u64;
    }
    assert_eq!(rows, 4_000);

    drop(scan);
    drop(client);
    wait_for_zero_pins(&catalog);
    handle.stop();
    handle.join();
}

#[test]
fn unknown_table_and_bad_plan_are_typed_errors() {
    let (_catalog, handle) = demo_server(AdmissionConfig::default());

    let mut client = ScanClient::connect(handle.addr()).expect("connect");
    match client.open_scan("no_such_table", CScanPlan::full_table("q", ColSet::empty())) {
        Err(ClientError::Serve(ServeError::UnknownTable(name))) => {
            assert_eq!(name, "unknown table \"no_such_table\"");
        }
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    match client.open_scan("lineitem", CScanPlan::full_table("q", ColSet::first_n(40))) {
        Err(ClientError::Serve(ServeError::BadRequest(_))) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection survives typed refusals.
    let mut scan = client
        .open_scan("orders", CScanPlan::full_table("q", ColSet::empty()))
        .expect("connection still usable");
    assert!(scan.next_batch().expect("streams").is_some());
    scan.cancel().expect("cancel");

    handle.stop();
    handle.join();
}

#[test]
fn admission_cap_sheds_excess_with_retryable_error() {
    let (catalog, handle) = demo_server(AdmissionConfig {
        max_attached: 1,
        max_queued: 0,
        queue_timeout: Duration::from_millis(100),
    });

    let mut holder = ScanClient::connect(handle.addr()).expect("connect");
    let held = holder
        .open_scan(
            "lineitem",
            CScanPlan::full_table("hold", ColSet::first_n(1)),
        )
        .expect("first scan admitted");

    let mut second = ScanClient::connect(handle.addr()).expect("connect");
    match second.open_scan(
        "lineitem",
        CScanPlan::full_table("shed", ColSet::first_n(1)),
    ) {
        Err(e @ ClientError::Serve(ServeError::AdmissionRejected)) => {
            assert!(e.is_retryable(), "shedding must be retryable");
        }
        other => panic!("expected AdmissionRejected, got {other:?}"),
    }
    let obs = catalog.observability();
    assert!(
        obs.counter(cscan_obs::Counter::AdmissionShed) >= 1,
        "shed is counted"
    );

    // Once the holder finishes, the shed client's retry succeeds.
    held.cancel().expect("cancel");
    let mut scan = second
        .open_scan(
            "lineitem",
            CScanPlan::full_table("retry", ColSet::first_n(1)),
        )
        .expect("retry after shed");
    assert!(scan.next_batch().expect("streams").is_some());
    scan.cancel().expect("cancel");

    drop(holder);
    drop(second);
    wait_for_zero_pins(&catalog);
    handle.stop();
    handle.join();
}

/// Pins are released on scan/connection teardown, but the server threads
/// race the test's asserts; poll briefly before declaring a leak.
fn wait_for_zero_pins(catalog: &Catalog) {
    for _ in 0..200 {
        if catalog.pinned_frames() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(catalog.pinned_frames(), 0, "pinned frames leaked");
}
