//! The stalled-consumer scenario: one client stops reading mid-scan while
//! eight others keep streaming.  The server must (a) keep the victims
//! flowing — the stalled peer holds heap bytes, never pinned frames —
//! (b) shed the stalled connection with the distinct stable code 203
//! ([`ServeError::StalledConsumer`]), and (c) end with zero pinned frames
//! once everyone is gone.

use cscan_client::{ClientError, ScanClient};
use cscan_core::{CScanPlan, ColSet};
use cscan_exec::MemTable;
use cscan_obs::Counter;
use cscan_proto::ServeError;
use cscan_server::{serve, AdmissionConfig, Catalog, ServerConfig, TableConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VICTIMS: usize = 8;
const SCANS_PER_VICTIM: usize = 3;

#[test]
fn stalled_consumer_is_shed_while_victims_stream() {
    let mut catalog = Catalog::new();
    catalog.add_mem_table(
        "lineitem",
        MemTable::lineitem_demo(32_000, 500), // 64 chunks
        TableConfig {
            // Tight pool: if the stalled scan pinned frames for its unsent
            // batches, victims would wedge; encode-only pins keep it safe.
            buffer_chunks: 8,
            admission: AdmissionConfig {
                max_attached: VICTIMS + 4,
                max_queued: 8,
                queue_timeout: Duration::from_secs(5),
            },
            ..TableConfig::default()
        },
    );
    let catalog = Arc::new(catalog);
    let obs = catalog.observability();
    let handle = serve(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            stall_timeout: Duration::from_millis(400),
            exit_on_shutdown: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // The stalled consumer: pulls two batches, then goes quiet holding an
    // open scan (credits outstanding, socket unread).
    let stalled = std::thread::spawn(move || {
        let mut client = ScanClient::connect(addr).expect("connect");
        let mut scan = client
            .open_scan(
                "lineitem",
                CScanPlan::full_table("stall", ColSet::first_n(2)),
            )
            .expect("admitted");
        for _ in 0..2 {
            scan.next_batch().expect("streams before the stall");
        }
        std::thread::sleep(Duration::from_millis(1_500));
        // Well past the stall timeout: drain what the server buffered for
        // us; the stream must end in the distinct shed error.
        loop {
            match scan.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("stalled scan ended cleanly instead of being shed"),
                Err(ClientError::Serve(ServeError::StalledConsumer)) => break,
                // The server may already have torn the socket down.
                Err(ClientError::Io(_)) => break,
                Err(other) => panic!("expected StalledConsumer, got {other:?}"),
            }
        }
    });

    // Eight victims scanning concurrently, repeatedly, measuring per-scan
    // wall time.
    let victims: Vec<_> = (0..VICTIMS)
        .map(|v| {
            std::thread::spawn(move || {
                let mut worst = Duration::ZERO;
                for s in 0..SCANS_PER_VICTIM {
                    let start = Instant::now();
                    let mut client = ScanClient::connect(addr).expect("connect");
                    let mut scan = client
                        .open_scan(
                            "lineitem",
                            CScanPlan::full_table(format!("v{v}-{s}"), ColSet::first_n(2)),
                        )
                        .expect("victim admitted");
                    let mut rows = 0u64;
                    while let Some(batch) = scan.next_batch().expect("victim streams clean") {
                        rows += batch.rows as u64;
                    }
                    assert_eq!(rows, 32_000, "victim {v} scan {s} saw the whole table");
                    worst = worst.max(start.elapsed());
                }
                worst
            })
        })
        .collect();

    let worst_scan = victims
        .into_iter()
        .map(|t| t.join().expect("victim thread"))
        .max()
        .unwrap();
    stalled.join().expect("stalled thread");

    // The victims' tail latency stays bounded: nowhere near the stall
    // timeout, let alone the stalled client's 1.5 s nap.  Generous bound
    // to stay robust on loaded CI machines.
    assert!(
        worst_scan < Duration::from_secs(10),
        "victim scans stalled behind the dead consumer: worst {worst_scan:?}"
    );

    assert!(
        obs.counter(Counter::ConnectionsShed) >= 1,
        "the stalled connection was shed"
    );
    assert!(
        obs.counter(Counter::AdmissionAdmitted) >= (VICTIMS * SCANS_PER_VICTIM + 1) as u64,
        "every scan passed through admission"
    );

    // Everyone is gone: nothing stays pinned.
    for _ in 0..200 {
        if catalog.pinned_frames() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(catalog.pinned_frames(), 0, "pinned frames leaked");

    handle.stop();
    handle.join();
}
