//! Serving-layer error conditions and their stable wire codes.

use cscan_core::ScanError;

/// Why the scan service refused or tore down a request.
///
/// Wire codes are append-only contracts: `200..=299` belongs to this enum,
/// `1..=99` to [`cscan_storage::StoreError`], and
/// [`ScanError::WIRE_CODE`] (100) to failed scans.  The enum is
/// `#[non_exhaustive]` — new conditions claim fresh codes, and decoders
/// keep unknown codes as [`ServeError::Other`] instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The catalog has no table by this name.
    UnknownTable(String),
    /// Admission control shed the scan outright: the table's attach cap is
    /// reached and its wait queue is full.
    AdmissionRejected,
    /// The scan queued for admission but timed out before a slot freed.
    AdmissionTimeout,
    /// The connection stopped consuming (no credit or no socket reads)
    /// while holding open scans; the server shed it to protect the pool.
    StalledConsumer,
    /// A frame referenced a scan id this connection does not own.
    UnknownScan(u64),
    /// The request was structurally valid but semantically unusable.
    BadRequest(String),
    /// The server is shutting down; no new scans are admitted.
    ServerShutdown,
    /// The connection has reached its concurrent-scan cap.
    TooManyScans,
    /// An error code minted by a newer peer; kept verbatim.
    Other(u16, String),
}

impl ServeError {
    /// Code for [`ServeError::UnknownTable`].
    pub const CODE_UNKNOWN_TABLE: u16 = 200;
    /// Code for [`ServeError::AdmissionRejected`].
    pub const CODE_ADMISSION_REJECTED: u16 = 201;
    /// Code for [`ServeError::AdmissionTimeout`].
    pub const CODE_ADMISSION_TIMEOUT: u16 = 202;
    /// Code for [`ServeError::StalledConsumer`].
    pub const CODE_STALLED_CONSUMER: u16 = 203;
    /// Code for [`ServeError::UnknownScan`].
    pub const CODE_UNKNOWN_SCAN: u16 = 204;
    /// Code for [`ServeError::BadRequest`].
    pub const CODE_BAD_REQUEST: u16 = 205;
    /// Code for [`ServeError::ServerShutdown`].
    pub const CODE_SERVER_SHUTDOWN: u16 = 206;
    /// Code for [`ServeError::TooManyScans`].
    pub const CODE_TOO_MANY_SCANS: u16 = 207;

    /// The stable wire code this condition travels as.
    pub fn wire_code(&self) -> u16 {
        match self {
            ServeError::UnknownTable(_) => Self::CODE_UNKNOWN_TABLE,
            ServeError::AdmissionRejected => Self::CODE_ADMISSION_REJECTED,
            ServeError::AdmissionTimeout => Self::CODE_ADMISSION_TIMEOUT,
            ServeError::StalledConsumer => Self::CODE_STALLED_CONSUMER,
            ServeError::UnknownScan(_) => Self::CODE_UNKNOWN_SCAN,
            ServeError::BadRequest(_) => Self::CODE_BAD_REQUEST,
            ServeError::ServerShutdown => Self::CODE_SERVER_SHUTDOWN,
            ServeError::TooManyScans => Self::CODE_TOO_MANY_SCANS,
            ServeError::Other(code, _) => *code,
        }
    }

    /// Rebuilds the condition a `(code, detail)` pair names.  Codes below
    /// 200 (storage and scan errors) and codes this build has never heard
    /// of come back as [`ServeError::Other`] — decoding never fails.
    pub fn from_wire(code: u16, detail: &str) -> ServeError {
        match code {
            Self::CODE_UNKNOWN_TABLE => ServeError::UnknownTable(detail.to_owned()),
            Self::CODE_ADMISSION_REJECTED => ServeError::AdmissionRejected,
            Self::CODE_ADMISSION_TIMEOUT => ServeError::AdmissionTimeout,
            Self::CODE_STALLED_CONSUMER => ServeError::StalledConsumer,
            Self::CODE_UNKNOWN_SCAN => ServeError::UnknownScan(0),
            Self::CODE_BAD_REQUEST => ServeError::BadRequest(detail.to_owned()),
            Self::CODE_SERVER_SHUTDOWN => ServeError::ServerShutdown,
            Self::CODE_TOO_MANY_SCANS => ServeError::TooManyScans,
            other => ServeError::Other(other, detail.to_owned()),
        }
    }

    /// Whether the client could reasonably retry the request later (load
    /// shedding and shutdown are transient states; a missing table is not).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::AdmissionRejected
                | ServeError::AdmissionTimeout
                | ServeError::TooManyScans
                | ServeError::ServerShutdown
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            ServeError::AdmissionRejected => {
                write!(f, "admission rejected: table at capacity, queue full")
            }
            ServeError::AdmissionTimeout => {
                write!(f, "admission timed out waiting for a scan slot")
            }
            ServeError::StalledConsumer => {
                write!(f, "connection shed: consumer stalled with open scans")
            }
            ServeError::UnknownScan(id) => write!(f, "unknown scan id {id}"),
            ServeError::BadRequest(what) => write!(f, "bad request: {what}"),
            ServeError::ServerShutdown => write!(f, "server shutting down"),
            ServeError::TooManyScans => write!(f, "too many concurrent scans on connection"),
            ServeError::Other(code, detail) => write!(f, "server error {code}: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ScanError> for ServeError {
    fn from(e: ScanError) -> Self {
        // A scan failure travels with its own code (100); this conversion
        // exists for contexts that can only carry a ServeError.
        ServeError::Other(ScanError::WIRE_CODE, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_round_trip_and_stay_distinct() {
        let all = [
            ServeError::UnknownTable("t".into()),
            ServeError::AdmissionRejected,
            ServeError::AdmissionTimeout,
            ServeError::StalledConsumer,
            ServeError::UnknownScan(0),
            ServeError::BadRequest("x".into()),
            ServeError::ServerShutdown,
            ServeError::TooManyScans,
        ];
        let mut codes: Vec<u16> = all.iter().map(|e| e.wire_code()).collect();
        for (e, code) in all.iter().zip(codes.clone()) {
            assert!((200..=299).contains(&code), "serve errors own 200-299");
            let back = ServeError::from_wire(code, "t");
            assert_eq!(back.wire_code(), e.wire_code());
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "codes are pairwise distinct");
    }

    #[test]
    fn unknown_codes_survive_as_other() {
        let e = ServeError::from_wire(299, "from the future");
        assert_eq!(e, ServeError::Other(299, "from the future".into()));
        assert_eq!(e.wire_code(), 299);
    }

    #[test]
    fn retryability_matches_load_shedding_semantics() {
        assert!(ServeError::AdmissionRejected.is_retryable());
        assert!(ServeError::AdmissionTimeout.is_retryable());
        assert!(!ServeError::UnknownTable("t".into()).is_retryable());
        assert!(!ServeError::StalledConsumer.is_retryable());
    }
}
