//! The scan service's binary wire protocol.
//!
//! One scan over the network is a conversation of length-prefixed frames:
//! the client opens a scan with a [`CScanPlan`] against a named catalog
//! table (`OpenScan`), pulls column batches with explicit credits
//! (`NextBatch` → a stream of `Batch` frames, ending in `ScanDone`), and
//! may abandon the scan early (`Cancel`).  The server answers failures
//! with `Error` frames carrying **stable `u16` codes** — storage errors
//! own 1–99 ([`StoreError::wire_code`]), a failed scan is
//! [`ScanError::WIRE_CODE`] (100) with the chunk and cause in the payload,
//! and the serving layer's own conditions (admission control, stalled
//! consumers, catalog misses) own 200+ via [`ServeError`].
//!
//! # Framing
//!
//! ```text
//! [u32 len (LE)] [u8 msg_type] [body: len-1 bytes]
//! ```
//!
//! `len` counts the type byte plus the body, so an empty-bodied message is
//! `len = 1`.  Frames larger than [`MAX_FRAME_LEN`] are a protocol error
//! (they would let a malicious peer make the other side allocate
//! unboundedly).  All integers are little-endian; strings are `u32` length
//! + UTF-8 bytes; column values travel as raw `i64` words.
//!
//! Both sides parse with [`Decoder`]: feed it bytes as they arrive, take
//! complete [`Message`]s out.  Everything here is pure byte-shuffling —
//! no sockets — so the encode/decode paths round-trip in unit tests
//! without a server.

#![warn(missing_docs)]

use cscan_core::{CScanPlan, ColSet, ScanError};
use cscan_storage::{ChunkId, ChunkRange, ColumnId, ScanRanges, StoreError};

mod error;
pub use error::ServeError;

/// Upper bound on one frame's `len` field (type byte + body).  Chosen to
/// fit any realistic column batch (a 64-column × 64Ki-row chunk of `i64`s
/// is 32 MiB) with headroom, while bounding what a peer can make us buffer.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Sentinel chunk index in `Error` frames for errors not tied to a chunk.
pub const NO_CHUNK: u32 = u32::MAX;

/// A decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Client → server: open a scan of `table` described by `plan`.
    OpenScan {
        /// Catalog name of the table to scan.
        table: String,
        /// What to read — the same plan type both execution front-ends use.
        plan: CScanPlan,
    },
    /// Server → client: the scan is admitted and registered.
    OpenOk {
        /// Server-assigned id; all further frames about this scan carry it.
        scan_id: u64,
        /// Chunks the scan will deliver (after resolving the plan).
        num_chunks: u32,
    },
    /// Client → server: deliver up to `credits` more batches for `scan_id`.
    /// Credits are the backpressure primitive: the server never sends a
    /// batch it was not asked for, so a slow client simply stops asking.
    NextBatch {
        /// The scan being pulled.
        scan_id: u64,
        /// Number of additional `Batch` frames the client is ready for.
        credits: u32,
    },
    /// Server → client: one chunk's worth of column data.
    Batch {
        /// The scan this batch belongs to.
        scan_id: u64,
        /// Which chunk (table-relative index) the rows come from.  Chunks
        /// arrive in ABM-chosen order, not table order.
        chunk: u32,
        /// Row count (every column carries exactly this many values).
        rows: u32,
        /// `(column id, values)` pairs, ordered by column id.
        columns: Vec<(u16, Vec<i64>)>,
    },
    /// Server → client: the scan delivered everything; `scan_id` is closed.
    ScanDone {
        /// The finished scan.
        scan_id: u64,
    },
    /// Client → server: abandon `scan_id` (a LIMIT hit, a user abort).
    Cancel {
        /// The scan to abandon.
        scan_id: u64,
    },
    /// Server → client: the cancel took effect; `scan_id` is closed.
    CancelOk {
        /// The cancelled scan.
        scan_id: u64,
    },
    /// Server → client: the scan (or the request itself) failed.
    Error {
        /// The scan the error belongs to, or 0 for connection-level errors.
        scan_id: u64,
        /// Stable error code (see crate docs for the code ranges).
        code: u16,
        /// For code [`ScanError::WIRE_CODE`]: the failing chunk's
        /// [`StoreError::wire_code`].  0 otherwise.
        aux: u16,
        /// The chunk involved, or [`NO_CHUNK`].
        chunk: u32,
        /// Human-readable context (table name, queue state, …).
        detail: String,
    },
    /// Client → server: drain and close the connection (the CI smoke test
    /// and the benches use this for deterministic shutdown).
    Shutdown,
    /// Server → client: acknowledged; the server closes after this frame.
    ShutdownOk,
}

impl Message {
    /// The frame-type byte this message encodes as.
    fn type_byte(&self) -> u8 {
        match self {
            Message::OpenScan { .. } => 1,
            Message::OpenOk { .. } => 2,
            Message::NextBatch { .. } => 3,
            Message::Batch { .. } => 4,
            Message::ScanDone { .. } => 5,
            Message::Cancel { .. } => 6,
            Message::CancelOk { .. } => 7,
            Message::Error { .. } => 8,
            Message::Shutdown => 9,
            Message::ShutdownOk => 10,
        }
    }

    /// Builds the `Error` frame for a failed scan: code
    /// [`ScanError::WIRE_CODE`], cause and chunk in the payload.
    pub fn scan_error(scan_id: u64, error: ScanError) -> Message {
        Message::Error {
            scan_id,
            code: ScanError::WIRE_CODE,
            aux: error.cause.wire_code(),
            chunk: error.chunk.index(),
            detail: error.to_string(),
        }
    }

    /// Builds the `Error` frame for a serving-layer condition.
    pub fn serve_error(scan_id: u64, error: &ServeError) -> Message {
        Message::Error {
            scan_id,
            code: error.wire_code(),
            aux: 0,
            chunk: NO_CHUNK,
            detail: error.to_string(),
        }
    }

    /// Interprets an `Error` frame's fields back into a [`ScanError`], if
    /// its code says that is what it carries.
    pub fn as_scan_error(code: u16, aux: u16, chunk: u32) -> Option<ScanError> {
        if code != ScanError::WIRE_CODE {
            return None;
        }
        StoreError::from_wire_code(aux).map(|cause| ScanError::new(ChunkId::new(chunk), cause))
    }
}

/// Appends a `Batch` frame built straight from borrowed column slices —
/// the server's hot path.  Avoids the copy into [`Message::Batch`]'s owned
/// `Vec<i64>`s that [`encode_frame`] would require; the bytes produced are
/// identical.  Returns the encoded frame's size in bytes.
pub fn encode_batch_frame(
    buf: &mut Vec<u8>,
    scan_id: u64,
    chunk: u32,
    rows: u32,
    columns: &[(u16, &[i64])],
) -> usize {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    buf.push(4); // Batch
    put_u64(buf, scan_id);
    put_u32(buf, chunk);
    put_u32(buf, rows);
    put_u16(buf, columns.len() as u16);
    for (col, values) in columns {
        put_u16(buf, *col);
        put_u32(buf, values.len() as u32);
        for v in *values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let frame_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&frame_len.to_le_bytes());
    buf.len() - len_at
}

/// Why a byte stream could not be parsed.  Framing errors are fatal to the
/// connection: after one, the stream position is unreliable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The frame's `len` field exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A zero-length frame (no type byte).
    EmptyFrame,
    /// An unknown frame-type byte.
    UnknownType(u8),
    /// The body ended before the message was complete, or carried invalid
    /// data (bad UTF-8, inconsistent counts).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
                )
            }
            ProtoError::EmptyFrame => write!(f, "zero-length frame"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ----------------------------------------------------------------------
// Encoding.
// ----------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_plan(buf: &mut Vec<u8>, plan: &CScanPlan) {
    put_str(buf, &plan.label);
    match &plan.ranges {
        None => buf.push(0),
        Some(ranges) => {
            buf.push(1);
            put_u32(buf, ranges.ranges().len() as u32);
            for r in ranges.ranges() {
                put_u32(buf, r.start);
                put_u32(buf, r.end);
            }
        }
    }
    put_u64(buf, plan.columns.bits());
    match plan.limit_chunks {
        None => buf.push(0),
        Some(n) => {
            buf.push(1);
            put_u32(buf, n);
        }
    }
}

/// Appends `msg` to `buf` as one complete frame (length prefix included).
/// Encoding into a caller-owned buffer lets a connection reuse one
/// allocation for its whole lifetime.
pub fn encode_frame(buf: &mut Vec<u8>, msg: &Message) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    buf.push(msg.type_byte());
    match msg {
        Message::OpenScan { table, plan } => {
            put_str(buf, table);
            put_plan(buf, plan);
        }
        Message::OpenOk {
            scan_id,
            num_chunks,
        } => {
            put_u64(buf, *scan_id);
            put_u32(buf, *num_chunks);
        }
        Message::NextBatch { scan_id, credits } => {
            put_u64(buf, *scan_id);
            put_u32(buf, *credits);
        }
        Message::Batch {
            scan_id,
            chunk,
            rows,
            columns,
        } => {
            put_u64(buf, *scan_id);
            put_u32(buf, *chunk);
            put_u32(buf, *rows);
            put_u16(buf, columns.len() as u16);
            for (col, values) in columns {
                put_u16(buf, *col);
                put_u32(buf, values.len() as u32);
                for v in values {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Message::ScanDone { scan_id }
        | Message::Cancel { scan_id }
        | Message::CancelOk { scan_id } => {
            put_u64(buf, *scan_id);
        }
        Message::Error {
            scan_id,
            code,
            aux,
            chunk,
            detail,
        } => {
            put_u64(buf, *scan_id);
            put_u16(buf, *code);
            put_u16(buf, *aux);
            put_u32(buf, *chunk);
            put_str(buf, detail);
        }
        Message::Shutdown | Message::ShutdownOk => {}
    }
    let frame_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&frame_len.to_le_bytes());
}

// ----------------------------------------------------------------------
// Decoding.
// ----------------------------------------------------------------------

/// Cursor over one frame's body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.at + n > self.buf.len() {
            return Err(ProtoError::Malformed("body truncated"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > self.buf.len().saturating_sub(self.at) {
            return Err(ProtoError::Malformed("string length past body end"));
        }
        std::str::from_utf8(self.take(len)?)
            .map(str::to_owned)
            .map_err(|_| ProtoError::Malformed("string is not UTF-8"))
    }

    fn plan(&mut self) -> Result<CScanPlan, ProtoError> {
        let label = self.string()?;
        let ranges = match self.u8()? {
            0 => None,
            1 => {
                let count = self.u32()? as usize;
                if count > self.buf.len().saturating_sub(self.at) / 8 {
                    return Err(ProtoError::Malformed("range count past body end"));
                }
                let mut ranges = Vec::with_capacity(count);
                for _ in 0..count {
                    let start = self.u32()?;
                    let end = self.u32()?;
                    if start > end {
                        return Err(ProtoError::Malformed("inverted chunk range"));
                    }
                    ranges.push(ChunkRange::new(start, end));
                }
                Some(ScanRanges::from_ranges(ranges))
            }
            _ => return Err(ProtoError::Malformed("bad ranges tag")),
        };
        let columns = ColSet::from_bits(self.u64()?);
        let limit_chunks = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            _ => return Err(ProtoError::Malformed("bad limit tag")),
        };
        let mut plan = match ranges {
            Some(r) => CScanPlan::new(label, r, columns),
            None => CScanPlan::full_table(label, columns),
        };
        plan.limit_chunks = limit_chunks;
        Ok(plan)
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes in frame"))
        }
    }
}

fn decode_body(type_byte: u8, body: &[u8]) -> Result<Message, ProtoError> {
    let mut r = Reader { buf: body, at: 0 };
    let msg = match type_byte {
        1 => Message::OpenScan {
            table: r.string()?,
            plan: r.plan()?,
        },
        2 => Message::OpenOk {
            scan_id: r.u64()?,
            num_chunks: r.u32()?,
        },
        3 => Message::NextBatch {
            scan_id: r.u64()?,
            credits: r.u32()?,
        },
        4 => {
            let scan_id = r.u64()?;
            let chunk = r.u32()?;
            let rows = r.u32()?;
            let num_cols = r.u16()? as usize;
            let mut columns = Vec::with_capacity(num_cols.min(64));
            for _ in 0..num_cols {
                let col = r.u16()?;
                let count = r.u32()? as usize;
                if count > body.len().saturating_sub(r.at) / 8 {
                    return Err(ProtoError::Malformed("value count past body end"));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(r.i64()?);
                }
                columns.push((col, values));
            }
            Message::Batch {
                scan_id,
                chunk,
                rows,
                columns,
            }
        }
        5 => Message::ScanDone { scan_id: r.u64()? },
        6 => Message::Cancel { scan_id: r.u64()? },
        7 => Message::CancelOk { scan_id: r.u64()? },
        8 => Message::Error {
            scan_id: r.u64()?,
            code: r.u16()?,
            aux: r.u16()?,
            chunk: r.u32()?,
            detail: r.string()?,
        },
        9 => Message::Shutdown,
        10 => Message::ShutdownOk,
        t => return Err(ProtoError::UnknownType(t)),
    };
    r.done()?;
    Ok(msg)
}

/// Incremental frame parser: feed bytes as the socket yields them, take
/// complete messages out.  Both the client and every server connection own
/// one of these per direction.
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Read position within `buf`; consumed bytes are compacted away
    /// periodically rather than on every frame.
    at: usize,
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact consumed space before growing (amortized O(1) per byte).
        if self.at > 0 && (self.at >= self.buf.len() || self.at > 64 * 1024) {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Takes the next complete message, `Ok(None)` if more bytes are
    /// needed.  A `ProtoError` is fatal: the stream offset can no longer
    /// be trusted and the connection should be closed.
    pub fn next_message(&mut self) -> Result<Option<Message>, ProtoError> {
        let avail = &self.buf[self.at..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len == 0 {
            return Err(ProtoError::EmptyFrame);
        }
        if len > MAX_FRAME_LEN {
            return Err(ProtoError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let msg = decode_body(avail[4], &avail[5..total])?;
        self.at += total;
        Ok(Some(msg))
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.at
    }
}

/// Convenience used on both sides of loopback tests: encode one message
/// into a fresh frame.
pub fn frame(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(&mut buf, msg);
    buf
}

// Re-export the column id type batches are keyed by, so client code can
// translate `(u16, values)` pairs without depending on cscan_storage.
pub use cscan_storage::ColumnId as WireColumnId;

/// Translates a batch column id to the storage [`ColumnId`] type.
pub fn column_id(raw: u16) -> ColumnId {
    ColumnId::new(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) -> Message {
        let bytes = frame(&msg);
        let mut dec = Decoder::new();
        // Feed byte-by-byte to exercise partial-frame accumulation.
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
        }
        let out = dec
            .next_message()
            .expect("decodes")
            .expect("complete frame");
        assert_eq!(dec.pending_bytes(), 0);
        assert_eq!(out, msg);
        out
    }

    #[test]
    fn all_message_kinds_round_trip() {
        round_trip(Message::OpenScan {
            table: "lineitem".into(),
            plan: CScanPlan::new(
                "F-10",
                ScanRanges::from_ranges([ChunkRange::new(0, 4), ChunkRange::new(9, 12)]),
                ColSet::first_n(3),
            )
            .with_chunk_limit(2),
        });
        round_trip(Message::OpenScan {
            table: "orders".into(),
            plan: CScanPlan::full_table("full", ColSet::empty()),
        });
        round_trip(Message::OpenOk {
            scan_id: 7,
            num_chunks: 64,
        });
        round_trip(Message::NextBatch {
            scan_id: 7,
            credits: 4,
        });
        round_trip(Message::Batch {
            scan_id: 7,
            chunk: 3,
            rows: 2,
            columns: vec![(0, vec![1, -2]), (5, vec![i64::MIN, i64::MAX])],
        });
        round_trip(Message::ScanDone { scan_id: 7 });
        round_trip(Message::Cancel { scan_id: 7 });
        round_trip(Message::CancelOk { scan_id: 7 });
        round_trip(Message::Error {
            scan_id: 7,
            code: 203,
            aux: 0,
            chunk: NO_CHUNK,
            detail: "stalled".into(),
        });
        round_trip(Message::Shutdown);
        round_trip(Message::ShutdownOk);
    }

    #[test]
    fn scan_error_round_trips_through_error_frame() {
        let original = ScanError::new(ChunkId::new(17), StoreError::Permanent);
        let msg = Message::scan_error(3, original);
        let Message::Error {
            code, aux, chunk, ..
        } = round_trip(msg)
        else {
            panic!("scan_error builds an Error frame");
        };
        assert_eq!(Message::as_scan_error(code, aux, chunk), Some(original));
        // Non-scan codes decode to no ScanError.
        assert_eq!(Message::as_scan_error(203, 0, NO_CHUNK), None);
        // A scan code with an unknown cause also refuses to guess.
        assert_eq!(Message::as_scan_error(ScanError::WIRE_CODE, 999, 17), None);
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            &Message::NextBatch {
                scan_id: 1,
                credits: 2,
            },
        );
        encode_frame(&mut bytes, &Message::Cancel { scan_id: 1 });
        encode_frame(&mut bytes, &Message::Shutdown);
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_message().unwrap(),
            Some(Message::NextBatch {
                scan_id: 1,
                credits: 2
            })
        );
        assert_eq!(
            dec.next_message().unwrap(),
            Some(Message::Cancel { scan_id: 1 })
        );
        assert_eq!(dec.next_message().unwrap(), Some(Message::Shutdown));
        assert_eq!(dec.next_message().unwrap(), None);
    }

    #[test]
    fn malformed_frames_are_fatal_not_panics() {
        // Oversized length prefix.
        let mut dec = Decoder::new();
        dec.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        dec.feed(&[0u8; 8]);
        assert!(matches!(dec.next_message(), Err(ProtoError::Oversized(_))));
        // Zero-length frame.
        let mut dec = Decoder::new();
        dec.feed(&0u32.to_le_bytes());
        assert_eq!(dec.next_message(), Err(ProtoError::EmptyFrame));
        // Unknown type byte.
        let mut dec = Decoder::new();
        dec.feed(&1u32.to_le_bytes());
        dec.feed(&[42u8]);
        assert_eq!(dec.next_message(), Err(ProtoError::UnknownType(42)));
        // Truncated body: an OpenOk missing its num_chunks.
        let mut dec = Decoder::new();
        dec.feed(&9u32.to_le_bytes());
        dec.feed(&[2u8]);
        dec.feed(&7u64.to_le_bytes());
        assert!(matches!(dec.next_message(), Err(ProtoError::Malformed(_))));
        // Trailing garbage after a complete body.
        let mut bytes = frame(&Message::ScanDone { scan_id: 1 });
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        bytes[..4].copy_from_slice(&(len + 1).to_le_bytes());
        bytes.push(0xEE);
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_message(), Err(ProtoError::Malformed(_))));
        // A hostile value count cannot force a huge allocation.
        let mut body = Vec::new();
        body.push(4u8); // Batch
        put_u64(&mut body, 1);
        put_u32(&mut body, 0);
        put_u32(&mut body, 0);
        put_u16(&mut body, 1);
        put_u16(&mut body, 0);
        put_u32(&mut body, u32::MAX); // claims 4 billion values in 0 bytes
        let mut bytes = Vec::new();
        put_u32(&mut bytes, body.len() as u32);
        bytes.extend_from_slice(&body);
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_message(), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn borrowed_batch_encoder_matches_owned_encoding() {
        let owned = frame(&Message::Batch {
            scan_id: 9,
            chunk: 2,
            rows: 3,
            columns: vec![(1, vec![10, 20, 30]), (4, vec![-1, -2, -3])],
        });
        let mut borrowed = Vec::new();
        let a: &[i64] = &[10, 20, 30];
        let b: &[i64] = &[-1, -2, -3];
        let n = encode_batch_frame(&mut borrowed, 9, 2, 3, &[(1, a), (4, b)]);
        assert_eq!(borrowed, owned);
        assert_eq!(n, owned.len());
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = Decoder::new();
        for _ in 0..10_000 {
            dec.feed(&frame(&Message::ScanDone { scan_id: 9 }));
            assert!(dec.next_message().unwrap().is_some());
        }
        // Without compaction this would hold ~130 KiB of dead prefix.
        assert!(dec.buf.len() < 130 * 1024, "buffer grew without bound");
    }
}
