//! Shared experiment machinery: scales, policy comparisons, base times.

use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{QuerySpec, RunResult, SimConfig, Simulation};
use cscan_workload::queries::QueryClass;
use std::collections::HashMap;

/// Experiment scale: the paper's full setup or a shrunk variant for quick
/// runs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small data (TPC-H SF-1-like), few streams; finishes in well under a
    /// second per policy.  Used by the integration tests and `--quick`.
    Quick,
    /// The paper's setup (SF-10 NSM / SF-40 DSM, 16 streams of 4 queries).
    Paper,
}

impl Scale {
    /// Parses `"quick"` / `"paper"` (also accepts `"full"`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "quick" | "small" | "test" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads the scale from the command line (`--quick` / `--paper` or a bare
    /// word), defaulting to `Quick`.
    pub fn from_args() -> Scale {
        std::env::args()
            .skip(1)
            .find_map(|a| Scale::parse(a.trim_start_matches('-')))
            .unwrap_or(Scale::Quick)
    }

    /// TPC-H scale factor for the NSM experiments.
    pub fn nsm_scale_factor(self) -> u32 {
        match self {
            Scale::Quick => 2,
            Scale::Paper => 10,
        }
    }

    /// TPC-H scale factor for the DSM experiments.
    pub fn dsm_scale_factor(self) -> u32 {
        match self {
            Scale::Quick => 4,
            Scale::Paper => 40,
        }
    }

    /// Number of concurrent streams.
    pub fn streams(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Paper => 16,
        }
    }

    /// Queries per stream.
    pub fn queries_per_stream(self) -> usize {
        4
    }

    /// Delay between stream starts (3 s in the paper; shorter at quick scale
    /// so that the smaller queries still overlap).
    pub fn stagger(self) -> cscan_simdisk::SimDuration {
        match self {
            Scale::Quick => cscan_simdisk::SimDuration::from_secs(1),
            Scale::Paper => cscan_simdisk::SimDuration::from_secs(3),
        }
    }

    /// Buffer pool size (in 16 MiB chunks) for the NSM experiments — the
    /// paper uses 64 chunks (1 GB) against a ~4.3 GB table; the quick scale
    /// keeps the same buffer:table ratio.
    pub fn nsm_buffer_chunks(self) -> u64 {
        match self {
            Scale::Quick => 13,
            Scale::Paper => 64,
        }
    }

    /// Buffer pool bytes for the DSM experiments (1.5 GB in the paper).
    pub fn dsm_buffer_bytes(self) -> u64 {
        match self {
            Scale::Quick => 150 * 1024 * 1024,
            Scale::Paper => 1_536 * 1024 * 1024,
        }
    }
}

/// One row of a policy-comparison table.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The policy this row describes.
    pub policy: PolicyKind,
    /// Average stream running time (seconds) — the throughput metric.
    pub avg_stream_time: f64,
    /// Average normalized query latency — the latency metric.
    pub avg_normalized_latency: f64,
    /// Total wall-clock (virtual) time of the whole run.
    pub total_time: f64,
    /// CPU utilization over the run.
    pub cpu_use: f64,
    /// Number of chunk-granularity I/O requests.
    pub io_requests: u64,
    /// The full run result (per-query detail, trace, …).
    pub result: RunResult,
}

/// The outcome of running the same workload under every policy.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// One row per policy, in [`PolicyKind::ALL`] order.
    pub rows: Vec<PolicyRow>,
    /// The standalone cold latencies used for normalization, keyed by label.
    pub base_times: HashMap<String, f64>,
}

impl PolicyComparison {
    /// The row for `policy`.
    ///
    /// # Panics
    /// Panics if the comparison does not include the policy.
    pub fn row(&self, policy: PolicyKind) -> &PolicyRow {
        self.rows
            .iter()
            .find(|r| r.policy == policy)
            .expect("policy missing from comparison")
    }

    /// Ratio of a metric between two policies (`a / b`).
    pub fn ratio(&self, a: PolicyKind, b: PolicyKind, metric: impl Fn(&PolicyRow) -> f64) -> f64 {
        metric(self.row(a)) / metric(self.row(b)).max(1e-9)
    }
}

/// Computes the standalone cold run time of each query class, used as the
/// denominator of normalized latencies (the paper's "standalone cold time").
///
/// The standalone time of a class depends only on the number of chunks it
/// scans, so a representative range starting at chunk 0 is used.
pub fn base_times(
    model: &TableModel,
    classes: &[QueryClass],
    config: SimConfig,
) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for class in classes {
        let label = class.label();
        if out.contains_key(&label) {
            continue;
        }
        let chunks = class.chunks_in(model);
        let spec = QuerySpec::range_scan(
            label.clone(),
            cscan_storage::ScanRanges::single(0, chunks),
            class.speed.tuples_per_sec(),
        );
        let latency = Simulation::standalone_latency(model, PolicyKind::Relevance, config, &spec);
        out.insert(label, latency);
    }
    out
}

/// Runs `streams` against `model` under every scheduling policy and collects
/// the paper's summary metrics.
pub fn compare_policies(
    model: &TableModel,
    streams: &[Vec<QuerySpec>],
    config: SimConfig,
    base: &HashMap<String, f64>,
) -> PolicyComparison {
    let rows = PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut sim = Simulation::new(model.clone(), policy, config);
            sim.submit_streams(streams.to_vec());
            let result = sim.run();
            PolicyRow {
                policy,
                avg_stream_time: result.avg_stream_time(),
                avg_normalized_latency: result.avg_normalized_latency(base),
                total_time: result.total_time.as_secs_f64(),
                cpu_use: result.cpu_utilization,
                io_requests: result.io_requests,
                result,
            }
        })
        .collect();
    PolicyComparison {
        rows,
        base_times: base.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_workload::queries::table2_classes;
    use cscan_workload::streams::{build_streams, StreamSetup};

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert!(Scale::Quick.streams() < Scale::Paper.streams());
        assert!(Scale::Quick.nsm_scale_factor() < Scale::Paper.nsm_scale_factor());
    }

    #[test]
    fn base_times_scale_with_range_size() {
        let model = TableModel::nsm_uniform(50, 100_000, 256);
        let config = SimConfig::default().with_buffer_chunks(10);
        let classes = vec![
            QueryClass::fast(10),
            QueryClass::fast(100),
            QueryClass::slow(100),
        ];
        let base = base_times(&model, &classes, config);
        assert_eq!(base.len(), 3);
        assert!(base["F-100"] > base["F-10"] * 5.0);
        assert!(
            base["S-100"] > base["F-100"],
            "slow queries take longer standalone"
        );
    }

    #[test]
    fn comparison_has_all_policies_and_sane_metrics() {
        let model = TableModel::nsm_uniform(40, 100_000, 256);
        let config = SimConfig::default().with_buffer_chunks(8);
        let setup = StreamSetup {
            streams: 4,
            queries_per_stream: 2,
            classes: table2_classes(),
            seed: 3,
        };
        let streams = build_streams(&setup, &model, None);
        let base = base_times(&model, &table2_classes(), config);
        let cmp = compare_policies(&model, &streams, config, &base);
        assert_eq!(cmp.rows.len(), 4);
        for row in &cmp.rows {
            assert!(row.avg_stream_time > 0.0, "{:?}", row.policy);
            // Normalized latency can dip below 1 when a query finds its whole
            // range already buffered, but it must be positive.
            assert!(row.avg_normalized_latency > 0.0, "{:?}", row.policy);
            assert!(row.io_requests > 0);
            assert!(row.cpu_use > 0.0 && row.cpu_use <= 1.0);
        }
        // The relevance row is accessible and the ratio helper works.
        let ratio = cmp.ratio(PolicyKind::Normal, PolicyKind::Relevance, |r| {
            r.io_requests as f64
        });
        assert!(
            ratio >= 1.0,
            "normal should never need fewer I/Os, got {ratio}"
        );
    }
}
