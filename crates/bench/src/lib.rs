//! Experiment harness for the Cooperative Scans reproduction.
//!
//! Every table and figure of the paper's evaluation section has a module
//! under [`experiments`] that builds the corresponding workload, runs it
//! through the deterministic simulation for each scheduling policy and
//! returns structured results; the `src/bin/*` binaries print them in a
//! layout mirroring the paper, and `EXPERIMENTS.md` records paper-vs-measured
//! numbers.
//!
//! Most experiments accept an [`Scale`]: `Quick` shrinks the data
//! and stream counts so the whole suite runs in seconds (used by the
//! integration tests), `Paper` uses the paper's sizes (TPC-H SF-10/SF-40,
//! 16 streams of 4 queries).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{base_times, compare_policies, PolicyComparison, PolicyRow, Scale};
pub use report::TextTable;
