//! Table 4: DSM column-overlap study.
//!
//! A 200 M-tuple synthetic table of ten 8-byte attributes; 16 streams of 4
//! queries, each scanning 3 adjacent columns over a random 40 % range.  The
//! query sets vary how much the queries' column windows overlap — from a
//! single window (`ABC`) over disjoint windows (`ABC,DEF`) to chains of
//! partially overlapping windows (`ABC,BCD,CDE,DEF`).  The paper reports the
//! number of I/Os and the average / standard deviation of query latency for
//! the `normal` and `relevance` policies.

use crate::harness::Scale;
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{SimConfig, Simulation};
use cscan_engine::Summary;
use cscan_workload::synthetic::{synthetic_model, table4_query_sets, table4_streams};

/// Result of one (query set, policy) cell of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// The query-set description, e.g. `"ABC,BCD"`.
    pub query_set: String,
    /// The policy.
    pub policy: PolicyKind,
    /// Number of chunk-granularity I/O requests.
    pub io_requests: u64,
    /// Query latency statistics (seconds).
    pub latency: Summary,
}

/// The full Table 4 output.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// One cell per (query set, policy) combination, normal first.
    pub cells: Vec<Table4Cell>,
    /// The synthetic model used.
    pub model: TableModel,
}

/// Number of tuples in the synthetic table at the given scale.
pub fn tuples(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 20_000_000,
        Scale::Paper => 200_000_000,
    }
}

/// The buffer size (1 GB in the paper).
pub fn config(scale: Scale) -> SimConfig {
    let bytes = match scale {
        Scale::Quick => 100 * 1024 * 1024,
        Scale::Paper => 1024 * 1024 * 1024,
    };
    SimConfig::default()
        .with_buffer_bytes(bytes)
        .with_stagger(scale.stagger())
}

/// Runs the Table 4 experiment for the `normal` and `relevance` policies
/// (the two the paper reports).
pub fn run(scale: Scale, seed: u64) -> Table4Result {
    let model = synthetic_model(tuples(scale));
    let config = config(scale);
    let mut cells = Vec::new();
    for (name, windows) in table4_query_sets() {
        let streams = table4_streams(
            &model,
            &windows,
            scale.streams(),
            scale.queries_per_stream(),
            8_000_000.0,
            seed,
        );
        for policy in [PolicyKind::Normal, PolicyKind::Relevance] {
            let mut sim = Simulation::new(model.clone(), policy, config);
            sim.submit_streams(streams.clone());
            let result = sim.run();
            let latency = Summary::from_values(
                &result
                    .queries
                    .iter()
                    .map(|q| q.latency().as_secs_f64())
                    .collect::<Vec<_>>(),
            );
            cells.push(Table4Cell {
                query_set: name.clone(),
                policy,
                io_requests: result.io_requests,
                latency,
            });
        }
    }
    Table4Result { cells, model }
}

impl Table4Result {
    /// The cell for a query set and policy.
    ///
    /// # Panics
    /// Panics if the combination was not run.
    pub fn cell(&self, query_set: &str, policy: PolicyKind) -> &Table4Cell {
        self.cells
            .iter()
            .find(|c| c.query_set == query_set && c.policy == policy)
            .unwrap_or_else(|| panic!("no cell for {query_set} / {policy}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_drives_sharing() {
        let r = run(Scale::Quick, 5);
        assert_eq!(r.cells.len(), 10, "5 query sets × 2 policies");

        // Relevance always beats normal on I/O and latency for the
        // single-window workload (maximum overlap).
        let rel_abc = r.cell("ABC", PolicyKind::Relevance);
        let norm_abc = r.cell("ABC", PolicyKind::Normal);
        assert!(rel_abc.io_requests < norm_abc.io_requests);
        assert!(rel_abc.latency.mean() < norm_abc.latency.mean());

        // Adding a disjoint window reduces sharing: relevance needs more I/O
        // for ABC,DEF than for ABC alone (the paper's ~2x effect).
        let rel_abc_def = r.cell("ABC,DEF", PolicyKind::Relevance);
        assert!(
            rel_abc_def.io_requests > rel_abc.io_requests,
            "{} vs {}",
            rel_abc_def.io_requests,
            rel_abc.io_requests
        );

        // Even with fully disjoint column sets relevance still beats normal.
        let norm_abc_def = r.cell("ABC,DEF", PolicyKind::Normal);
        assert!(rel_abc_def.io_requests < norm_abc_def.io_requests);

        // Partial overlap sits in between: ABC,BCD needs no more I/O than
        // ABC,DEF under relevance (more shared columns, more reuse).
        let rel_abc_bcd = r.cell("ABC,BCD", PolicyKind::Relevance);
        assert!(
            rel_abc_bcd.io_requests <= rel_abc_def.io_requests,
            "{} vs {}",
            rel_abc_bcd.io_requests,
            rel_abc_def.io_requests
        );
    }
}
