//! Figure 8: cost of relevance-based scheduling.
//!
//! The relevance policy's `loadRelevance` must consider every (chunk, query)
//! pair, so its cost grows super-linearly as chunks shrink.  This experiment
//! measures the *actual wall-clock* cost of one full scheduling step
//! (`chooseQueryToProcess` + `chooseChunkToLoad` + victim selection) of this
//! implementation, for a 2 GB relation divided into 128–2048 chunks and
//! queries scanning 1 %, 10 % or 100 % of it, and reports the overhead as a
//! fraction of the (simulated) execution time of the same workload.

use cscan_core::abm::{Abm, AbmState};
use cscan_core::model::TableModel;
use cscan_core::policy::{PolicyKind, RelevancePolicy};
use cscan_core::sim::{QuerySpec, SimConfig, Simulation};
use cscan_core::ScanRanges;
use cscan_simdisk::SimTime;
use std::time::Instant;

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Number of chunks the 2 GB relation is divided into.
    pub num_chunks: u32,
    /// Scan size in percent.
    pub percent: u32,
    /// Average wall-clock time of one scheduling step, in milliseconds.
    pub scheduling_ms: f64,
    /// Scheduling overhead as a fraction of the workload's execution time.
    pub fraction_of_execution: f64,
}

/// The chunk counts swept (chunk size = 2 GB / count).
pub const CHUNK_COUNTS: [u32; 5] = [128, 256, 512, 1024, 2048];

/// The scan percentages swept.
pub const PERCENTS: [u32; 3] = [1, 10, 100];

/// Total relation size modelled (2 GB, as in the paper).
pub const TABLE_BYTES: u64 = 2 * 1024 * 1024 * 1024;

/// Number of concurrent queries (16 streams in the paper).
pub const QUERIES: usize = 16;

/// The heavier concurrency mixes tracked by `BENCH_scheduling.json` (the
/// fig7/fig8 regime where scheduling cost used to dominate).
pub const QUERY_MIXES: [usize; 3] = [16, 64, 128];

fn model_for(num_chunks: u32) -> TableModel {
    let pages_per_chunk = (TABLE_BYTES / num_chunks as u64) / cscan_storage::DEFAULT_PAGE_SIZE;
    TableModel::nsm_uniform(
        num_chunks,
        2_000_000_000 / 72 / num_chunks as u64,
        pages_per_chunk,
    )
}

/// Builds an ABM with `queries` registered queries of the given scan size and
/// a quarter-table buffer, to exercise realistic state.
fn build_abm(num_chunks: u32, percent: u32, queries: usize, seed: u64) -> Abm {
    let model = model_for(num_chunks);
    let capacity = model.total_pages(model.all_columns()) / 4;
    let all_columns = model.all_columns();
    let state = AbmState::new(model, capacity.max(1));
    let mut abm = Abm::new(state, PolicyKind::Relevance.build());
    let len = ((num_chunks as u64 * percent as u64).div_ceil(100)).max(1) as u32;
    let mut pos = seed as u32 % num_chunks;
    for q in 0..queries {
        let start = pos % num_chunks.saturating_sub(len).max(1);
        abm.register_query(
            format!("q{q}"),
            ScanRanges::single(start, (start + len).min(num_chunks)),
            all_columns,
            SimTime::ZERO,
        );
        pos = pos.wrapping_mul(7).wrapping_add(13);
    }
    abm
}

/// Pre-loads a handful of chunks so the use/keep relevance paths have
/// buffered state to look at, while keeping (almost) every query starved —
/// the regime in which the scheduler actually runs.
fn preload(abm: &mut Abm) {
    let mut loaded = 0;
    while loaded < 4 {
        match abm.plan_load(SimTime::ZERO) {
            Some(_) => {
                abm.complete_load();
                loaded += 1;
            }
            None => break,
        }
    }
}

/// Advances the ABM by one realistic state transition: complete a planned
/// load if one is possible, otherwise evict a chunk (which re-starves
/// queries and makes the next load plannable).  Keeps the measured
/// scheduler looking at freshly dirtied state on every decision.
fn perturb(abm: &mut Abm) {
    if abm.plan_load(SimTime::ZERO).is_some() {
        abm.complete_load();
    } else {
        abm.force_evict_one();
    }
}

/// Measures the average wall-clock cost of one relevance scheduling step
/// (`next_load` + `choose_victim` + `next_chunk`) for a `queries`-query mix.
pub fn measure_scheduling_step(
    num_chunks: u32,
    percent: u32,
    queries: usize,
    iterations: u32,
) -> f64 {
    let mut abm = build_abm(num_chunks, percent, queries, 11);
    preload(&mut abm);
    let mut policy = RelevancePolicy::new();
    use cscan_core::policy::Policy as _;
    let start = Instant::now();
    let mut decisions = 0u32;
    for _ in 0..iterations {
        // One full scheduling step: pick a query & chunk to load, pick the
        // chunk a query should consume, pick a victim.
        if let Some(decision) = policy.next_load(abm.state(), SimTime::ZERO) {
            std::hint::black_box(&decision);
            let _ = std::hint::black_box(policy.choose_victim(abm.state(), &decision));
            let _ = std::hint::black_box(policy.next_chunk(decision.trigger, abm.state()));
        }
        decisions += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    elapsed * 1000.0 / decisions.max(1) as f64
}

/// Measures the average wall-clock cost of one `plan_load`-level decision
/// (`RelevancePolicy::next_load` only), in milliseconds, for either the
/// incremental (default) or the brute-force chunk selection.
///
/// Between decisions the ABM is advanced by one load completion or eviction,
/// so the incremental path pays its cache-repair cost on every decision —
/// this is the steady-state regime, not a best case over frozen state.
pub fn measure_plan_load(
    num_chunks: u32,
    percent: u32,
    queries: usize,
    brute: bool,
    iterations: u32,
) -> f64 {
    let mut abm = build_abm(num_chunks, percent, queries, 11);
    preload(&mut abm);
    let mut policy = if brute {
        RelevancePolicy::brute_force()
    } else {
        RelevancePolicy::new()
    };
    use cscan_core::policy::Policy as _;
    // Warm the candidate caches so steady-state decisions are measured.
    std::hint::black_box(policy.next_load(abm.state(), SimTime::ZERO));
    let mut total = std::time::Duration::ZERO;
    let mut decisions = 0u32;
    for _ in 0..iterations {
        perturb(&mut abm);
        let start = Instant::now();
        let decision = policy.next_load(abm.state(), SimTime::ZERO);
        total += start.elapsed();
        std::hint::black_box(&decision);
        decisions += 1;
    }
    total.as_secs_f64() * 1000.0 / decisions.max(1) as f64
}

/// A prepared ABM + policy pair for repeated `next_load` measurement.
/// Criterion benches build this once outside the sampling loop so the
/// per-sample cost is one state perturbation plus one scheduling decision,
/// not a full ABM construction.
pub struct PlanLoadBench {
    abm: Abm,
    policy: RelevancePolicy,
}

impl PlanLoadBench {
    /// Builds the mix, preloads a few chunks and warms the policy caches.
    pub fn new(num_chunks: u32, percent: u32, queries: usize, brute: bool) -> Self {
        let mut abm = build_abm(num_chunks, percent, queries, 11);
        preload(&mut abm);
        let mut policy = if brute {
            RelevancePolicy::brute_force()
        } else {
            RelevancePolicy::new()
        };
        use cscan_core::policy::Policy as _;
        std::hint::black_box(policy.next_load(abm.state(), SimTime::ZERO));
        Self { abm, policy }
    }

    /// One perturbation + one `next_load` decision; returns whether a load
    /// was planned.
    pub fn step(&mut self) -> bool {
        use cscan_core::policy::Policy as _;
        perturb(&mut self.abm);
        self.policy
            .next_load(self.abm.state(), SimTime::ZERO)
            .is_some()
    }
}

/// One row of the incremental-vs-brute-force comparison.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Concurrent queries in the mix.
    pub queries: usize,
    /// Number of chunks the relation is divided into.
    pub num_chunks: u32,
    /// Scan size in percent.
    pub percent: u32,
    /// ms per `next_load` decision, brute-force chunk selection.
    pub brute_ms: f64,
    /// ms per `next_load` decision, incremental candidate heaps.
    pub incremental_ms: f64,
}

impl SpeedupPoint {
    /// brute / incremental (higher is better).
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms > 0.0 {
            self.brute_ms / self.incremental_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Measures brute-force vs incremental `next_load` cost for one mix.
pub fn compare_plan_load(
    num_chunks: u32,
    percent: u32,
    queries: usize,
    iterations: u32,
) -> SpeedupPoint {
    let brute_ms = measure_plan_load(num_chunks, percent, queries, true, iterations);
    let incremental_ms = measure_plan_load(num_chunks, percent, queries, false, iterations);
    SpeedupPoint {
        queries,
        num_chunks,
        percent,
        brute_ms,
        incremental_ms,
    }
}

/// Estimates the execution time of the corresponding workload (virtual time
/// from the simulator) so the overhead can be expressed as a fraction.
fn execution_time(num_chunks: u32, percent: u32, seed: u64) -> (f64, u64) {
    let model = model_for(num_chunks);
    let config = SimConfig::default().with_buffer_fraction(0.25);
    let mut sim = Simulation::new(model.clone(), PolicyKind::Relevance, config);
    let len = ((num_chunks as u64 * percent as u64).div_ceil(100)).max(1) as u32;
    for q in 0..QUERIES as u32 {
        let start = (seed as u32 + q * 37) % num_chunks.saturating_sub(len).max(1);
        sim.submit_stream(vec![QuerySpec::range_scan(
            format!("scan-{percent}"),
            ScanRanges::single(start, (start + len).min(num_chunks)),
            8_000_000.0,
        )]);
    }
    let result = sim.run();
    (result.total_time.as_secs_f64(), result.io_requests)
}

/// Runs the Figure 8 sweep.  `iterations` controls the measurement effort per
/// point (a few hundred is plenty in release builds).
pub fn run(iterations: u32) -> Vec<Fig8Point> {
    let mut points = Vec::new();
    for &num_chunks in &CHUNK_COUNTS {
        for &percent in &PERCENTS {
            let scheduling_ms = measure_scheduling_step(num_chunks, percent, QUERIES, iterations);
            let (exec_secs, ios) = execution_time(num_chunks, percent, 3);
            // Each I/O requires one scheduling step.
            let total_scheduling_secs = scheduling_ms / 1000.0 * ios as f64;
            let fraction = if exec_secs > 0.0 {
                total_scheduling_secs / exec_secs
            } else {
                0.0
            };
            points.push(Fig8Point {
                num_chunks,
                percent,
                scheduling_ms,
                fraction_of_execution: fraction,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_cost_grows_with_chunk_count() {
        // Only two chunk counts and few iterations to keep the test quick
        // (and debug builds are slow); the full sweep runs in the binary.
        let small = measure_scheduling_step(128, 10, QUERIES, 30);
        let large = measure_scheduling_step(1024, 10, QUERIES, 30);
        assert!(small >= 0.0 && large >= 0.0);
        assert!(
            large > small,
            "more chunks must cost more scheduling time: {small} ms vs {large} ms"
        );
    }

    #[test]
    fn overhead_fraction_is_small() {
        let (exec, ios) = execution_time(256, 10, 3);
        assert!(exec > 0.0);
        assert!(ios > 0);
        let ms = measure_scheduling_step(256, 10, QUERIES, 20);
        let fraction = ms / 1000.0 * ios as f64 / exec;
        // The paper's bound: worst case below 1% of execution time — allow a
        // bit more in unoptimized debug builds.
        assert!(fraction < 0.05, "scheduling overhead fraction {fraction}");
    }

    #[test]
    fn plan_load_measurement_is_sane() {
        // Both modes produce positive per-decision times on a small mix.
        let p = compare_plan_load(256, 100, 16, 20);
        assert!(p.brute_ms > 0.0 && p.incremental_ms > 0.0);
        assert!(p.speedup().is_finite());
    }

    /// The PR's acceptance criterion: on the 64-query mix the incremental
    /// scheduler is at least 5× cheaper per `plan_load` decision than the
    /// brute-force sweep.  Only meaningful in release builds — under
    /// `debug_assertions` the incremental path re-runs the brute-force sweep
    /// on every decision as a cross-check, so the ratio collapses by design.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "speedup is measured in release builds only"
    )]
    fn incremental_speedup_at_64_queries() {
        let p = compare_plan_load(2048, 100, 64, 300);
        assert!(
            p.speedup() >= 5.0,
            "expected ≥5× speedup at 64 queries: brute {} ms vs incremental {} ms ({}×)",
            p.brute_ms,
            p.incremental_ms,
            p.speedup()
        );
    }
}
