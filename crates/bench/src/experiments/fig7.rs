//! Figure 7: average query latency under a varying number of concurrent
//! queries (1–32) reading 5 %, 20 % or 50 % of the relation.

use crate::harness::Scale;
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{SimConfig, Simulation};
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::queries::QueryClass;
use cscan_workload::streams::uniform_streams;

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Scan size in percent of the table (5, 20 or 50).
    pub percent: u32,
    /// Number of concurrent single-query streams.
    pub queries: usize,
    /// The policy.
    pub policy: PolicyKind,
    /// Average query latency in seconds.
    pub avg_latency: f64,
}

/// The concurrency levels swept.
pub const CONCURRENCY: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The scan sizes swept (percent of the table).
pub const PERCENTS: [u32; 3] = [5, 20, 50];

/// The table and buffer used (SF-10 with a 1 GB buffer in the paper).  The
/// stream stagger is short so that all `n` queries genuinely overlap.
pub fn setup(scale: Scale) -> (TableModel, SimConfig) {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = SimConfig::default()
        .with_buffer_chunks(scale.nsm_buffer_chunks())
        .with_stagger(cscan_simdisk::SimDuration::from_millis(500));
    (model, config)
}

/// Runs the Figure 7 sweep.  `concurrency_limit` truncates the sweep for
/// quick runs.
pub fn run(scale: Scale, seed: u64, concurrency_limit: Option<usize>) -> Vec<Fig7Point> {
    let (model, config) = setup(scale);
    let mut points = Vec::new();
    for &percent in &PERCENTS {
        for &n in CONCURRENCY
            .iter()
            .filter(|&&n| n <= concurrency_limit.unwrap_or(usize::MAX))
        {
            let class = QueryClass::fast(percent);
            let streams = uniform_streams(class, n, &model, None, seed + n as u64);
            for policy in PolicyKind::ALL {
                let mut sim = Simulation::new(model.clone(), policy, config);
                sim.submit_streams(streams.clone());
                let result = sim.run();
                points.push(Fig7Point {
                    percent,
                    queries: n,
                    policy,
                    avg_latency: result.avg_latency(),
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(points: &[Fig7Point], percent: u32, n: usize, policy: PolicyKind) -> f64 {
        points
            .iter()
            .find(|p| p.percent == percent && p.queries == n && p.policy == policy)
            .expect("missing point")
            .avg_latency
    }

    #[test]
    fn relevance_gains_grow_with_concurrency() {
        let points = run(Scale::Quick, 23, Some(8));
        // With a single query all policies are (nearly) identical.
        for percent in PERCENTS {
            let rel = find(&points, percent, 1, PolicyKind::Relevance);
            let norm = find(&points, percent, 1, PolicyKind::Normal);
            assert!(
                (rel - norm).abs() / norm.max(1e-9) < 0.15,
                "single-query latencies should roughly agree: {rel} vs {norm}"
            );
        }
        // At 8 concurrent 50% scans, relevance is clearly better than normal,
        // and the advantage at 8 queries exceeds the advantage at 2.
        let rel8 = find(&points, 50, 8, PolicyKind::Relevance);
        let norm8 = find(&points, 50, 8, PolicyKind::Normal);
        assert!(rel8 < norm8, "relevance {rel8} vs normal {norm8}");
        let ratio2 = find(&points, 50, 2, PolicyKind::Normal)
            / find(&points, 50, 2, PolicyKind::Relevance).max(1e-9);
        let ratio8 = norm8 / rel8.max(1e-9);
        assert!(
            ratio8 >= ratio2 * 0.9,
            "the advantage should grow (or at least not collapse): {ratio2} -> {ratio8}"
        );
        // Without sharing, latency can only grow with concurrency; the
        // cooperative policies are allowed to beat their standalone time
        // because later queries reuse buffered chunks.
        let one = find(&points, 50, 1, PolicyKind::Normal);
        let eight = find(&points, 50, 8, PolicyKind::Normal);
        assert!(eight >= one * 0.9, "normal: {one} -> {eight}");
    }
}
