//! Figure 7: average query latency under a varying number of concurrent
//! queries (1–32) reading 5 %, 20 % or 50 % of the relation — plus the
//! outstanding-I/O sweep of the asynchronous scheduler (how simulated scan
//! throughput scales with the number of in-flight chunk loads on an
//! explicit 4-spindle array), plus the *threaded* sweep: real OS threads
//! against the live executor, measuring how delivered-chunk throughput,
//! scheduler-lock and shard-lock hold times scale from 16 to 256
//! concurrent scan threads.

use crate::harness::Scale;
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{SimConfig, Simulation};
use cscan_simdisk::{DiskModel, RaidConfig, SimDuration, MIB};
use cscan_workload::lineitem::{lineitem_nsm_model, NSM_CHUNK_BYTES};
use cscan_workload::queries::QueryClass;
use cscan_workload::streams::uniform_streams;
use std::time::Duration;

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Scan size in percent of the table (5, 20 or 50).
    pub percent: u32,
    /// Number of concurrent single-query streams.
    pub queries: usize,
    /// The policy.
    pub policy: PolicyKind,
    /// Average query latency in seconds.
    pub avg_latency: f64,
}

/// The concurrency levels swept.
pub const CONCURRENCY: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The scan sizes swept (percent of the table).
pub const PERCENTS: [u32; 3] = [5, 20, 50];

/// The table and buffer used (SF-10 with a 1 GB buffer in the paper).  The
/// stream stagger is short so that all `n` queries genuinely overlap.
pub fn setup(scale: Scale) -> (TableModel, SimConfig) {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = SimConfig::default()
        .with_buffer_chunks(scale.nsm_buffer_chunks())
        .with_stagger(cscan_simdisk::SimDuration::from_millis(500));
    (model, config)
}

/// Runs the Figure 7 sweep.  `concurrency_limit` truncates the sweep for
/// quick runs.
pub fn run(scale: Scale, seed: u64, concurrency_limit: Option<usize>) -> Vec<Fig7Point> {
    let (model, config) = setup(scale);
    let mut points = Vec::new();
    for &percent in &PERCENTS {
        for &n in CONCURRENCY
            .iter()
            .filter(|&&n| n <= concurrency_limit.unwrap_or(usize::MAX))
        {
            let class = QueryClass::fast(percent);
            let streams = uniform_streams(class, n, &model, None, seed + n as u64);
            for policy in PolicyKind::ALL {
                let mut sim = Simulation::new(model.clone(), policy, config);
                sim.submit_streams(streams.clone());
                let result = sim.run();
                points.push(Fig7Point {
                    percent,
                    queries: n,
                    policy,
                    avg_latency: result.avg_latency(),
                });
            }
        }
    }
    points
}

// ----------------------------------------------------------------------
// Outstanding-I/O sweep (the `iosched` layer).
// ----------------------------------------------------------------------

/// The outstanding-load budgets swept.
pub const OUTSTANDING: [usize; 4] = [1, 2, 4, 8];

/// One measurement of the outstanding-I/O sweep.
#[derive(Debug, Clone)]
pub struct IoSweepPoint {
    /// Outstanding-load budget (K).
    pub outstanding: usize,
    /// Number of concurrent single-query streams.
    pub queries: usize,
    /// Total (virtual) run time in seconds.
    pub total_secs: f64,
    /// Simulated scan throughput: bytes read from disk per second of run
    /// time, in MiB/s.
    pub throughput_mib_s: f64,
    /// Average query latency in seconds.
    pub avg_latency: f64,
    /// Chunk loads issued.
    pub io_requests: u64,
    /// Most loads actually in flight at once.
    pub peak_outstanding: usize,
    /// Deepest per-spindle submission queue sampled.
    pub max_queue_depth: u32,
}

/// The sweep's storage: an explicit 4-spindle array striped at chunk
/// granularity, so each 16 MiB chunk read is bound to one ~55 MB/s arm and
/// only multiple outstanding loads can use the aggregate bandwidth — the
/// regime the paper's "4-way RAID delivering slightly over 200 MB/s"
/// implies for chunk-sized requests.
pub fn io_sweep_raid() -> RaidConfig {
    RaidConfig {
        spindles: 4,
        stripe_unit: NSM_CHUNK_BYTES,
        disk: DiskModel::default(),
    }
}

/// The table and base configuration of the outstanding-I/O sweep.  Plenty
/// of cores and a short stagger keep the runs I/O-bound and genuinely
/// concurrent, so the sweep isolates the scheduler.
pub fn io_sweep_setup(scale: Scale) -> (TableModel, SimConfig) {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = SimConfig::default()
        .with_buffer_chunks(scale.nsm_buffer_chunks())
        .with_cores(8)
        .with_raid(io_sweep_raid())
        .with_stagger(SimDuration::from_millis(100))
        .with_trace(true);
    (model, config)
}

/// Runs the outstanding-I/O sweep: `queries` concurrent FAST-20% scans
/// under the relevance policy, once per budget in [`OUTSTANDING`].
pub fn run_io_sweep(scale: Scale, queries: usize, seed: u64) -> Vec<IoSweepPoint> {
    let (model, config) = io_sweep_setup(scale);
    let streams = uniform_streams(QueryClass::fast(20), queries, &model, None, seed);
    OUTSTANDING
        .iter()
        .map(|&k| {
            let mut sim = Simulation::new(
                model.clone(),
                PolicyKind::Relevance,
                config.with_outstanding_io(k),
            );
            sim.submit_streams(streams.clone());
            let r = sim.run();
            let total_secs = r.total_time.as_secs_f64();
            let throughput_mib_s = if total_secs > 0.0 {
                r.bytes_read as f64 / total_secs / MIB as f64
            } else {
                0.0
            };
            IoSweepPoint {
                outstanding: k,
                queries,
                total_secs,
                throughput_mib_s,
                avg_latency: r.avg_latency(),
                io_requests: r.io_requests,
                peak_outstanding: r.peak_outstanding_io,
                max_queue_depth: r.depth_trace.max_depth(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Threaded executor sweep (real OS threads, targeted wakeups).
// ----------------------------------------------------------------------

/// The concurrent scan-thread counts swept by the threaded benchmark.
pub const THREAD_SWEEP: [usize; 4] = [16, 64, 128, 256];

/// One measurement of the threaded sweep.
#[derive(Debug, Clone)]
pub struct ThreadSweepPoint {
    /// Number of concurrent scan (consumer) threads.
    pub threads: usize,
    /// I/O worker pool size.
    pub io_threads: usize,
    /// Wall-clock run time in seconds.
    pub wall_secs: f64,
    /// Chunks delivered to consumers per wall-clock second, summed over all
    /// scans — the executor's aggregate throughput.
    pub chunks_per_sec: f64,
    /// Chunk loads the ABM committed (sharing makes this far smaller than
    /// threads × chunks).
    pub loads: u64,
    /// Scheduler-lock critical sections recorded during the run.
    pub lock_acquisitions: u64,
    /// Median scheduler-lock hold time (bucket upper bound), nanoseconds.
    pub lock_p50_ns: u64,
    /// 99th-percentile scheduler-lock hold time (bucket upper bound),
    /// nanoseconds.
    pub lock_p99_ns: u64,
    /// Longest scheduler-lock hold (bucket upper bound), nanoseconds.
    pub lock_max_ns: u64,
    /// Buffer-pool shards the pin ledger was striped into.
    pub pool_shards: usize,
    /// Shard-lock critical sections recorded during the run (the hot
    /// pin/release path plus scheduler-driven residency transitions).
    pub shard_lock_acquisitions: u64,
    /// Median shard-lock hold time (bucket upper bound), nanoseconds.
    pub shard_lock_p50_ns: u64,
    /// 99th-percentile shard-lock hold time (bucket upper bound),
    /// nanoseconds.
    pub shard_lock_p99_ns: u64,
    /// Longest shard-lock hold (bucket upper bound), nanoseconds.
    pub shard_lock_max_ns: u64,
    /// Releases whose deferred bookkeeping found the scheduler lock busy
    /// and was left in the inbox for the next lock holder.
    pub hub_shard_conflicts: u64,
}

/// Runs one threaded measurement: `threads` concurrent full scans of a
/// `chunks`-chunk NSM table through a live
/// [`ScanServer`](cscan_core::threaded::ScanServer), returning the
/// aggregate delivered-chunk throughput and the lock hold-time histogram.
///
/// All scans are registered before any consumer starts, so the sharing
/// opportunity (one load feeds every scan) is identical at every thread
/// count; what the sweep isolates is the executor's concurrency
/// architecture — plan/commit critical sections and targeted wakeups —
/// under growing consumer parallelism.
pub fn run_threaded_once(
    threads: usize,
    io_threads: usize,
    chunks: u32,
    io_cost_per_page: Duration,
) -> ThreadSweepPoint {
    use cscan_core::threaded::ScanServer;
    use cscan_core::CScanPlan;
    use cscan_storage::ScanRanges;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    let model = TableModel::nsm_uniform(chunks, 1_000, 16);
    let server = Arc::new(
        ScanServer::builder(model.clone())
            .policy(PolicyKind::Relevance)
            .buffer_chunks((chunks as u64 / 8).max(4))
            .io_cost_per_page(io_cost_per_page)
            .io_threads(io_threads)
            .build(),
    );
    // Register everything up front, then release all consumers at once.
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            server.cscan(CScanPlan::new(
                format!("t{i}"),
                ScanRanges::full(chunks),
                model.all_columns(),
            ))
        })
        .collect();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let delivered = Arc::new(AtomicU64::new(0));
    let consumers: Vec<_> = handles
        .into_iter()
        .map(|handle| {
            let barrier = Arc::clone(&barrier);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while let Some(guard) = handle.next_chunk().expect("fault-free scan") {
                    guard.complete();
                    n += 1;
                }
                handle.finish();
                delivered.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();
    barrier.wait();
    let started = std::time::Instant::now();
    for c in consumers {
        c.join().expect("a scan thread panicked");
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let total = delivered.load(Ordering::Relaxed);
    let holds = server.lock_hold_histogram();
    let shard_holds = server.shard_lock_hold_histogram();
    ThreadSweepPoint {
        threads,
        io_threads,
        wall_secs,
        chunks_per_sec: total as f64 / wall_secs,
        loads: server.loads_completed(),
        lock_acquisitions: holds.count(),
        lock_p50_ns: holds.p50(),
        lock_p99_ns: holds.p99(),
        lock_max_ns: holds.max_value(),
        pool_shards: server.num_pool_shards(),
        shard_lock_acquisitions: shard_holds.count(),
        shard_lock_p50_ns: shard_holds.p50(),
        shard_lock_p99_ns: shard_holds.p99(),
        shard_lock_max_ns: shard_holds.max_value(),
        hub_shard_conflicts: server.hub_shard_conflicts(),
    }
}

/// Runs the tracked threaded sweep: 16/64/128/256 concurrent full scans of
/// a 256-chunk table over a 4-worker I/O pool.  The per-page cost (50 µs,
/// i.e. 800 µs per 16-page chunk read) keeps the 16-thread baseline
/// I/O-bound — the fig7 regime — so the sweep measures how much consumer
/// parallelism the executor can feed from the same shared loads before the
/// ABM lock, not the disk, becomes the ceiling.
pub fn run_thread_sweep() -> Vec<ThreadSweepPoint> {
    THREAD_SWEEP
        .iter()
        .map(|&n| run_threaded_once(n, 4, 256, Duration::from_micros(50)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(points: &[Fig7Point], percent: u32, n: usize, policy: PolicyKind) -> f64 {
        points
            .iter()
            .find(|p| p.percent == percent && p.queries == n && p.policy == policy)
            .expect("missing point")
            .avg_latency
    }

    #[test]
    fn relevance_gains_grow_with_concurrency() {
        let points = run(Scale::Quick, 23, Some(8));
        // With a single query all policies are (nearly) identical.
        for percent in PERCENTS {
            let rel = find(&points, percent, 1, PolicyKind::Relevance);
            let norm = find(&points, percent, 1, PolicyKind::Normal);
            assert!(
                (rel - norm).abs() / norm.max(1e-9) < 0.15,
                "single-query latencies should roughly agree: {rel} vs {norm}"
            );
        }
        // At 8 concurrent 50% scans, relevance is clearly better than normal,
        // and the advantage at 8 queries exceeds the advantage at 2.
        let rel8 = find(&points, 50, 8, PolicyKind::Relevance);
        let norm8 = find(&points, 50, 8, PolicyKind::Normal);
        assert!(rel8 < norm8, "relevance {rel8} vs normal {norm8}");
        let ratio2 = find(&points, 50, 2, PolicyKind::Normal)
            / find(&points, 50, 2, PolicyKind::Relevance).max(1e-9);
        let ratio8 = norm8 / rel8.max(1e-9);
        assert!(
            ratio8 >= ratio2 * 0.9,
            "the advantage should grow (or at least not collapse): {ratio2} -> {ratio8}"
        );
        // Without sharing, latency can only grow with concurrency; the
        // cooperative policies are allowed to beat their standalone time
        // because later queries reuse buffered chunks.
        let one = find(&points, 50, 1, PolicyKind::Normal);
        let eight = find(&points, 50, 8, PolicyKind::Normal);
        assert!(eight >= one * 0.9, "normal: {one} -> {eight}");
    }

    #[test]
    fn io_sweep_smoke() {
        // A small sweep exercises the whole path (RAID routing, scheduler,
        // depth tracing) without release-build timing assumptions.
        let points = run_io_sweep(Scale::Quick, 8, 11);
        assert_eq!(points.len(), OUTSTANDING.len());
        for p in &points {
            assert!(p.total_secs > 0.0);
            assert!(p.throughput_mib_s > 0.0);
            assert!(p.io_requests > 0);
            assert!(p.peak_outstanding >= 1 && p.peak_outstanding <= p.outstanding);
            assert!(p.max_queue_depth >= 1);
        }
        assert_eq!(points[0].peak_outstanding, 1, "K=1 stays sequential");
    }

    #[test]
    fn thread_sweep_smoke() {
        // Tiny sizes: exercises the whole path (real threads, plan/commit,
        // targeted wakeups, histogram) without release-build timing
        // assumptions — debug builds re-run every decision's brute twin.
        let p = run_threaded_once(4, 2, 16, Duration::ZERO);
        assert_eq!(p.threads, 4);
        assert_eq!(p.io_threads, 2);
        assert!(p.chunks_per_sec > 0.0);
        assert!(p.loads >= 16, "every chunk must be read at least once");
        assert!(p.lock_acquisitions > 0);
        assert!(p.lock_p50_ns <= p.lock_p99_ns && p.lock_p99_ns <= p.lock_max_ns);
        assert_eq!(p.pool_shards, 16);
        assert!(
            p.shard_lock_acquisitions > 0,
            "shard holds must be recorded"
        );
        assert!(
            p.shard_lock_p50_ns <= p.shard_lock_p99_ns
                && p.shard_lock_p99_ns <= p.shard_lock_max_ns
        );
    }

    /// The PR's acceptance criterion: 256 concurrent scan threads must
    /// deliver at least 2.5× the aggregate chunk throughput of 16 threads —
    /// the shared loads feed 16× the consumers, so the sharded pin ledger,
    /// grant mailboxes and targeted wakeups have lots of headroom, while a
    /// serialize-everything executor (or a notify_all stampede) eats the
    /// gain.  (History: before the hub was sharded the gate was 1.5× at
    /// 128 threads — the single `Mutex<Hub>` topped out well under the
    /// current ratio.)  The shard-lock p99 is gated too: the hot
    /// pin/release path must stay in the tens-of-microseconds range even
    /// with every consumer hammering the ledger.  Release builds only:
    /// under `debug_assertions` every scheduling decision re-runs its
    /// brute-force twin, which distorts lock hold times.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "thread-scaling gate is measured in release builds only"
    )]
    fn thread_sweep_throughput_scales() {
        let points = run_thread_sweep();
        let at = |n: usize| {
            points
                .iter()
                .find(|p| p.threads == n)
                .expect("missing point")
        };
        let base = at(16);
        let wide = at(256);
        assert!(
            wide.chunks_per_sec >= 2.5 * base.chunks_per_sec,
            "expected >= 2.5x delivered-chunk throughput at 256 threads: \
             {:.0} chunks/s (16) vs {:.0} chunks/s (256, {:.2}x)",
            base.chunks_per_sec,
            wide.chunks_per_sec,
            wide.chunks_per_sec / base.chunks_per_sec
        );
        // Shard-lock holds are a handful of HashMap operations; 64 µs of
        // p99 is an order of magnitude of slack.  Only the p99 is gated —
        // the recorded *max* can be an arbitrary preemption artifact on a
        // loaded (or single-core) CI box, where a thread can lose the CPU
        // while holding a shard lock.
        assert!(
            wide.shard_lock_p99_ns <= 64_000,
            "shard-lock p99 too high at 256 threads: {} ns (max {} ns)",
            wide.shard_lock_p99_ns,
            wide.shard_lock_max_ns
        );
    }

    /// The PR's acceptance criterion: at 64 concurrent queries on the
    /// 4-spindle array, 8 outstanding I/Os deliver at least 1.3× the
    /// simulated scan throughput of the single-outstanding baseline.  (The
    /// observed ratio is ~3–4×: each chunk load is bound to one of the four
    /// arms, so the sequential main loop leaves three arms idle.)  Release
    /// builds only — under `debug_assertions` every scheduling decision
    /// re-runs its brute-force twin, making the 64-query sweep needlessly
    /// slow for CI.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "throughput gate is measured in release builds only"
    )]
    fn io_throughput_speedup_at_64_queries() {
        let points = run_io_sweep(Scale::Quick, 64, 7);
        let at = |k: usize| {
            points
                .iter()
                .find(|p| p.outstanding == k)
                .expect("missing point")
        };
        let base = at(1);
        let deep = at(8);
        assert!(
            deep.peak_outstanding > 1,
            "the pipeline never filled: peak {}",
            deep.peak_outstanding
        );
        assert!(
            deep.throughput_mib_s >= 1.3 * base.throughput_mib_s,
            "expected ≥1.3× scan throughput with 8 outstanding I/Os: \
             {:.1} MiB/s (K=1) vs {:.1} MiB/s (K=8, {:.2}×)",
            base.throughput_mib_s,
            deep.throughput_mib_s,
            deep.throughput_mib_s / base.throughput_mib_s
        );
    }
}
