//! The served-scan experiment behind `fig_serve`: many concurrent remote
//! clients streaming two tables through the network service, with the
//! admission cap deliberately below the offered load so the gate's
//! queue/shed behaviour is exercised, and a fraction of clients killed
//! mid-scan (socket dropped without `Cancel`) to prove teardown releases
//! every pin and permit.
//!
//! The load is open-loop per client slot: each slot fires its next scan as
//! soon as the previous one finishes (or is killed), retrying with a short
//! backoff when admission sheds it, so the service stays saturated for the
//! whole run.  Reported: sustained aggregate served MiB/s (server-side
//! `BytesServed` over wall time) and the p50/p99 time-to-first-batch —
//! measured from *before* `open_scan`, so admission queueing is part of
//! the latency a client actually observes.

use cscan_client::ScanClient;
use cscan_core::{CScanPlan, ColSet};
use cscan_exec::MemTable;
use cscan_obs::{Counter, Gauge};
use cscan_server::{serve, AdmissionConfig, Catalog, ServerConfig, TableConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of the served sweep.
#[derive(Debug, Clone)]
pub struct ServeSweepConfig {
    /// Concurrent client connections (each holds one open scan at a time).
    pub clients: usize,
    /// Scans each client completes (killed scans count).
    pub scans_per_client: usize,
    /// Chunks in the larger table (the smaller one has half).
    pub chunks: u32,
    /// Rows per chunk in both tables.
    pub rows_per_chunk: u64,
    /// Admission cap per table — set below `clients / 2` to force queueing.
    pub max_attached: usize,
    /// Admission queue depth per table — arrivals beyond it are shed.
    pub max_queued: usize,
    /// Every `kill_every`-th scan is killed mid-stream by dropping the
    /// whole connection (no `Cancel`, no drain).  `0` disables kills.
    pub kill_every: usize,
}

impl Default for ServeSweepConfig {
    fn default() -> Self {
        ServeSweepConfig {
            clients: 40,
            scans_per_client: 4,
            chunks: 64,
            rows_per_chunk: 2_000,
            max_attached: 12,
            max_queued: 6,
            kill_every: 8,
        }
    }
}

/// What one served sweep measured.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Concurrent client connections.
    pub clients: usize,
    /// Tables in the served catalog.
    pub tables: usize,
    /// Scans that streamed to completion.
    pub scans_completed: u64,
    /// Scans killed mid-stream by dropping the connection.
    pub scans_killed: u64,
    /// Open attempts shed (or queue-timed-out) and retried by a client.
    pub retries: u64,
    /// Wall time of the whole sweep.
    pub wall_secs: f64,
    /// Server-side bytes served over wall time.
    pub sustained_mib_s: f64,
    /// Median time from `open_scan` call to first batch, across all scans.
    pub ttfb_p50: Duration,
    /// 99th-percentile time-to-first-batch.
    pub ttfb_p99: Duration,
    /// Admission counter: scans admitted (includes retries that made it).
    pub admitted: u64,
    /// Admission counter: scans that waited in the FIFO queue.
    pub queued: u64,
    /// Admission counter: scans shed at the gate.
    pub shed: u64,
    /// Peak concurrently-admitted scans observed (gauge sampled per open).
    pub peak_admitted: u64,
    /// Batches the server encoded and sent.
    pub batches_served: u64,
    /// Bytes the server encoded and sent.
    pub bytes_served: u64,
    /// Connections the server shed for lack of progress.
    pub connections_shed: u64,
    /// Buffer frames still pinned after every client disconnected.
    pub pinned_after: usize,
}

/// Runs the sweep: builds a two-table catalog, serves it on an ephemeral
/// loopback port, drives it with `cfg.clients` concurrent client threads,
/// and waits for clean teardown before reading the leak counters.
pub fn run_serve_sweep(cfg: &ServeSweepConfig) -> ServeResult {
    let admission = AdmissionConfig {
        max_attached: cfg.max_attached,
        max_queued: cfg.max_queued,
        queue_timeout: Duration::from_secs(10),
    };
    let table_cfg = TableConfig {
        buffer_chunks: 16,
        admission,
        ..TableConfig::default()
    };
    let rows_large = cfg.chunks as u64 * cfg.rows_per_chunk;
    let mut catalog = Catalog::new();
    catalog.add_mem_table(
        "lineitem",
        MemTable::lineitem_demo(rows_large, cfg.rows_per_chunk),
        table_cfg.clone(),
    );
    catalog.add_mem_table(
        "orders",
        MemTable::orders_demo(rows_large / 2, cfg.rows_per_chunk),
        table_cfg,
    );
    let catalog = Arc::new(catalog);
    let obs = catalog.observability();
    let handle = serve(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            exit_on_shutdown: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let retries = Arc::new(AtomicU64::new(0));
    let killed = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let peak_admitted = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let workers: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let cfg = cfg.clone();
            let retries = Arc::clone(&retries);
            let killed = Arc::clone(&killed);
            let completed = Arc::clone(&completed);
            let peak = Arc::clone(&peak_admitted);
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                let mut ttfb = Vec::with_capacity(cfg.scans_per_client);
                let mut client = ScanClient::connect(addr).expect("connect");
                for s in 0..cfg.scans_per_client {
                    // Alternate tables so both stay under concurrent load.
                    let table = if (c + s) % 2 == 0 {
                        "lineitem"
                    } else {
                        "orders"
                    };
                    let kill = cfg.kill_every != 0
                        && (c * cfg.scans_per_client + s) % cfg.kill_every == cfg.kill_every - 1;
                    let t0 = Instant::now();
                    let mut scan = loop {
                        let plan = CScanPlan::full_table(format!("c{c}-s{s}"), ColSet::first_n(2));
                        match client.open_scan(table, plan) {
                            Ok(scan) => break scan,
                            Err(e) if e.is_retryable() => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => panic!("client {c} scan {s}: {e}"),
                        }
                    };
                    let mut first = true;
                    let mut batches = 0u64;
                    loop {
                        match scan.next_batch() {
                            Ok(Some(_)) => {
                                if first {
                                    ttfb.push(t0.elapsed());
                                    peak.fetch_max(
                                        obs.gauge(Gauge::AdmittedScans),
                                        Ordering::Relaxed,
                                    );
                                    first = false;
                                }
                                batches += 1;
                                if kill && batches >= 2 {
                                    // Kill the whole connection mid-scan:
                                    // no Cancel, no drain — the server
                                    // must clean up from the socket close.
                                    drop(scan);
                                    client = ScanClient::connect(addr).expect("reconnect");
                                    killed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                            Ok(None) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) => panic!("client {c} scan {s} stream: {e}"),
                        }
                    }
                }
                ttfb
            })
        })
        .collect();

    let mut ttfb: Vec<Duration> = Vec::new();
    for w in workers {
        ttfb.extend(w.join().expect("client thread"));
    }
    let wall = start.elapsed();

    // Every client is gone; poll the pin gauge down to its resting value
    // (connection threads race the join).
    let mut pinned_after = catalog.pinned_frames();
    for _ in 0..500 {
        if pinned_after == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        pinned_after = catalog.pinned_frames();
    }

    ttfb.sort_unstable();
    let pct = |q: f64| -> Duration {
        if ttfb.is_empty() {
            Duration::ZERO
        } else {
            ttfb[((ttfb.len() - 1) as f64 * q) as usize]
        }
    };
    let bytes_served = obs.counter(Counter::BytesServed);
    let result = ServeResult {
        clients: cfg.clients,
        tables: catalog.tables().len(),
        scans_completed: completed.load(Ordering::Relaxed),
        scans_killed: killed.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        wall_secs: wall.as_secs_f64(),
        sustained_mib_s: bytes_served as f64 / (1024.0 * 1024.0) / wall.as_secs_f64().max(1e-9),
        ttfb_p50: pct(0.50),
        ttfb_p99: pct(0.99),
        admitted: obs.counter(Counter::AdmissionAdmitted),
        queued: obs.counter(Counter::AdmissionQueued),
        shed: obs.counter(Counter::AdmissionShed),
        peak_admitted: peak_admitted.load(Ordering::Relaxed),
        batches_served: obs.counter(Counter::BatchesServed),
        bytes_served,
        connections_shed: obs.counter(Counter::ConnectionsShed),
        pinned_after,
    };
    handle.stop();
    handle.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build smoke at a fraction of the CI scale: the full sweep is
    /// exercised release-only in `tests/serve_gate.rs` and `fig_serve`.
    #[test]
    fn small_sweep_completes_and_leaks_nothing() {
        let cfg = ServeSweepConfig {
            clients: 6,
            scans_per_client: 2,
            chunks: 8,
            rows_per_chunk: 500,
            max_attached: 2,
            max_queued: 1,
            kill_every: 5,
        };
        let r = run_serve_sweep(&cfg);
        assert_eq!(
            r.scans_completed + r.scans_killed,
            (cfg.clients * cfg.scans_per_client) as u64
        );
        assert!(r.scans_killed >= 1, "kill schedule fired");
        assert!(r.bytes_served > 0 && r.batches_served > 0);
        assert!(r.admitted >= r.scans_completed);
        assert_eq!(r.pinned_after, 0, "pins leaked");
        assert!(r.ttfb_p99 >= r.ttfb_p50);
    }
}
