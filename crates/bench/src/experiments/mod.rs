//! One module per table / figure of the paper's evaluation section.
//!
//! | module   | reproduces |
//! |----------|------------|
//! | [`fig2`]   | Figure 2 — buffer-reuse probability (Eq. 1) |
//! | [`table2`] | Table 2 — NSM/PAX policy comparison, 16×4 query streams |
//! | [`fig4`]   | Figure 4 — chunk-access-over-time traces per policy |
//! | [`fig5`]   | Figure 5 — throughput/latency scatter over 15 query mixes |
//! | [`fig6`]   | Figure 6 — sweep over buffer-pool capacity |
//! | [`fig7`]   | Figure 7 — sweep over the number of concurrent queries |
//! | [`fig8`]   | Figure 8 — scheduling cost of the relevance policy |
//! | [`fig9`]   | Figure 9 — compression: decode GiB/s and I/O volume |
//! | [`fig9_file`] | Figure 9 end-to-end — real segment files through `FileStore` |
//! | [`table3`] | Table 3 — DSM policy comparison |
//! | [`table4`] | Table 4 — DSM column-overlap study |
//! | [`faults`] | Fault sweep — goodput/retries under injected I/O failures |
//! | [`serve`]  | Served scans — remote clients through the network service |
//!
//! Table 1 of the paper is published TPC-H price/performance data (used as
//! motivation), not an experiment, and is therefore only discussed in
//! `EXPERIMENTS.md`.

pub mod faults;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fig9_file;
pub mod serve;
pub mod table2;
pub mod table3;
pub mod table4;
