//! Figure 4: disk accesses over time for each scheduling policy.
//!
//! The same workload as Table 2 is run once per policy with chunk-access
//! tracing enabled; the traces are rendered either as gnuplot data or as
//! ASCII scatter plots (time on the x axis, chunk number on the y axis).

use crate::harness::Scale;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::Simulation;
use cscan_simdisk::IoTrace;
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::queries::table2_classes;
use cscan_workload::streams::{build_streams, StreamSetup};

/// One policy's trace.
#[derive(Debug, Clone)]
pub struct PolicyTrace {
    /// The policy that produced the trace.
    pub policy: PolicyKind,
    /// The chunk-access trace.
    pub trace: IoTrace,
    /// Total run time in seconds (the x-axis extent).
    pub total_time: f64,
}

/// Runs the Figure 4 experiment: one trace per policy.
pub fn run(scale: Scale, seed: u64) -> Vec<PolicyTrace> {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = super::table2::config(scale).with_trace(true);
    let setup = StreamSetup {
        streams: scale.streams(),
        queries_per_stream: scale.queries_per_stream(),
        classes: table2_classes(),
        seed,
    };
    let streams = build_streams(&setup, &model, None);
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let mut sim = Simulation::new(model.clone(), policy, config);
            sim.submit_streams(streams.clone());
            let result = sim.run();
            PolicyTrace {
                policy,
                trace: result.trace,
                total_time: result.total_time.as_secs_f64(),
            }
        })
        .collect()
}

/// A measure of how sequential a trace is: the fraction of consecutive loads
/// that read the next chunk (chunk index exactly one higher than the
/// previous load).  Elevator is close to 1, normal much lower, relevance is
/// intentionally "dynamic".
pub fn sequentiality(trace: &IoTrace) -> f64 {
    let events = trace.events();
    if events.len() < 2 {
        return 1.0;
    }
    let sequential = events
        .windows(2)
        .filter(|w| w[1].chunk == w[0].chunk.wrapping_add(1))
        .count();
    sequential as f64 / (events.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_paper_like_shapes() {
        let traces = run(Scale::Quick, 9);
        assert_eq!(traces.len(), 4);
        let get = |p: PolicyKind| traces.iter().find(|t| t.policy == p).unwrap();
        let normal = get(PolicyKind::Normal);
        let elevator = get(PolicyKind::Elevator);
        let relevance = get(PolicyKind::Relevance);
        // Every policy recorded one event per I/O.
        for t in &traces {
            assert!(!t.trace.is_empty(), "{:?}", t.policy);
            assert!(t.total_time > 0.0);
        }
        // Normal needs the most loads, elevator's pattern is the most
        // sequential, relevance is dynamic but still cheaper than normal.
        assert!(normal.trace.len() >= relevance.trace.len());
        assert!(
            sequentiality(&elevator.trace) > sequentiality(&normal.trace),
            "elevator {} vs normal {}",
            sequentiality(&elevator.trace),
            sequentiality(&normal.trace)
        );
        // The ASCII rendering works on real traces.
        let plot = relevance.trace.to_ascii(60, 16);
        assert_eq!(plot.lines().count(), 16);
        assert!(plot.contains('*'));
        let gnuplot = normal.trace.to_gnuplot();
        assert_eq!(gnuplot.lines().count(), normal.trace.len() + 1);
    }
}
