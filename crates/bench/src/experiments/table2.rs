//! Table 2: row-storage (NSM/PAX) policy comparison.
//!
//! 16 streams of 4 queries drawn from FAST/SLOW × {1, 10, 50, 100} %, TPC-H
//! SF-10 `lineitem`, 16 MB chunks, a 1 GB (64-chunk) buffer pool and a 3 s
//! stream stagger.  Reported per policy: average stream time, average
//! normalized latency, total time, CPU use and the number of I/O requests,
//! plus per-query-class latency and I/O breakdowns.

use crate::harness::{base_times, compare_policies, PolicyComparison, Scale};
use cscan_core::model::TableModel;
use cscan_core::sim::SimConfig;
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::queries::table2_classes;
use cscan_workload::streams::{build_streams, StreamSetup};
use std::collections::HashMap;

/// The Table 2 experiment output.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Per-policy summary and per-query detail.
    pub comparison: PolicyComparison,
    /// Standalone cold times per query class label.
    pub base_times: HashMap<String, f64>,
    /// The model the experiment ran against.
    pub model: TableModel,
}

/// The simulation configuration used by Table 2 at the given scale.
pub fn config(scale: Scale) -> SimConfig {
    SimConfig::default()
        .with_buffer_chunks(scale.nsm_buffer_chunks())
        .with_stagger(scale.stagger())
}

/// Runs the Table 2 experiment.
pub fn run(scale: Scale, seed: u64) -> Table2Result {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = config(scale);
    let setup = StreamSetup {
        streams: scale.streams(),
        queries_per_stream: scale.queries_per_stream(),
        classes: table2_classes(),
        seed,
    };
    let streams = build_streams(&setup, &model, None);
    let base = base_times(&model, &table2_classes(), config);
    let comparison = compare_policies(&model, &streams, config, &base);
    Table2Result {
        comparison,
        base_times: base,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_core::policy::PolicyKind;

    #[test]
    fn quick_scale_reproduces_the_paper_ordering() {
        let r = run(Scale::Quick, 42);
        let cmp = &r.comparison;
        let normal = cmp.row(PolicyKind::Normal);
        let attach = cmp.row(PolicyKind::Attach);
        let elevator = cmp.row(PolicyKind::Elevator);
        let relevance = cmp.row(PolicyKind::Relevance);

        // Headline result: relevance wins on both axes (a few percent of
        // slack is allowed at this reduced scale).
        assert!(
            relevance.avg_stream_time <= attach.avg_stream_time * 1.05,
            "relevance {} vs attach {}",
            relevance.avg_stream_time,
            attach.avg_stream_time
        );
        assert!(
            relevance.avg_stream_time < normal.avg_stream_time,
            "relevance {} vs normal {}",
            relevance.avg_stream_time,
            normal.avg_stream_time
        );
        assert!(
            relevance.avg_normalized_latency < normal.avg_normalized_latency,
            "relevance {} vs normal {}",
            relevance.avg_normalized_latency,
            normal.avg_normalized_latency
        );
        assert!(
            relevance.avg_normalized_latency < elevator.avg_normalized_latency,
            "elevator's blocking must show up as poor latency: relevance {} vs elevator {}",
            relevance.avg_normalized_latency,
            elevator.avg_normalized_latency
        );
        // Normal issues the most I/O; the sharing policies need fewer reads.
        assert!(normal.io_requests as f64 >= attach.io_requests as f64 * 0.95);
        assert!(normal.io_requests > relevance.io_requests);
        // Elevator keeps the number of I/O requests low (its whole point).
        assert!(elevator.io_requests as f64 <= attach.io_requests as f64 * 1.05);
        // Sanity: every policy processed the full workload.
        let expected = Scale::Quick.streams() * Scale::Quick.queries_per_stream();
        for row in &cmp.rows {
            assert_eq!(row.result.queries.len(), expected, "{:?}", row.policy);
        }
    }
}
