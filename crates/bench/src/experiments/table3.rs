//! Table 3: column-storage (DSM) policy comparison.
//!
//! Same stream structure as Table 2 but over the DSM `lineitem` at scale
//! factor 40, with a 1.5 GB buffer pool and the "faster slow" query
//! (Section 6.3).  In DSM each query only touches its own columns: FAST is
//! TPC-H Q6 (4 columns), SLOW is TPC-H Q1 (7 columns).

use crate::harness::{compare_policies, PolicyComparison, Scale};
use cscan_core::model::TableModel;
use cscan_core::sim::{QuerySpec, SimConfig};
use cscan_core::ColSet;
use cscan_workload::lineitem::{lineitem_dsm_model, lineitem_schema};
use cscan_workload::queries::{table3_classes, QueryClass, QuerySpeed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The Table 3 experiment output.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Per-policy summary and per-query detail.
    pub comparison: PolicyComparison,
    /// Standalone cold times per query class label.
    pub base_times: HashMap<String, f64>,
    /// The DSM model the experiment ran against.
    pub model: TableModel,
}

/// The columns TPC-H Q6 touches (the FAST query).
pub fn fast_columns() -> ColSet {
    let schema = lineitem_schema();
    ColSet::from_columns(schema.resolve(&[
        "l_shipdate",
        "l_discount",
        "l_quantity",
        "l_extendedprice",
    ]))
}

/// The columns TPC-H Q1 touches (the SLOW query).
pub fn slow_columns() -> ColSet {
    let schema = lineitem_schema();
    ColSet::from_columns(schema.resolve(&[
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_shipdate",
    ]))
}

/// The columns a query class touches.
pub fn class_columns(class: &QueryClass) -> ColSet {
    match class.speed {
        QuerySpeed::Fast => fast_columns(),
        _ => slow_columns(),
    }
}

/// The simulation configuration used by Table 3 at the given scale.
pub fn config(scale: Scale) -> SimConfig {
    SimConfig::default()
        .with_buffer_bytes(scale.dsm_buffer_bytes())
        .with_stagger(scale.stagger())
}

/// Builds the Table 3 streams: random classes with per-class column sets.
pub fn streams(model: &TableModel, scale: Scale, seed: u64) -> Vec<Vec<QuerySpec>> {
    let classes = table3_classes();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..scale.streams())
        .map(|_| {
            (0..scale.queries_per_stream())
                .map(|_| {
                    let class = classes[rng.gen_range(0..classes.len())];
                    class.to_spec(model, Some(class_columns(&class)), &mut rng)
                })
                .collect()
        })
        .collect()
}

/// Runs the Table 3 experiment.
pub fn run(scale: Scale, seed: u64) -> Table3Result {
    let model = lineitem_dsm_model(scale.dsm_scale_factor());
    let config = config(scale);
    let streams = streams(&model, scale, seed);
    // Base times must use the same column sets as the concurrent runs.
    let mut base = HashMap::new();
    for class in table3_classes() {
        let label = class.label();
        if base.contains_key(&label) {
            continue;
        }
        let chunks = class.chunks_in(&model);
        let spec = QuerySpec::range_scan(
            label.clone(),
            cscan_storage::ScanRanges::single(0, chunks),
            class.speed.tuples_per_sec(),
        )
        .with_columns(class_columns(&class));
        let latency = cscan_core::sim::Simulation::standalone_latency(
            &model,
            cscan_core::policy::PolicyKind::Relevance,
            config,
            &spec,
        );
        base.insert(label, latency);
    }
    let comparison = compare_policies(&model, &streams, config, &base);
    Table3Result {
        comparison,
        base_times: base,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cscan_core::policy::PolicyKind;

    #[test]
    fn column_sets_match_the_queries() {
        let fast = fast_columns();
        let slow = slow_columns();
        assert_eq!(fast.len(), 4);
        assert_eq!(slow.len(), 7);
        // Q6 and Q1 share several columns, which is what makes DSM sharing
        // possible at all.
        assert!(fast.intersect(slow).len() >= 3);
        assert_eq!(class_columns(&QueryClass::fast(10)), fast);
    }

    #[test]
    fn quick_scale_dsm_ordering() {
        let r = run(Scale::Quick, 11);
        let cmp = &r.comparison;
        let normal = cmp.row(PolicyKind::Normal);
        let relevance = cmp.row(PolicyKind::Relevance);
        let elevator = cmp.row(PolicyKind::Elevator);
        assert!(r.model.is_dsm());
        // The DSM headline: relevance clearly beats normal on both axes.
        assert!(relevance.avg_stream_time < normal.avg_stream_time);
        assert!(relevance.avg_normalized_latency < normal.avg_normalized_latency);
        assert!(relevance.io_requests < normal.io_requests);
        // Elevator still suffers on latency relative to relevance.
        assert!(relevance.avg_normalized_latency <= elevator.avg_normalized_latency * 1.05);
        for row in &cmp.rows {
            assert_eq!(row.result.queries.len(), cmp.rows[0].result.queries.len());
            assert!(row.result.pages_read > 0);
        }
    }
}
