//! Figure 6: behaviour under varying buffer-pool capacities.
//!
//! A trimmed-down table is scanned by 8 streams of 4 queries while the buffer
//! pool is swept from 12.5 % to 100 % of the table size, once with a
//! CPU-intensive query set (FAST + SLOW) and once with an I/O-intensive set
//! (FAST only).  Reported per policy and capacity: number of I/O requests,
//! system (total) time and average normalized latency.

use crate::harness::{base_times, compare_policies, Scale};
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::SimConfig;
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::queries::{QueryClass, QuerySpeed};
use cscan_workload::streams::{build_streams, StreamSetup};

/// Which query set is being used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySet {
    /// FAST and SLOW queries mixed (CPU-intensive).
    CpuIntensive,
    /// Only FAST queries (I/O-intensive).
    IoIntensive,
}

impl QuerySet {
    /// The query classes of this set.
    pub fn classes(self) -> Vec<QueryClass> {
        let speeds: &[QuerySpeed] = match self {
            QuerySet::CpuIntensive => &[QuerySpeed::Slow, QuerySpeed::Fast],
            QuerySet::IoIntensive => &[QuerySpeed::Fast],
        };
        let mut out = Vec::new();
        for &speed in speeds {
            for percent in [1, 10, 50, 100] {
                out.push(QueryClass { speed, percent });
            }
        }
        out
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QuerySet::CpuIntensive => "cpu-intensive",
            QuerySet::IoIntensive => "io-intensive",
        }
    }
}

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// The query set used.
    pub set: QuerySet,
    /// Buffer capacity as a fraction of the table size.
    pub buffer_fraction: f64,
    /// The policy.
    pub policy: PolicyKind,
    /// Number of chunk loads.
    pub io_requests: u64,
    /// Total (system) time in seconds.
    pub system_time: f64,
    /// Average normalized latency.
    pub avg_normalized_latency: f64,
}

/// The buffer capacities swept, as fractions of the table size.
pub const BUFFER_FRACTIONS: [f64; 5] = [0.125, 0.25, 0.50, 0.75, 1.0];

/// The table used: a trimmed-down relation ("2 GB" in the paper).
pub fn model(scale: Scale) -> TableModel {
    match scale {
        Scale::Quick => lineitem_nsm_model(1),
        Scale::Paper => lineitem_nsm_model(5),
    }
}

/// Runs the Figure 6 sweep.
pub fn run(scale: Scale, seed: u64) -> Vec<Fig6Point> {
    let model = model(scale);
    let streams_count = match scale {
        Scale::Quick => 4,
        Scale::Paper => 8,
    };
    let mut points = Vec::new();
    for set in [QuerySet::CpuIntensive, QuerySet::IoIntensive] {
        let classes = set.classes();
        let setup = StreamSetup {
            streams: streams_count,
            queries_per_stream: 4,
            classes: classes.clone(),
            seed,
        };
        let streams = build_streams(&setup, &model, None);
        for &fraction in &BUFFER_FRACTIONS {
            let config = SimConfig::default()
                .with_buffer_fraction(fraction)
                .with_stagger(scale.stagger());
            let base = base_times(&model, &classes, config);
            let cmp = compare_policies(&model, &streams, config, &base);
            for row in &cmp.rows {
                points.push(Fig6Point {
                    set,
                    buffer_fraction: fraction,
                    policy: row.policy,
                    io_requests: row.io_requests,
                    system_time: row.total_time,
                    avg_normalized_latency: row.avg_normalized_latency,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(points: &[Fig6Point], set: QuerySet, fraction: f64, policy: PolicyKind) -> &Fig6Point {
        points
            .iter()
            .find(|p| {
                p.set == set && (p.buffer_fraction - fraction).abs() < 1e-9 && p.policy == policy
            })
            .expect("point missing")
    }

    #[test]
    fn io_drops_as_the_buffer_grows() {
        let points = run(Scale::Quick, 17);
        assert_eq!(points.len(), 2 * BUFFER_FRACTIONS.len() * 4);
        for set in [QuerySet::CpuIntensive, QuerySet::IoIntensive] {
            for policy in PolicyKind::ALL {
                let small = find(&points, set, 0.125, policy);
                let large = find(&points, set, 1.0, policy);
                assert!(
                    large.io_requests <= small.io_requests,
                    "{policy} {}: {} -> {}",
                    set.name(),
                    small.io_requests,
                    large.io_requests
                );
            }
        }
    }

    #[test]
    fn relevance_advantage_is_largest_with_small_buffers() {
        let points = run(Scale::Quick, 17);
        // At the smallest buffer, relevance needs fewer I/Os than normal for
        // the I/O-intensive set (the regime the paper highlights).
        let rel = find(&points, QuerySet::IoIntensive, 0.125, PolicyKind::Relevance);
        let norm = find(&points, QuerySet::IoIntensive, 0.125, PolicyKind::Normal);
        assert!(rel.io_requests < norm.io_requests);
        assert!(rel.system_time <= norm.system_time * 1.02);
        // With the whole table buffered every policy converges: I/O counts
        // are close to the table size and times are similar.
        let rel_full = find(&points, QuerySet::IoIntensive, 1.0, PolicyKind::Relevance);
        let norm_full = find(&points, QuerySet::IoIntensive, 1.0, PolicyKind::Normal);
        assert!(
            (norm_full.io_requests as f64) <= rel_full.io_requests as f64 * 2.0,
            "with a table-sized buffer the gap closes: {} vs {}",
            norm_full.io_requests,
            rel_full.io_requests
        );
    }
}
