//! Figure 9 end-to-end against *real* storage: lineitem segment files on
//! disk, served through [`FileStore`] with positioned reads, driven by the
//! same scan → filter → aggregate pipelines as the fig5 live mode.
//!
//! The simulated experiments (fig2..fig9) charge a modelled per-page I/O
//! cost; this module replaces the model with the real thing.  A table is
//! written twice through [`SegmentWriter`] — once with every column plain,
//! once with the Figure 9 codec mix ([`MemTable::lineitem_demo_schemes`]) —
//! and the sweep reruns the fig5 policy comparison and the fig7-style
//! I/O-thread scaling over both files, recording for every point:
//!
//! * delivered payload bandwidth (logical MiB/s through the session API),
//! * `file_read_calls` / `file_bytes_read` from the shared observability
//!   registry (one positioned read per extent — NSM reads all columns),
//! * pin-wait and load counts from the server.
//!
//! The Figure 9 question — does compression pay once I/O is real? — is
//! answered by [`crossover`]: compressed wins when the ~4x smaller file
//! (see [`run_file_mix_volume`]) buys more than the decode costs.  On a
//! page-cache-warm tmpfs the disk is effectively RAM and plain may keep
//! winning; `BENCH_file.json` records whichever way it lands.
//!
//! The sim front-end is wired metadata-faithfully: [`model_from_segment`]
//! derives a [`TableModel`] from the segment *directory* (real on-disk
//! extent sizes → pages), so a [`Simulation`] over the compressed file
//! schedules proportionally less I/O — [`run_sim_from_segment`] exposes
//! that path and the tests pin sim bytes to the measured file bytes.

use cscan_core::policy::PolicyKind;
use cscan_core::sim::{QuerySpec, SimConfig, Simulation};
use cscan_core::threaded::ScanServer;
use cscan_core::{CScanPlan, ColSet, TableModel};
use cscan_exec::{AggFunc, Expr, Filter, HashAggregate, MemTable, Operator, SessionSource};
use cscan_obs::Registry;
use cscan_storage::segment::{FileStore, SegmentSummary, SegmentWriter};
use cscan_storage::{ChunkId, ChunkStore, ColumnId, Compression, ScanRanges, DEFAULT_PAGE_SIZE};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `l_quantity`'s position in [`MemTable::lineitem_demo`] (pinned by test).
const QTY_COL: usize = 1;
/// `l_returnflag`'s position in [`MemTable::lineitem_demo`] (pinned by test).
const FLAG_COL: usize = 5;

/// Writes a lineitem demo table as a segment file: every chunk of
/// [`MemTable::lineitem_demo`], with all columns plain or all under the
/// Figure 9 codec mix.
pub fn write_lineitem_segment(
    path: &Path,
    chunks: u32,
    rows_per_chunk: u64,
    compressed: bool,
) -> io::Result<SegmentSummary> {
    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let schemes = if compressed {
        MemTable::lineitem_demo_schemes()
    } else {
        vec![Compression::None; table.width()]
    };
    let mut writer = SegmentWriter::create(path, schemes)?;
    for c in 0..table.num_chunks() {
        let data = table.read_chunk_all(ChunkId::new(c));
        let cols: Vec<&[i64]> = (0..table.width()).map(|i| data.column(i)).collect();
        writer.append_chunk(&cols)?;
    }
    writer.finish()
}

/// Builds the ABM's [`TableModel`] from a segment's footer directory — the
/// metadata-faithful bridge to both front-ends: chunk count and rows come
/// straight from the directory, and pages-per-chunk from the *actual*
/// on-disk extent bytes (so a compressed segment models proportionally
/// less I/O, exactly like the DSM widths of the paper's Figure 9).
pub fn model_from_segment(store: &FileStore) -> TableModel {
    let dir = store.directory();
    let chunks = dir.num_chunks();
    let rows = dir.chunk_rows(ChunkId::new(0)).unwrap_or(1).max(1);
    let pages = (0..chunks)
        .map(|c| {
            dir.chunk_bytes(ChunkId::new(c), None)
                .div_ceil(DEFAULT_PAGE_SIZE)
        })
        .max()
        .unwrap_or(1)
        .max(1);
    TableModel::nsm_uniform(chunks, rows, pages)
}

/// Runs the deterministic simulation front-end over a segment-derived
/// model: `streams` staggered full scans under `policy`, in virtual time.
/// Returns `(makespan_secs, sim_bytes_read)`.
pub fn run_sim_from_segment(
    path: &Path,
    policy: PolicyKind,
    streams: usize,
) -> io::Result<(f64, u64)> {
    let store = FileStore::open(path)?;
    let model = model_from_segment(&store);
    let mut sim = Simulation::new(model, policy, SimConfig::default());
    for i in 0..streams {
        sim.submit_stream(vec![QuerySpec::full_scan(
            format!("sim-file-{i}"),
            5_000_000.0,
        )]);
    }
    let result = sim.run();
    Ok((result.total_time.as_secs_f64(), result.bytes_read))
}

/// One live file-backed measurement point.
#[derive(Debug, Clone)]
pub struct FilePoint {
    /// `"plain"` or `"compressed"` — which segment file served the scan.
    pub mode: &'static str,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// I/O worker threads issuing positioned reads.
    pub io_threads: usize,
    /// Concurrent pipeline threads.
    pub streams: usize,
    /// Wall-clock run time in seconds.
    pub wall_secs: f64,
    /// Rows that entered the aggregates, summed over all pipelines.
    pub rows: u64,
    /// Logical payload delivered to consumers, in MiB.
    pub delivered_mib: f64,
    /// Delivered payload per wall-clock second, in MiB/s.
    pub delivered_mib_s: f64,
    /// Positioned read calls issued against the segment file.
    pub file_read_calls: u64,
    /// Bytes read from the segment file (compressed where applicable).
    pub file_bytes_read: u64,
    /// Total consumer pin-wait in seconds.
    pub pin_wait_secs: f64,
    /// Chunk loads the ABM committed (sharing keeps this below
    /// streams × chunks).
    pub loads: u64,
    /// Pins dropped without `complete()` — must stay zero.
    pub unconsumed_drops: u64,
}

/// Runs one live point: `streams` Q1-style pipelines over a threaded
/// server whose store is [`FileStore::open`]`(path)`, with the simulated
/// per-page I/O cost zeroed — the positioned reads are the real cost now.
/// The store and the server share one observability registry, so the
/// returned `file_*` counters cover exactly this run.
pub fn run_file_point(
    path: &Path,
    mode: &'static str,
    policy: PolicyKind,
    io_threads: usize,
    streams: usize,
) -> io::Result<FilePoint> {
    let obs = Arc::new(Registry::new());
    let store = FileStore::open(path)?.with_observability(Arc::clone(&obs));
    let chunks = store.num_chunks();
    let rows_per_chunk = store.chunk_rows(ChunkId::new(0)).unwrap_or(0);
    let width = store.num_columns() as u64;
    let model = model_from_segment(&store);
    let server = Arc::new(
        ScanServer::builder(model)
            .policy(policy)
            .buffer_chunks((chunks as u64 / 4).max(4))
            // Real reads replace the simulated per-page sleep.
            .io_cost_per_page(Duration::ZERO)
            .io_threads(io_threads)
            .store(Arc::new(store))
            .observability(Arc::clone(&obs))
            .table_label(format!("fig9-file-{mode}"))
            .build(),
    );
    let flag = ColumnId::new(FLAG_COL as u16);
    let qty = ColumnId::new(QTY_COL as u16);
    let started = Instant::now();
    let workers: Vec<_> = (0..streams)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let handle = server.cscan(CScanPlan::new(
                    format!("file-{mode}-{i}"),
                    ScanRanges::full(chunks),
                    ColSet::empty(),
                ));
                let src = SessionSource::new(handle, vec![flag, qty])
                    .with_observability(server.metrics());
                let filtered = Filter::new(src, Expr::col(1).le(Expr::lit(45)));
                let mut agg =
                    HashAggregate::new(filtered, vec![0], vec![AggFunc::Count, AggFunc::Sum(1)]);
                let out = agg
                    .next()
                    .expect("fault-free file scan")
                    .expect("aggregate output");
                out.column(1).iter().sum::<i64>() as u64
            })
        })
        .collect();
    let rows: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("pipeline thread"))
        .sum();
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let delivered_mib =
        (streams as u64 * chunks as u64 * rows_per_chunk * width * 8) as f64 / (1024.0 * 1024.0);
    let snap = server.metrics().snapshot();
    Ok(FilePoint {
        mode,
        policy,
        io_threads,
        streams,
        wall_secs,
        rows,
        delivered_mib,
        delivered_mib_s: delivered_mib / wall_secs,
        file_read_calls: snap.counter("file_read_calls"),
        file_bytes_read: snap.counter("file_bytes_read"),
        pin_wait_secs: server.pin_wait().as_secs_f64(),
        loads: server.loads_completed(),
        unconsumed_drops: server.unconsumed_drops(),
    })
}

/// Geometry and sweep axes of a file-backed run.
#[derive(Debug, Clone)]
pub struct FileSweepConfig {
    /// Directory the segment files are written into.
    pub dir: PathBuf,
    /// Chunks per table.
    pub chunks: u32,
    /// Rows per chunk.
    pub rows_per_chunk: u64,
    /// Concurrent pipeline threads per point.
    pub streams: usize,
    /// I/O thread counts to sweep (the fig7 axis).
    pub io_threads: Vec<usize>,
}

/// Writes the plain and compressed segments and runs the full sweep:
/// mode × io_threads × policy.  Returns the points plus the two segment
/// summaries (`[plain, compressed]`) for file-size reporting.
pub fn run_file_sweep(cfg: &FileSweepConfig) -> io::Result<(Vec<FilePoint>, [SegmentSummary; 2])> {
    std::fs::create_dir_all(&cfg.dir)?;
    let plain_path = cfg.dir.join("lineitem_plain.seg");
    let compressed_path = cfg.dir.join("lineitem_compressed.seg");
    let plain = write_lineitem_segment(&plain_path, cfg.chunks, cfg.rows_per_chunk, false)?;
    let compressed =
        write_lineitem_segment(&compressed_path, cfg.chunks, cfg.rows_per_chunk, true)?;
    let mut points = Vec::new();
    for (mode, path) in [("plain", &plain_path), ("compressed", &compressed_path)] {
        for &io_threads in &cfg.io_threads {
            for policy in PolicyKind::ALL {
                points.push(run_file_point(path, mode, policy, io_threads, cfg.streams)?);
            }
        }
    }
    Ok((points, [plain, compressed]))
}

/// The Figure 9 verdict over a sweep's points.
#[derive(Debug, Clone, Copy)]
pub struct FileCrossover {
    /// Best delivered bandwidth over the plain file, MiB/s.
    pub plain_best_mib_s: f64,
    /// Best delivered bandwidth over the compressed file, MiB/s.
    pub compressed_best_mib_s: f64,
    /// compressed / plain best-point ratio (> 1 means compression pays).
    pub speedup: f64,
    /// Whether the compressed file out-delivered the plain one anywhere.
    pub crossover_observed: bool,
}

/// Computes the plain-vs-compressed crossover from a sweep's points.
pub fn crossover(points: &[FilePoint]) -> FileCrossover {
    let best = |mode: &str| {
        points
            .iter()
            .filter(|p| p.mode == mode)
            .map(|p| p.delivered_mib_s)
            .fold(0.0, f64::max)
    };
    let plain = best("plain");
    let compressed = best("compressed");
    FileCrossover {
        plain_best_mib_s: plain,
        compressed_best_mib_s: compressed,
        speedup: compressed / plain.max(1e-9),
        crossover_observed: compressed > plain,
    }
}

/// Deterministic (timing-free) file I/O volumes of the Figure 9 mix.
#[derive(Debug, Clone, Copy)]
pub struct FileMixVolume {
    /// Bytes read from the plain segment for one full materialization.
    pub plain_bytes: u64,
    /// Positioned reads against the plain segment.
    pub plain_read_calls: u64,
    /// Bytes read from the compressed segment for the same scan.
    pub compressed_bytes: u64,
    /// Positioned reads against the compressed segment.
    pub compressed_read_calls: u64,
    /// plain / compressed byte ratio (≥ 2 is the paper's regime).
    pub ratio: f64,
}

/// Materializes every chunk of one segment and reports the observed file
/// I/O counters.
fn measured_volume(path: &Path, chunks: u32) -> io::Result<(u64, u64)> {
    let obs = Arc::new(Registry::new());
    let store = FileStore::open(path)?.with_observability(Arc::clone(&obs));
    for c in 0..chunks {
        let payload = store
            .materialize(ChunkId::new(c), None)
            .map_err(|e| io::Error::other(format!("materialize chunk {c}: {e:?}")))?;
        payload
            .verify_checksums()
            .map_err(|e| io::Error::other(format!("checksum chunk {c}: {e:?}")))?;
    }
    let snap = obs.snapshot();
    Ok((
        snap.counter("file_bytes_read"),
        snap.counter("file_read_calls"),
    ))
}

/// Writes both segments and measures the file I/O volume of a full scan of
/// each — the end-to-end analogue of fig9's [`super::fig9::run_mix_volume`],
/// with the bytes counted at the `read_at` boundary instead of in memory.
pub fn run_file_mix_volume(
    dir: &Path,
    chunks: u32,
    rows_per_chunk: u64,
) -> io::Result<FileMixVolume> {
    std::fs::create_dir_all(dir)?;
    let plain_path = dir.join("mix_plain.seg");
    let compressed_path = dir.join("mix_compressed.seg");
    write_lineitem_segment(&plain_path, chunks, rows_per_chunk, false)?;
    write_lineitem_segment(&compressed_path, chunks, rows_per_chunk, true)?;
    let (plain_bytes, plain_read_calls) = measured_volume(&plain_path, chunks)?;
    let (compressed_bytes, compressed_read_calls) = measured_volume(&compressed_path, chunks)?;
    Ok(FileMixVolume {
        plain_bytes,
        plain_read_calls,
        compressed_bytes,
        compressed_read_calls,
        ratio: plain_bytes as f64 / compressed_bytes.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cscan_fig9_file_{tag}_{}", std::process::id()))
    }

    #[test]
    fn pipeline_columns_match_the_demo_table() {
        let t = MemTable::lineitem_demo(100, 100);
        assert_eq!(t.column_index("l_quantity"), Some(QTY_COL));
        assert_eq!(t.column_index("l_returnflag"), Some(FLAG_COL));
    }

    #[test]
    fn file_sweep_smoke() {
        let cfg = FileSweepConfig {
            dir: tmp_dir("sweep"),
            chunks: 8,
            rows_per_chunk: 200,
            streams: 2,
            io_threads: vec![2],
        };
        let (points, [plain, compressed]) = run_file_sweep(&cfg).expect("sweep");
        assert_eq!(points.len(), 2 * PolicyKind::ALL.len());
        assert!(compressed.file_bytes < plain.file_bytes);
        let expected_rows = points[0].rows;
        for p in &points {
            assert!(p.delivered_mib_s > 0.0, "{} {}", p.mode, p.policy);
            assert_eq!(p.rows, expected_rows, "{} {}", p.mode, p.policy);
            assert_eq!(p.unconsumed_drops, 0, "{} {}", p.mode, p.policy);
            assert!(p.loads >= cfg.chunks as u64, "{} {}", p.mode, p.policy);
            // Every committed load reads the whole chunk: one positioned
            // read per column extent.
            assert!(
                p.file_read_calls >= p.loads * 6,
                "{} {}: {} calls for {} loads",
                p.mode,
                p.policy,
                p.file_read_calls,
                p.loads
            );
            assert!(p.file_bytes_read > 0, "{} {}", p.mode, p.policy);
        }
        // The compressed file serves each chunk load with far fewer bytes.
        // (Total bytes are timing-dependent — eviction/reload counts vary —
        // but bytes per committed load are exactly the chunk's extents.)
        let bytes_per_load = |mode: &str| {
            points
                .iter()
                .filter(|p| p.mode == mode)
                .map(|p| p.file_bytes_read as f64 / p.loads.max(1) as f64)
                .fold(0.0, f64::max)
        };
        assert!(bytes_per_load("compressed") * 2.0 < bytes_per_load("plain"));
        let x = crossover(&points);
        assert!(x.plain_best_mib_s > 0.0 && x.compressed_best_mib_s > 0.0);
        std::fs::remove_dir_all(&cfg.dir).expect("cleanup");
    }

    #[test]
    fn mix_volume_is_deterministic_and_halved() {
        let dir = tmp_dir("mix");
        let a = run_file_mix_volume(&dir, 6, 300).expect("mix volume");
        let b = run_file_mix_volume(&dir, 6, 300).expect("mix volume rerun");
        assert_eq!(a.plain_bytes, b.plain_bytes);
        assert_eq!(a.compressed_bytes, b.compressed_bytes);
        assert_eq!(a.plain_read_calls, 6 * 6, "one read per column extent");
        assert!(
            a.ratio >= 2.0,
            "the fig9 mix must at least halve file I/O, got {:.2}x",
            a.ratio
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn sim_front_end_is_metadata_faithful() {
        let dir = tmp_dir("sim");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Chunks must span several 64 KiB pages for the page-granular sim
        // model to see the compressed extents as fewer pages.
        let plain_path = dir.join("plain.seg");
        let compressed_path = dir.join("compressed.seg");
        write_lineitem_segment(&plain_path, 4, 20_000, false).expect("write plain");
        write_lineitem_segment(&compressed_path, 4, 20_000, true).expect("write compressed");
        let (plain_secs, plain_bytes) =
            run_sim_from_segment(&plain_path, PolicyKind::Relevance, 1).expect("sim plain");
        let (compressed_secs, compressed_bytes) =
            run_sim_from_segment(&compressed_path, PolicyKind::Relevance, 1)
                .expect("sim compressed");
        // The sim's modelled I/O tracks the real extent sizes: the
        // compressed segment schedules fewer bytes and finishes no later.
        assert!(compressed_bytes < plain_bytes);
        assert!(compressed_secs <= plain_secs);
        // Sim bytes come from the directory's real extents, rounded up to
        // whole pages per chunk; one full scan must stay within a page per
        // chunk of the measured file volume.
        let (file_plain, _) = measured_volume(&plain_path, 4).expect("measure plain");
        assert!(plain_bytes >= file_plain);
        assert!(plain_bytes <= file_plain + 4 * DEFAULT_PAGE_SIZE);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
