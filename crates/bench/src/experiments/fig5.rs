//! Figure 5: throughput / latency scatter over fifteen query mixes.
//!
//! Each mix (SPEED ∈ {SF, S, F, SSF, FFS} × SIZE ∈ {S, M, L}) is run under
//! every policy; the figure plots each policy's average stream time and
//! average normalized latency *relative to relevance* for the same mix, so
//! relevance sits at (1, 1) and points up/right of it are worse.

use crate::harness::{base_times, compare_policies, Scale};
use cscan_core::policy::PolicyKind;
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::mixes::QueryMix;
use cscan_workload::streams::{build_streams, StreamSetup};
use std::sync::Arc;
use std::time::Duration;

/// One point of the scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// The policy.
    pub policy: PolicyKind,
    /// The mix label, e.g. `"SF-M"`.
    pub mix: String,
    /// Average stream time divided by relevance's for the same mix.
    pub stream_time_ratio: f64,
    /// Average normalized latency divided by relevance's for the same mix.
    pub latency_ratio: f64,
}

/// Runs the Figure 5 experiment over all (or the first `limit`) mixes.
pub fn run(scale: Scale, seed: u64, limit: Option<usize>) -> Vec<ScatterPoint> {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = super::table2::config(scale);
    let mixes = QueryMix::all();
    let mixes = &mixes[..limit.unwrap_or(mixes.len()).min(mixes.len())];
    let mut points = Vec::new();
    for mix in mixes {
        let classes = mix.classes();
        let setup = StreamSetup {
            streams: scale.streams(),
            queries_per_stream: scale.queries_per_stream(),
            classes: classes.clone(),
            seed,
        };
        let streams = build_streams(&setup, &model, None);
        let base = base_times(&model, &classes, config);
        let cmp = compare_policies(&model, &streams, config, &base);
        let relevance = cmp.row(PolicyKind::Relevance);
        let (rel_time, rel_lat) = (
            relevance.avg_stream_time.max(1e-9),
            relevance.avg_normalized_latency.max(1e-9),
        );
        for row in &cmp.rows {
            points.push(ScatterPoint {
                policy: row.policy,
                mix: mix.label(),
                stream_time_ratio: row.avg_stream_time / rel_time,
                latency_ratio: row.avg_normalized_latency / rel_lat,
            });
        }
    }
    points
}

// ----------------------------------------------------------------------
// Live mode: the real-payload pipeline through the ScanSession API.
// ----------------------------------------------------------------------

/// One live measurement: `streams` concurrent scan → filter → aggregate
/// pipelines over a threaded `ScanServer` with real payloads, per policy.
#[derive(Debug, Clone)]
pub struct LivePoint {
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// Number of concurrent pipeline threads.
    pub streams: usize,
    /// Wall-clock run time in seconds.
    pub wall_secs: f64,
    /// Rows delivered through the session API, summed over all pipelines.
    pub rows: u64,
    /// Payload data delivered to consumers, in MiB.
    pub delivered_mib: f64,
    /// Delivered payload per wall-clock second, in MiB/s.
    pub mib_per_sec: f64,
    /// Total time consumers spent blocked in `next_chunk` (pin-wait).
    pub pin_wait_secs: f64,
    /// Chunk loads the ABM committed (sharing keeps this far below
    /// streams × chunks).
    pub loads: u64,
    /// Pins dropped without `complete()` — must stay zero.
    pub unconsumed_drops: u64,
    /// p99 time to first chunk across the run's queries, in nanoseconds
    /// (log2-bucket upper bound, from the server's metrics snapshot).
    pub ttfc_p99_ns: u64,
    /// p99 single pin-wait episode, in nanoseconds (log2-bucket upper bound).
    pub pin_wait_p99_ns: u64,
}

/// Geometry of the tracked live run.
pub const LIVE_STREAMS: usize = 8;
/// Chunks in the live table.
pub const LIVE_CHUNKS: u32 = 64;
/// Rows per chunk in the live table.
pub const LIVE_ROWS_PER_CHUNK: u64 = 2_000;

/// Runs the live-pipeline measurement once per policy: `streams` threads
/// each drive a full Q1-style pipeline (scan → filter → hash aggregate)
/// through [`cscan_exec::SessionSource`] over a live server whose store is
/// the `lineitem` demo table, and the delivered-payload throughput and
/// pin-wait time are recorded.
pub fn run_live(streams: usize, chunks: u32, rows_per_chunk: u64) -> Vec<LivePoint> {
    use cscan_core::threaded::ScanServer;
    use cscan_core::{CScanPlan, ColSet, ScanRanges, TableModel};
    use cscan_exec::{AggFunc, Expr, Filter, HashAggregate, MemTable, Operator, SessionSource};
    use cscan_storage::ColumnId;

    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let payload_bytes_per_chunk = rows_per_chunk * table.width() as u64 * 8;
    let mut points = Vec::new();
    for policy in PolicyKind::ALL {
        let model = TableModel::nsm_uniform(chunks, rows_per_chunk, 16);
        let server = Arc::new(
            ScanServer::builder(model)
                .policy(policy)
                .buffer_chunks((chunks as u64 / 4).max(4))
                .io_cost_per_page(Duration::from_micros(5))
                .io_threads(4)
                .store(Arc::new(table.clone()))
                .build(),
        );
        let flag = ColumnId::new(table.column_index("l_returnflag").unwrap() as u16);
        let qty = ColumnId::new(table.column_index("l_quantity").unwrap() as u16);
        let started = std::time::Instant::now();
        let workers: Vec<_> = (0..streams)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let handle = server.cscan(CScanPlan::new(
                        format!("live-{i}"),
                        ScanRanges::full(chunks),
                        ColSet::empty(),
                    ));
                    let src = SessionSource::new(handle, vec![flag, qty])
                        .with_observability(server.metrics());
                    let filtered = Filter::new(src, Expr::col(1).le(Expr::lit(45)));
                    let mut agg = HashAggregate::new(
                        filtered,
                        vec![0],
                        vec![AggFunc::Count, AggFunc::Sum(1)],
                    );
                    let out = agg
                        .next()
                        .expect("fault-free scan")
                        .expect("aggregate output");
                    // Rows that entered the aggregate (count per group).
                    out.column(1).iter().sum::<i64>() as u64
                })
            })
            .collect();
        let rows: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
        let delivered_chunks = streams as u64 * chunks as u64;
        let delivered_mib = (delivered_chunks * payload_bytes_per_chunk) as f64 / (1024.0 * 1024.0);
        let snap = server.metrics().snapshot();
        points.push(LivePoint {
            policy,
            streams,
            wall_secs,
            rows,
            delivered_mib,
            mib_per_sec: delivered_mib / wall_secs,
            pin_wait_secs: server.pin_wait().as_secs_f64(),
            loads: server.loads_completed(),
            unconsumed_drops: server.unconsumed_drops(),
            ttfc_p99_ns: snap.ttfc.p99(),
            pin_wait_p99_ns: snap.pin_wait.p99(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_is_the_reference_point_and_rarely_beaten() {
        // A subset of mixes keeps the test fast while covering all speeds.
        let points = run(Scale::Quick, 21, Some(6));
        assert_eq!(points.len(), 6 * 4);
        let relevance: Vec<&ScatterPoint> = points
            .iter()
            .filter(|p| p.policy == PolicyKind::Relevance)
            .collect();
        for p in &relevance {
            assert!((p.stream_time_ratio - 1.0).abs() < 1e-9);
            assert!((p.latency_ratio - 1.0).abs() < 1e-9);
        }
        // Figure 5's conclusion: the other policies land at >= (1,1) on at
        // least one axis for the vast majority of mixes; normal is worse on
        // both axes for every mix.
        for p in points.iter().filter(|p| p.policy == PolicyKind::Normal) {
            assert!(
                p.stream_time_ratio > 0.95 && p.latency_ratio > 0.95,
                "normal should not beat relevance on {}: ({}, {})",
                p.mix,
                p.stream_time_ratio,
                p.latency_ratio
            );
        }
        let worse_count = points
            .iter()
            .filter(|p| p.policy != PolicyKind::Relevance)
            .filter(|p| p.stream_time_ratio >= 0.95 || p.latency_ratio >= 0.95)
            .count();
        let total = points
            .iter()
            .filter(|p| p.policy != PolicyKind::Relevance)
            .count();
        assert!(
            worse_count as f64 >= total as f64 * 0.9,
            "{worse_count}/{total} competitor points should not dominate relevance"
        );
    }

    #[test]
    fn live_mode_smoke() {
        // Tiny geometry: exercises the whole live path (real threads, real
        // payloads, pipeline results) for every policy without release-build
        // timing assumptions.
        let points = run_live(2, 8, 200);
        assert_eq!(points.len(), PolicyKind::ALL.len());
        let expected_rows = points[0].rows;
        for p in &points {
            assert!(p.wall_secs > 0.0, "{}", p.policy);
            assert!(p.mib_per_sec > 0.0, "{}", p.policy);
            assert!(p.loads >= 8, "{}: every chunk read at least once", p.policy);
            assert_eq!(p.unconsumed_drops, 0, "{}", p.policy);
            assert!(
                p.ttfc_p99_ns > 0,
                "{}: every query records a time to first chunk",
                p.policy
            );
            assert_eq!(
                p.rows, expected_rows,
                "{}: every policy aggregates the same rows",
                p.policy
            );
        }
    }
}
