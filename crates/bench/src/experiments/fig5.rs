//! Figure 5: throughput / latency scatter over fifteen query mixes.
//!
//! Each mix (SPEED ∈ {SF, S, F, SSF, FFS} × SIZE ∈ {S, M, L}) is run under
//! every policy; the figure plots each policy's average stream time and
//! average normalized latency *relative to relevance* for the same mix, so
//! relevance sits at (1, 1) and points up/right of it are worse.

use crate::harness::{base_times, compare_policies, Scale};
use cscan_core::policy::PolicyKind;
use cscan_workload::lineitem::lineitem_nsm_model;
use cscan_workload::mixes::QueryMix;
use cscan_workload::streams::{build_streams, StreamSetup};

/// One point of the scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// The policy.
    pub policy: PolicyKind,
    /// The mix label, e.g. `"SF-M"`.
    pub mix: String,
    /// Average stream time divided by relevance's for the same mix.
    pub stream_time_ratio: f64,
    /// Average normalized latency divided by relevance's for the same mix.
    pub latency_ratio: f64,
}

/// Runs the Figure 5 experiment over all (or the first `limit`) mixes.
pub fn run(scale: Scale, seed: u64, limit: Option<usize>) -> Vec<ScatterPoint> {
    let model = lineitem_nsm_model(scale.nsm_scale_factor());
    let config = super::table2::config(scale);
    let mixes = QueryMix::all();
    let mixes = &mixes[..limit.unwrap_or(mixes.len()).min(mixes.len())];
    let mut points = Vec::new();
    for mix in mixes {
        let classes = mix.classes();
        let setup = StreamSetup {
            streams: scale.streams(),
            queries_per_stream: scale.queries_per_stream(),
            classes: classes.clone(),
            seed,
        };
        let streams = build_streams(&setup, &model, None);
        let base = base_times(&model, &classes, config);
        let cmp = compare_policies(&model, &streams, config, &base);
        let relevance = cmp.row(PolicyKind::Relevance);
        let (rel_time, rel_lat) = (
            relevance.avg_stream_time.max(1e-9),
            relevance.avg_normalized_latency.max(1e-9),
        );
        for row in &cmp.rows {
            points.push(ScatterPoint {
                policy: row.policy,
                mix: mix.label(),
                stream_time_ratio: row.avg_stream_time / rel_time,
                latency_ratio: row.avg_normalized_latency / rel_lat,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_is_the_reference_point_and_rarely_beaten() {
        // A subset of mixes keeps the test fast while covering all speeds.
        let points = run(Scale::Quick, 21, Some(6));
        assert_eq!(points.len(), 6 * 4);
        let relevance: Vec<&ScatterPoint> = points
            .iter()
            .filter(|p| p.policy == PolicyKind::Relevance)
            .collect();
        for p in &relevance {
            assert!((p.stream_time_ratio - 1.0).abs() < 1e-9);
            assert!((p.latency_ratio - 1.0).abs() < 1e-9);
        }
        // Figure 5's conclusion: the other policies land at >= (1,1) on at
        // least one axis for the vast majority of mixes; normal is worse on
        // both axes for every mix.
        for p in points.iter().filter(|p| p.policy == PolicyKind::Normal) {
            assert!(
                p.stream_time_ratio > 0.95 && p.latency_ratio > 0.95,
                "normal should not beat relevance on {}: ({}, {})",
                p.mix,
                p.stream_time_ratio,
                p.latency_ratio
            );
        }
        let worse_count = points
            .iter()
            .filter(|p| p.policy != PolicyKind::Relevance)
            .filter(|p| p.stream_time_ratio >= 0.95 || p.latency_ratio >= 0.95)
            .count();
        let total = points
            .iter()
            .filter(|p| p.policy != PolicyKind::Relevance)
            .count();
        assert!(
            worse_count as f64 >= total as f64 * 0.9,
            "{worse_count}/{total} competitor points should not dominate relevance"
        );
    }
}
