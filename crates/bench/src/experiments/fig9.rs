//! Figure 9 — lightweight compression: decode bandwidth, compression
//! ratios, and the compressed-vs-uncompressed I/O volume of the DSM mix.
//!
//! The paper's Figure 9 derives its DSM column widths from PDICT / PFOR /
//! PFOR-DELTA compression; this experiment measures the *real* codecs in
//! `cscan_storage::codec` on data shaped like the figure's columns:
//!
//! * per-scheme decode bandwidth (GiB/s of decoded output) and effective
//!   compression ratio (decoded bytes / encoded bytes);
//! * the I/O volume of the lineitem demo mix with every column stored
//!   under its matched scheme, against the same columns uncompressed;
//! * a live threaded scan over a [`CompressingStore`], reporting how much
//!   of the pin-wait went to first-pin decompression.

use cscan_core::policy::PolicyKind;
use cscan_core::threaded::ScanServer;
use cscan_core::{CScanPlan, ColSet, TableModel};
use cscan_exec::MemTable;
use cscan_storage::codec::EncodedColumn;
use cscan_storage::{ChunkId, ChunkStore, ColumnId, CompressingStore, Compression, ScanRanges};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One codec measurement point.
#[derive(Debug, Clone)]
pub struct CodecPoint {
    /// Human-readable column/scheme description.
    pub name: &'static str,
    /// Codec identifier (`pdict` / `pfor` / `pfor_delta`).
    pub codec: &'static str,
    /// Values encoded.
    pub rows: usize,
    /// Encoded size in MiB.
    pub encoded_mib: f64,
    /// Decoded (logical) size in MiB.
    pub decoded_mib: f64,
    /// Effective compression ratio: decoded / encoded (higher = smaller).
    pub ratio: f64,
    /// Sustained decode bandwidth in GiB/s of decoded output.
    pub decode_gib_s: f64,
}

/// Generates `rows` values shaped like one of the figure's columns.
fn column_data(codec: &'static str, rows: usize) -> Vec<i64> {
    match codec {
        // A clustered key: ~4 tuples per key, strictly non-decreasing —
        // PFOR-DELTA's best case, like `l_orderkey`.
        "pfor_delta" => (0..rows).map(|i| i as i64 / 4).collect(),
        // A 21-bit-ish foreign key with ~2% full-width outliers, like
        // `l_partkey` in the figure.
        "pfor" => (0..rows)
            .map(|i| {
                if i % 50 == 0 {
                    i64::MAX - i as i64
                } else {
                    (i as i64).wrapping_mul(2_654_435_761) % (1 << 21)
                }
            })
            .collect(),
        // A three-valued flag column, like `l_returnflag`.
        "pdict" => (0..rows).map(|i| (i % 3) as i64).collect(),
        other => panic!("unknown codec {other}"),
    }
}

/// The scheme applied to each generated column.
fn column_scheme(codec: &'static str) -> Compression {
    match codec {
        "pfor_delta" => Compression::PforDelta {
            bits: 3,
            exception_rate: 0.02,
        },
        "pfor" => Compression::Pfor {
            bits: 21,
            exception_rate: 0.02,
        },
        "pdict" => Compression::Dictionary { bits: 2 },
        other => panic!("unknown codec {other}"),
    }
}

/// Measures the sustained decode bandwidth of `enc`, in GiB/s of decoded
/// output, by decoding into a reused buffer until at least `budget` has
/// elapsed (minimum three passes, so one cold pass cannot dominate).
pub fn measure_decode_gib_s(enc: &EncodedColumn, budget: Duration) -> f64 {
    let mut out = Vec::with_capacity(enc.rows());
    let started = Instant::now();
    let mut passes = 0u64;
    while passes < 3 || started.elapsed() < budget {
        enc.decode_into(&mut out);
        passes += 1;
    }
    let secs = started.elapsed().as_secs_f64();
    let decoded_bytes = passes as f64 * enc.rows() as f64 * 8.0;
    decoded_bytes / secs / (1u64 << 30) as f64
}

/// Runs the per-codec sweep: encode `rows` values per scheme, measure
/// ratio and decode bandwidth.
pub fn run_codec_sweep(rows: usize) -> Vec<CodecPoint> {
    [
        ("orderkey: PFOR-DELTA 3-bit", "pfor_delta"),
        ("partkey: PFOR 21-bit", "pfor"),
        ("returnflag: PDICT 2-bit", "pdict"),
    ]
    .into_iter()
    .map(|(name, codec)| {
        let values = column_data(codec, rows);
        let enc = EncodedColumn::encode(&values, column_scheme(codec));
        debug_assert_eq!(enc.decode(), values, "codec must round-trip");
        let decoded_bytes = rows as f64 * 8.0;
        CodecPoint {
            name,
            codec,
            rows,
            encoded_mib: enc.encoded_bytes() as f64 / (1 << 20) as f64,
            decoded_mib: decoded_bytes / (1 << 20) as f64,
            ratio: decoded_bytes / enc.encoded_bytes() as f64,
            decode_gib_s: measure_decode_gib_s(&enc, Duration::from_millis(200)),
        }
    })
    .collect()
}

/// The I/O volumes of the figure's mix: every lineitem demo column stored
/// under its matched scheme vs. uncompressed.
#[derive(Debug, Clone, Copy)]
pub struct MixVolume {
    /// Plain (uncompressed) bytes of the mix, in MiB.
    pub uncompressed_mib: f64,
    /// Encoded bytes of the same columns, in MiB.
    pub compressed_mib: f64,
    /// Volume ratio (uncompressed / compressed; ≥ 2 is the paper's regime).
    pub ratio: f64,
}

/// Materializes every chunk of a lineitem demo table through a
/// [`CompressingStore`] and sums physical (encoded) vs logical bytes.
pub fn run_mix_volume(chunks: u32, rows_per_chunk: u64) -> MixVolume {
    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let store = CompressingStore::new(table, MemTable::lineitem_demo_schemes());
    let (mut physical, mut logical) = (0usize, 0usize);
    for c in 0..chunks {
        let payload = store
            .materialize(ChunkId::new(c), None)
            .expect("in-memory store cannot fail");
        physical += payload.physical_bytes();
        logical += payload.logical_bytes();
    }
    let mib = |b: usize| b as f64 / (1 << 20) as f64;
    MixVolume {
        uncompressed_mib: mib(logical),
        compressed_mib: mib(physical),
        ratio: logical as f64 / physical.max(1) as f64,
    }
}

/// A live compressed scan: wall time, decode share, delivered volume.
#[derive(Debug, Clone, Copy)]
pub struct LiveCompressedPoint {
    /// Chunks scanned.
    pub chunks: u32,
    /// Rows delivered.
    pub rows: u64,
    /// Wall-clock seconds for the full scan.
    pub wall_secs: f64,
    /// Seconds spent in first-pin decodes (subset of pin-wait).
    pub decode_secs: f64,
    /// Column values decompressed.
    pub values_decoded: u64,
    /// Decode bandwidth seen by the live scan (GiB/s of decoded values).
    pub live_decode_gib_s: f64,
    /// Logical MiB delivered per wall second.
    pub delivered_mib_s: f64,
}

/// Scans a compressed lineitem table end-to-end through the threaded
/// executor (decode-on-first-pin on the consumer thread).
pub fn run_live_compressed(chunks: u32, rows_per_chunk: u64) -> LiveCompressedPoint {
    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let width = table.width();
    let model = TableModel::nsm_uniform(chunks, rows_per_chunk, 16);
    let store = CompressingStore::new(table, MemTable::lineitem_demo_schemes());
    let server = ScanServer::builder(model)
        .policy(PolicyKind::Relevance)
        .buffer_chunks(chunks as u64 / 4 + 1)
        .io_cost_per_page(Duration::ZERO)
        .io_threads(2)
        .store(Arc::new(store))
        .build();
    let started = Instant::now();
    let handle = server.cscan(CScanPlan::new(
        "fig9-live",
        ScanRanges::full(chunks),
        ColSet::empty(),
    ));
    let mut rows = 0u64;
    let mut checksum = 0i64;
    while let Some(pin) = handle.next_chunk().expect("fault-free scan") {
        rows += pin.rows() as u64;
        // Touch a column so the read is real.
        if let Some(v) = pin.column(ColumnId::new(0)) {
            checksum = checksum.wrapping_add(v[0]);
        }
        pin.complete();
    }
    handle.finish();
    let wall_secs = started.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    let decode_secs = server.decode_time().as_secs_f64();
    let values_decoded = server.values_decoded();
    LiveCompressedPoint {
        chunks,
        rows,
        wall_secs,
        decode_secs,
        values_decoded,
        live_decode_gib_s: values_decoded as f64 * 8.0
            / decode_secs.max(1e-9)
            / (1u64 << 30) as f64,
        delivered_mib_s: rows as f64 * 8.0 * width as f64 / (1 << 20) as f64 / wall_secs.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_sweep_produces_sane_points() {
        let points = run_codec_sweep(64 * 1024);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.ratio > 1.0, "{}: figure-shaped data must shrink", p.name);
            assert!(p.decode_gib_s > 0.0);
        }
        // The clustered key compresses hardest.
        assert!(
            points[0].ratio > 10.0,
            "PFOR-DELTA ratio: {}",
            points[0].ratio
        );
    }

    #[test]
    fn mix_volume_matches_the_paper_regime() {
        let mix = run_mix_volume(8, 1_000);
        assert!(
            mix.ratio >= 2.0,
            "the fig9 mix must at least halve I/O volume, got {:.2}x",
            mix.ratio
        );
        assert!(mix.compressed_mib < mix.uncompressed_mib);
    }

    #[test]
    fn live_compressed_scan_decodes_every_column_once() {
        let p = run_live_compressed(8, 500);
        assert_eq!(p.rows, 4_000);
        assert_eq!(p.values_decoded, 4_000 * 6, "six columns per chunk");
        assert!(p.decode_secs >= 0.0);
    }
}
