//! Fault sweep — the data plane under injected I/O failures: goodput and
//! retry counts as the transient fault rate rises, and the clean-path cost
//! of payload checksumming.
//!
//! Every point drives a real threaded [`ScanServer`] over a
//! [`FaultInjectingStore`] wrapping compressed lineitem chunks: transient
//! read failures are retried with backoff by the I/O workers, corrupted
//! payloads are caught by the install-time checksum and retried, and the
//! delivered rows are counted against wall-clock time.  The checksum
//! overhead measurement times [`verify_checksums`] against the
//! materialize-and-decode work it rides on, which is the quantity the
//! release fault gate bounds at 5%.
//!
//! [`verify_checksums`]: cscan_storage::ChunkPayload::verify_checksums

use cscan_core::iosched::RetryPolicy;
use cscan_core::policy::PolicyKind;
use cscan_core::threaded::ScanServer;
use cscan_core::{CScanPlan, ColSet, TableModel};
use cscan_exec::MemTable;
use cscan_obs::Registry;
use cscan_storage::{
    ChunkId, ChunkStore, CompressingStore, FaultConfig, FaultInjectingStore, ScanRanges,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One point of the fault-rate sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultSweepPoint {
    /// Per-attempt transient fault probability injected into the store.
    pub fault_rate: f64,
    /// Per-attempt payload corruption probability (caught by checksums).
    pub corruption_rate: f64,
    /// Rows delivered to the consumer.
    pub rows: u64,
    /// Wall-clock seconds for the full scan.
    pub wall_secs: f64,
    /// Logical MiB delivered per wall second (goodput).
    pub goodput_mib_s: f64,
    /// Failed read attempts observed by the I/O workers.
    pub load_faults: u64,
    /// Retries scheduled for those failures.
    pub load_retries: u64,
    /// Corruptions caught by the install-time checksum.
    pub checksum_failures: u64,
    /// Chunks given up on (must be 0 in a transient-only sweep).
    pub chunks_quarantined: u64,
    /// Transient read failures the store *injected* (mirrored by the fault
    /// injector).  Differs from worker-observed `load_faults` in both
    /// directions: lower when a failed attempt belonged to a load cancelled
    /// concurrently, higher-looking `load_faults` when corruptions (counted
    /// separately as `checksum_failures`) also fail the install.
    pub faults_injected: u64,
    /// p99 single pin-wait episode, in nanoseconds (log2-bucket upper
    /// bound) — shows how injected faults stretch consumer stalls.
    pub pin_wait_p99_ns: u64,
}

/// Scans `chunks` compressed lineitem chunks end-to-end at each transient
/// `rate`, returning one goodput/retry point per rate.  Rate 0.0 is the
/// fault-free baseline the other points are read against.
///
/// All points share one observability [`Registry`]; each point reads its
/// counters from [`Registry::snapshot_and_reset`], so a point reports only
/// its own window and nothing accumulates across rates.
pub fn run_fault_sweep(chunks: u32, rows_per_chunk: u64, rates: &[f64]) -> Vec<FaultSweepPoint> {
    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let width = table.width() as u64;
    let registry = Arc::new(Registry::new());
    rates
        .iter()
        .map(|&rate| {
            let config = FaultConfig {
                corruption_rate: rate / 2.0,
                ..FaultConfig::transient_only(0xFA11_5EED ^ rate.to_bits(), rate)
            };
            let corruption_rate = config.corruption_rate;
            let store = FaultInjectingStore::new(
                CompressingStore::new(table.clone(), MemTable::lineitem_demo_schemes()),
                config,
            )
            .with_observability(Arc::clone(&registry));
            let model = TableModel::nsm_uniform(chunks, rows_per_chunk, 16);
            let server = ScanServer::builder(model)
                .policy(PolicyKind::Relevance)
                .buffer_chunks(chunks as u64 / 4 + 1)
                .io_cost_per_page(Duration::ZERO)
                .io_threads(2)
                .retry_policy(RetryPolicy {
                    backoff_base: Duration::from_micros(50),
                    backoff_cap: Duration::from_micros(500),
                    ..RetryPolicy::default()
                })
                .observability(Arc::clone(&registry))
                .store(Arc::new(store))
                .build();
            let started = Instant::now();
            let handle = server.cscan(CScanPlan::new(
                "fault-sweep",
                ScanRanges::full(chunks),
                ColSet::empty(),
            ));
            let mut rows = 0u64;
            while let Some(pin) = handle
                .next_chunk()
                .expect("transient-only sweep must not quarantine")
            {
                rows += pin.rows() as u64;
                pin.complete();
            }
            let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
            let logical_mib = (rows * width * 8) as f64 / (1 << 20) as f64;
            let snap = registry.snapshot_and_reset();
            FaultSweepPoint {
                fault_rate: rate,
                corruption_rate,
                rows,
                wall_secs,
                goodput_mib_s: logical_mib / wall_secs,
                load_faults: snap.counter("load_faults"),
                load_retries: snap.counter("load_retries"),
                checksum_failures: snap.counter("checksum_failures"),
                chunks_quarantined: snap.counter("chunks_quarantined"),
                faults_injected: snap.counter("faults_injected"),
                pin_wait_p99_ns: snap.pin_wait.p99(),
            }
        })
        .collect()
}

/// The clean-path cost of payload checksumming.
#[derive(Debug, Clone, Copy)]
pub struct ChecksumOverhead {
    /// Chunks measured.
    pub chunks: u32,
    /// Seconds spent materializing + decoding the payloads (the work the
    /// consume path would do with checksums compiled out).
    pub baseline_secs: f64,
    /// Seconds spent verifying the same payloads' checksums (the
    /// install-time verification the I/O worker adds).
    pub verify_secs: f64,
    /// `verify_secs / baseline_secs` — the fractional slowdown checksums
    /// add to a fault-free consume path.
    pub overhead_frac: f64,
}

/// Times checksum verification against the materialize-and-decode work of
/// `chunks` compressed lineitem chunks.  The release fault gate requires
/// `overhead_frac <= 0.05`.
pub fn run_checksum_overhead(chunks: u32, rows_per_chunk: u64) -> ChecksumOverhead {
    let table = MemTable::lineitem_demo(chunks as u64 * rows_per_chunk, rows_per_chunk);
    let store = CompressingStore::new(table, MemTable::lineitem_demo_schemes());
    let (mut baseline, mut verify) = (Duration::ZERO, Duration::ZERO);
    let mut decoded = 0usize;
    for c in 0..chunks {
        let t0 = Instant::now();
        let payload = store
            .materialize(ChunkId::new(c), None)
            .expect("in-memory store cannot fail");
        let t1 = Instant::now();
        payload.verify_checksums().expect("clean payloads verify");
        let t2 = Instant::now();
        decoded += payload.try_decode_all().expect("clean payloads decode");
        let t3 = Instant::now();
        baseline += (t1 - t0) + (t3 - t2);
        verify += t2 - t1;
    }
    assert!(decoded > 0, "the overhead run must decode real data");
    let baseline_secs = baseline.as_secs_f64().max(1e-9);
    let verify_secs = verify.as_secs_f64();
    ChecksumOverhead {
        chunks,
        baseline_secs,
        verify_secs,
        overhead_frac: verify_secs / baseline_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_fault_counts() {
        let points = run_fault_sweep(8, 200, &[0.0, 0.3]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load_faults, 0, "rate 0 injects nothing");
        assert_eq!(points[0].rows, 8 * 200);
        assert!(points[1].load_faults > 0, "rate 0.3 must inject faults");
        assert_eq!(points[1].rows, 8 * 200, "faults never lose rows");
        assert_eq!(points[1].chunks_quarantined, 0);
        // Worker-observed faults are injected transients plus corruptions
        // caught at install time (checksum failures retry like faults).
        assert!(
            points[1].faults_injected + points[1].checksum_failures >= points[1].load_faults,
            "injected {} + checksum {} < observed {}",
            points[1].faults_injected,
            points[1].checksum_failures,
            points[1].load_faults
        );
        assert!(points[1].faults_injected > 0);
    }

    #[test]
    fn sweep_points_report_their_own_window_only() {
        // snapshot_and_reset between points: a rate-0 point run *after* a
        // faulty one must still read zero faults, not the faulty residue.
        let points = run_fault_sweep(8, 200, &[0.3, 0.0]);
        assert!(points[0].load_faults > 0);
        assert_eq!(
            points[1].load_faults, 0,
            "counters must not leak across sweep points"
        );
        assert_eq!(points[1].faults_injected, 0);
        assert_eq!(points[1].checksum_failures, 0);
    }

    #[test]
    fn checksum_overhead_is_measurable() {
        let o = run_checksum_overhead(8, 500);
        assert!(o.verify_secs >= 0.0);
        assert!(o.baseline_secs > 0.0);
        assert!(
            o.overhead_frac < 1.0,
            "verify cannot dominate the consume path"
        );
    }
}
