//! Figure 2: probability of finding a useful chunk in a randomly-filled
//! buffer pool (Equation 1), for buffer sizes of 1–50 % of the relation.

use cscan_core::reuse::{
    figure2_curves, reuse_probability, reuse_probability_monte_carlo, ReuseCurve,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The buffer sizes (as a percentage of the 100-chunk relation) plotted in
/// Figure 2 of the paper.
pub const BUFFER_PERCENTS: [u64; 5] = [1, 5, 10, 20, 50];

/// The table size, in chunks, used by the figure.
pub const TABLE_CHUNKS: u64 = 100;

/// The analytic curves plus a Monte-Carlo cross-check at a few sample points.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// One curve per buffer size, exactly as plotted in the paper.
    pub curves: Vec<ReuseCurve>,
    /// `(buffer_chunks, demand_chunks, analytic, monte_carlo)` check points.
    pub cross_checks: Vec<(u64, u64, f64, f64)>,
}

/// Computes the Figure 2 data.
pub fn run(seed: u64) -> Fig2Result {
    let curves = figure2_curves(TABLE_CHUNKS, &BUFFER_PERCENTS);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cross_checks = Vec::new();
    for &cb in &BUFFER_PERCENTS {
        for cq in [5u64, 10, 30] {
            let exact = reuse_probability(TABLE_CHUNKS, cq, cb);
            let mc = reuse_probability_monte_carlo(&mut rng, TABLE_CHUNKS, cq, cb, 30_000);
            cross_checks.push((cb, cq, exact, mc));
        }
    }
    Fig2Result {
        curves,
        cross_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_paper_shape() {
        let r = run(1);
        assert_eq!(r.curves.len(), 5);
        // The paper's headline point: >50% reuse probability for a 10% scan
        // with a 10% buffer.
        let ten_pct = r.curves.iter().find(|c| c.buffer_chunks == 10).unwrap();
        let p_at_10 = ten_pct.points.iter().find(|(cq, _)| *cq == 10).unwrap().1;
        assert!(p_at_10 > 0.5 && p_at_10 < 0.8, "got {p_at_10}");
        // The 50% buffer curve saturates very quickly.
        let fifty = r.curves.iter().find(|c| c.buffer_chunks == 50).unwrap();
        assert!(
            fifty.points[9].1 > 0.99,
            "10-chunk demand against a 50% buffer is near certain"
        );
        // The 1% buffer curve grows roughly linearly with demand.
        let one = r.curves.iter().find(|c| c.buffer_chunks == 1).unwrap();
        assert!((one.points[49].1 - 0.5).abs() < 0.02);
    }

    #[test]
    fn monte_carlo_validates_the_formula() {
        let r = run(7);
        for (cb, cq, exact, mc) in r.cross_checks {
            assert!(
                (exact - mc).abs() < 0.02,
                "cb={cb} cq={cq}: exact={exact} mc={mc}"
            );
        }
    }
}
