//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple fixed-width text table (right-aligned numeric columns).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "  {:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["policy", "time", "I/Os"]);
        t.row(["normal", "283.72", "4186"]);
        t.row(["relevance", "99.55", "1842"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("normal"));
        assert!(lines[3].contains("relevance"));
        // Numeric columns are right aligned: the shorter number is padded.
        assert!(lines[3].contains(" 99.55"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(283.721), "283.72");
        assert_eq!(pct(0.9394), "93.9%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }
}
