//! Reproduces Figure 7: average query latency for 1–32 concurrent queries
//! scanning 5 %, 20 % or 50 % of the relation.

use cscan_bench::experiments::fig7;
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    let limit = if scale == Scale::Quick {
        Some(16)
    } else {
        None
    };
    println!("Figure 7 — latency vs. number of concurrent queries ({scale:?} scale)\n");
    let points = fig7::run(scale, 42, limit);

    for &percent in &fig7::PERCENTS {
        let mut table = TextTable::new(["queries", "normal", "attach", "elevator", "relevance"]);
        for &n in fig7::CONCURRENCY
            .iter()
            .filter(|&&n| points.iter().any(|p| p.queries == n))
        {
            let mut row = vec![n.to_string()];
            for policy in PolicyKind::ALL {
                let p = points
                    .iter()
                    .find(|p| p.percent == percent && p.queries == n && p.policy == policy)
                    .expect("missing point");
                row.push(f2(p.avg_latency));
            }
            table.row(row);
        }
        println!(
            "{percent}% scans — average query latency (s)\n{}",
            table.render()
        );
    }
}
