//! Threaded-executor sweep: aggregate delivered-chunk throughput plus the
//! scheduler-lock and shard-lock hold-time histograms at 16/64/128/256
//! concurrent scan threads against the live
//! [`cscan_core::threaded::ScanServer`] (4 I/O workers, 256-chunk table).
//! Writes `BENCH_threaded.json` so the perf trajectory of the sharded-hub
//! architecture is tracked across PRs.

use cscan_bench::experiments::fig7;
use cscan_bench::report::TextTable;
use std::fmt::Write as _;

fn main() {
    println!(
        "Threaded-executor sweep — concurrent full scans, relevance policy,\n\
         4 I/O workers, 256-chunk NSM table, sharded pin ledger + grant\n\
         mailboxes + narrow scheduler lock\n"
    );
    let points = fig7::run_thread_sweep();

    let mut table = TextTable::new([
        "scan threads",
        "chunks/s",
        "wall (s)",
        "chunk loads",
        "sched acqs",
        "sched p99 (ns)",
        "shard acqs",
        "shard p50 (ns)",
        "shard p99 (ns)",
        "shard max (ns)",
        "conflicts",
    ]);
    for p in &points {
        table.row([
            p.threads.to_string(),
            format!("{:.0}", p.chunks_per_sec),
            format!("{:.3}", p.wall_secs),
            p.loads.to_string(),
            p.lock_acquisitions.to_string(),
            p.lock_p99_ns.to_string(),
            p.shard_lock_acquisitions.to_string(),
            p.shard_lock_p50_ns.to_string(),
            p.shard_lock_p99_ns.to_string(),
            p.shard_lock_max_ns.to_string(),
            p.hub_shard_conflicts.to_string(),
        ]);
    }
    println!("{}", table.render());

    if let (Some(base), Some(wide)) = (
        points.iter().find(|p| p.threads == 16),
        points.iter().find(|p| p.threads == 256),
    ) {
        println!(
            "throughput at 256 vs 16 scan threads: {:.2}x (acceptance gate: >= 2.5x)\n",
            wide.chunks_per_sec / base.chunks_per_sec.max(1e-9)
        );
    }

    let json = render_json(&points);
    let path = "BENCH_threaded.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the sweep as JSON (hand-rolled: the workspace deliberately has
/// no serde_json dependency).
fn render_json(points: &[fig7::ThreadSweepPoint]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig7_thread_sweep\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"io_threads\": {}, \"chunks_per_sec\": {:.1}, \
             \"wall_secs\": {:.4}, \"loads\": {}, \"lock_acquisitions\": {}, \
             \"lock_hold_p50_ns\": {}, \"lock_hold_p99_ns\": {}, \"lock_hold_max_ns\": {}, \
             \"pool_shards\": {}, \"shard_lock_acquisitions\": {}, \
             \"shard_lock_hold_p50_ns\": {}, \"shard_lock_hold_p99_ns\": {}, \
             \"shard_lock_hold_max_ns\": {}, \"hub_shard_conflicts\": {}}}{sep}",
            p.threads,
            p.io_threads,
            p.chunks_per_sec,
            p.wall_secs,
            p.loads,
            p.lock_acquisitions,
            p.lock_p50_ns,
            p.lock_p99_ns,
            p.lock_max_ns,
            p.pool_shards,
            p.shard_lock_acquisitions,
            p.shard_lock_p50_ns,
            p.shard_lock_p99_ns,
            p.shard_lock_max_ns,
            p.hub_shard_conflicts
        );
    }
    let speedup = match (
        points.iter().find(|p| p.threads == 16),
        points.iter().find(|p| p.threads == 256),
    ) {
        (Some(a), Some(b)) if a.chunks_per_sec > 0.0 => b.chunks_per_sec / a.chunks_per_sec,
        _ => 0.0,
    };
    let _ = writeln!(out, "  ],\n  \"t256_vs_t16_speedup\": {speedup:.3}\n}}");
    out
}
