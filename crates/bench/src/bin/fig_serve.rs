//! The served-scan figure: ≥32 concurrent remote clients streaming two
//! tables through the network service over loopback TCP, with the
//! admission cap set below the offered load (so excess scans queue or are
//! shed, both counted in the metrics plane) and every Nth scan killed
//! mid-stream by dropping its connection.  Writes `BENCH_server.json` so
//! the served trajectory — sustained aggregate MiB/s and p99
//! time-to-first-batch under open-loop load — is tracked across PRs.
//!
//! The run hard-fails (exit 1) if the acceptance invariants don't hold:
//! the cap must actually bite (queued + shed > 0, peak admitted within
//! the caps) and no buffer frame may stay pinned once every client has
//! disconnected, mid-scan kills included.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use cscan_bench::experiments::serve::{run_serve_sweep, ServeResult, ServeSweepConfig};
use cscan_bench::report::TextTable;
use std::fmt::Write as _;

const CLIENTS: usize = 40;
const SCANS_PER_CLIENT: usize = 4;
const CHUNKS: u32 = 64;
const ROWS_PER_CHUNK: u64 = 2_000;
const MAX_ATTACHED: usize = 12;
const MAX_QUEUED: usize = 6;
const KILL_EVERY: usize = 8;

fn main() {
    println!(
        "Served scans — {CLIENTS} concurrent remote clients over 2 tables\n\
         (lineitem {CHUNKS} chunks x {ROWS_PER_CHUNK} rows, orders half that; \
         admission cap {MAX_ATTACHED}/table, queue {MAX_QUEUED}, \
         every {KILL_EVERY}th scan killed mid-stream)\n"
    );

    let cfg = ServeSweepConfig {
        clients: CLIENTS,
        scans_per_client: SCANS_PER_CLIENT,
        chunks: CHUNKS,
        rows_per_chunk: ROWS_PER_CHUNK,
        max_attached: MAX_ATTACHED,
        max_queued: MAX_QUEUED,
        kill_every: KILL_EVERY,
    };
    let r = run_serve_sweep(&cfg);

    let mut table = TextTable::new(["metric", "value"]);
    table.row(["clients".into(), r.clients.to_string()]);
    table.row(["tables".into(), r.tables.to_string()]);
    table.row(["scans completed".into(), r.scans_completed.to_string()]);
    table.row(["scans killed mid-stream".into(), r.scans_killed.to_string()]);
    table.row(["shed retries by clients".into(), r.retries.to_string()]);
    table.row(["wall (s)".into(), format!("{:.2}", r.wall_secs)]);
    table.row([
        "sustained MiB/s".into(),
        format!("{:.1}", r.sustained_mib_s),
    ]);
    table.row(["ttfb p50 (ms)".into(), format!("{:.2}", ms(&r, false))]);
    table.row(["ttfb p99 (ms)".into(), format!("{:.2}", ms(&r, true))]);
    table.row(["admitted".into(), r.admitted.to_string()]);
    table.row(["queued at the gate".into(), r.queued.to_string()]);
    table.row(["shed at the gate".into(), r.shed.to_string()]);
    table.row(["peak admitted (gauge)".into(), r.peak_admitted.to_string()]);
    table.row(["batches served".into(), r.batches_served.to_string()]);
    table.row([
        "bytes served (MiB)".into(),
        format!("{:.1}", r.bytes_served as f64 / (1024.0 * 1024.0)),
    ]);
    table.row(["connections shed".into(), r.connections_shed.to_string()]);
    table.row(["pinned frames after".into(), r.pinned_after.to_string()]);
    println!("{}", table.render());

    let json = render_json(&r, &cfg);
    let path = "BENCH_server.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Acceptance invariants — fail the run loudly, not just the gate test.
    let mut bad = false;
    if r.scans_completed + r.scans_killed != (CLIENTS * SCANS_PER_CLIENT) as u64 {
        eprintln!(
            "FAIL: {} completed + {} killed != {} scheduled scans",
            r.scans_completed,
            r.scans_killed,
            CLIENTS * SCANS_PER_CLIENT
        );
        bad = true;
    }
    if r.queued + r.shed == 0 {
        eprintln!("FAIL: admission cap never bit — no scan was queued or shed");
        bad = true;
    }
    if r.peak_admitted > (2 * MAX_ATTACHED) as u64 {
        eprintln!(
            "FAIL: peak admitted {} exceeds the caps ({} per table x 2 tables)",
            r.peak_admitted, MAX_ATTACHED
        );
        bad = true;
    }
    if r.pinned_after != 0 {
        eprintln!(
            "FAIL: {} buffer frames still pinned after every disconnect",
            r.pinned_after
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!(
        "\nadmission cap enforced (peak {} <= {} across both gates), \
         {} scans queued / {} shed at the gate, zero pins leaked",
        r.peak_admitted,
        2 * MAX_ATTACHED,
        r.queued,
        r.shed
    );
}

fn ms(r: &ServeResult, p99: bool) -> f64 {
    let d = if p99 { r.ttfb_p99 } else { r.ttfb_p50 };
    d.as_secs_f64() * 1e3
}

/// Renders the measurements as JSON (hand-rolled: the workspace
/// deliberately has no serde_json dependency).
fn render_json(r: &ServeResult, cfg: &ServeSweepConfig) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig_serve\",\n  \"points\": [\n");
    let _ = writeln!(
        out,
        "    {{\"clients\": {}, \"tables\": {}, \"scans_per_client\": {}, \
         \"max_attached\": {}, \"max_queued\": {}, \"kill_every\": {}, \
         \"scans_completed\": {}, \"scans_killed\": {}, \"retries\": {}, \
         \"wall_secs\": {:.4}, \"sustained_mib_s\": {:.3}, \
         \"ttfb_p50_ms\": {:.4}, \"ttfb_p99_ms\": {:.4}, \
         \"admitted\": {}, \"queued\": {}, \"shed\": {}, \
         \"peak_admitted\": {}, \"batches_served\": {}, \
         \"bytes_served_mib\": {:.3}, \"connections_shed\": {}, \
         \"pinned_frames_after\": {}}}",
        r.clients,
        r.tables,
        cfg.scans_per_client,
        cfg.max_attached,
        cfg.max_queued,
        cfg.kill_every,
        r.scans_completed,
        r.scans_killed,
        r.retries,
        r.wall_secs,
        r.sustained_mib_s,
        ms(r, false),
        ms(r, true),
        r.admitted,
        r.queued,
        r.shed,
        r.peak_admitted,
        r.batches_served,
        r.bytes_served as f64 / (1024.0 * 1024.0),
        r.connections_shed,
        r.pinned_after
    );
    out.push_str("  ]\n}\n");
    out
}
