//! Runs every reproduction (Tables 2–4, Figures 2, 4–8) in sequence and
//! prints a compact summary of the headline comparisons.  Use `--paper` for
//! the full-scale run (several minutes) or `--quick` (default) for a fast
//! smoke run of all experiments.

use cscan_bench::experiments::{fig2, fig4, fig5, fig6, fig7, fig8, table2, table3, table4};
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    println!("=== Cooperative Scans: full experiment suite ({scale:?} scale) ===\n");

    // Figure 2.
    let f2r = fig2::run(42);
    let p = f2r
        .curves
        .iter()
        .find(|c| c.buffer_chunks == 10)
        .unwrap()
        .points[9]
        .1;
    println!("[Fig 2] reuse probability, 10% scan vs 10% buffer: {p:.2} (paper: >0.5)\n");

    // Table 2.
    let t2 = table2::run(scale, 42);
    print_comparison("Table 2 (NSM)", &t2.comparison.rows);

    // Figure 4.
    let traces = fig4::run(scale, 42);
    let mut t = TextTable::new(["policy", "I/O requests", "sequentiality"]);
    for tr in &traces {
        t.row([
            tr.policy.name().to_string(),
            tr.trace.len().to_string(),
            f2(fig4::sequentiality(&tr.trace)),
        ]);
    }
    println!("[Fig 4] chunk-access traces\n{}", t.render());

    // Figure 5.
    let limit = if scale == Scale::Quick { Some(6) } else { None };
    let points = fig5::run(scale, 42, limit);
    let dominated = points
        .iter()
        .filter(|p| p.policy != PolicyKind::Relevance)
        .filter(|p| p.stream_time_ratio >= 1.0 && p.latency_ratio >= 1.0)
        .count();
    let total = points
        .iter()
        .filter(|p| p.policy != PolicyKind::Relevance)
        .count();
    println!("[Fig 5] {dominated}/{total} competitor points dominated by relevance\n");

    // Figure 6.
    let f6 = fig6::run(scale, 42);
    let rel = f6
        .iter()
        .find(|p| {
            p.set == fig6::QuerySet::IoIntensive
                && p.buffer_fraction < 0.2
                && p.policy == PolicyKind::Relevance
        })
        .unwrap();
    let nor = f6
        .iter()
        .find(|p| {
            p.set == fig6::QuerySet::IoIntensive
                && p.buffer_fraction < 0.2
                && p.policy == PolicyKind::Normal
        })
        .unwrap();
    println!(
        "[Fig 6] smallest buffer, I/O-intensive set: relevance {} I/Os vs normal {} I/Os\n",
        rel.io_requests, nor.io_requests
    );

    // Figure 7.
    let climit = if scale == Scale::Quick { Some(8) } else { None };
    let f7 = fig7::run(scale, 42, climit);
    let max_n = f7.iter().map(|p| p.queries).max().unwrap();
    let rel = f7
        .iter()
        .find(|p| p.percent == 20 && p.queries == max_n && p.policy == PolicyKind::Relevance)
        .unwrap();
    let nor = f7
        .iter()
        .find(|p| p.percent == 20 && p.queries == max_n && p.policy == PolicyKind::Normal)
        .unwrap();
    println!(
        "[Fig 7] {} concurrent 20% scans: relevance {:.2}s vs normal {:.2}s average latency\n",
        max_n, rel.avg_latency, nor.avg_latency
    );

    // Figure 8.
    let iterations = if scale == Scale::Quick { 30 } else { 300 };
    let f8 = fig8::run(iterations);
    let worst = f8
        .iter()
        .map(|p| p.fraction_of_execution)
        .fold(0.0f64, f64::max);
    println!("[Fig 8] worst-case scheduling overhead fraction: {worst:.5} (paper: <0.01)\n");

    // Table 3.
    let t3 = table3::run(scale, 42);
    print_comparison("Table 3 (DSM)", &t3.comparison.rows);

    // Table 4.
    let t4 = table4::run(scale, 42);
    let mut t = TextTable::new([
        "query set",
        "normal I/Os",
        "relevance I/Os",
        "normal lat",
        "relevance lat",
    ]);
    for (set, _) in cscan_workload::synthetic::table4_query_sets() {
        let n = t4.cell(&set, PolicyKind::Normal);
        let r = t4.cell(&set, PolicyKind::Relevance);
        t.row([
            set.clone(),
            n.io_requests.to_string(),
            r.io_requests.to_string(),
            f2(n.latency.mean()),
            f2(r.latency.mean()),
        ]);
    }
    println!("[Table 4] DSM column overlap\n{}", t.render());

    println!("Done.");
}

fn print_comparison(title: &str, rows: &[cscan_bench::PolicyRow]) {
    let mut t = TextTable::new([
        "policy",
        "avg stream time",
        "avg norm latency",
        "total time",
        "I/Os",
    ]);
    for row in rows {
        t.row([
            row.policy.name().to_string(),
            f2(row.avg_stream_time),
            f2(row.avg_normalized_latency),
            f2(row.total_time),
            row.io_requests.to_string(),
        ]);
    }
    println!("[{title}]\n{}", t.render());
}
