//! Outstanding-I/O sweep of the asynchronous scheduler: simulated scan
//! throughput at 64 concurrent queries on an explicit 4-spindle RAID, as
//! the number of in-flight chunk loads grows from 1 (the paper's
//! sequential main loop) to 8.  Writes `BENCH_io.json` so the perf
//! trajectory is tracked across PRs.

use cscan_bench::experiments::fig7;
use cscan_bench::report::TextTable;
use cscan_bench::Scale;
use std::fmt::Write as _;

/// Concurrent single-query streams in the tracked sweep.
const QUERIES: usize = 64;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Outstanding-I/O sweep — {QUERIES} concurrent FAST-20% scans, relevance policy,\n\
         4-spindle RAID striped at chunk granularity ({scale:?} scale)\n"
    );
    let points = fig7::run_io_sweep(scale, QUERIES, 7);

    let mut table = TextTable::new([
        "outstanding",
        "throughput (MiB/s)",
        "total (s)",
        "avg latency (s)",
        "chunk loads",
        "peak in flight",
        "max arm queue",
    ]);
    for p in &points {
        table.row([
            p.outstanding.to_string(),
            format!("{:.1}", p.throughput_mib_s),
            format!("{:.2}", p.total_secs),
            format!("{:.2}", p.avg_latency),
            p.io_requests.to_string(),
            p.peak_outstanding.to_string(),
            p.max_queue_depth.to_string(),
        ]);
    }
    println!("{}", table.render());

    let base = points.first().expect("sweep is never empty");
    if let Some(deep) = points.iter().find(|p| p.outstanding == 8) {
        println!(
            "speedup at K=8 vs K=1: {:.2}x scan throughput (acceptance gate: >= 1.3x)\n",
            deep.throughput_mib_s / base.throughput_mib_s.max(1e-9)
        );
    }

    let json = render_json(&points);
    let path = "BENCH_io.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the sweep as JSON (hand-rolled: the workspace deliberately has
/// no serde_json dependency).
fn render_json(points: &[fig7::IoSweepPoint]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig7_io_sweep\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"outstanding\": {}, \"queries\": {}, \"throughput_mib_s\": {:.3}, \
             \"total_secs\": {:.3}, \"avg_latency_secs\": {:.3}, \"io_requests\": {}, \
             \"peak_outstanding\": {}, \"max_queue_depth\": {}}}{sep}",
            p.outstanding,
            p.queries,
            p.throughput_mib_s,
            p.total_secs,
            p.avg_latency,
            p.io_requests,
            p.peak_outstanding,
            p.max_queue_depth
        );
    }
    let speedup = match (
        points.iter().find(|p| p.outstanding == 1),
        points.iter().find(|p| p.outstanding == 8),
    ) {
        (Some(a), Some(b)) if a.throughput_mib_s > 0.0 => b.throughput_mib_s / a.throughput_mib_s,
        _ => 0.0,
    };
    let _ = writeln!(out, "  ],\n  \"k8_vs_k1_speedup\": {speedup:.3}\n}}");
    out
}
