//! Bulk loader: writes a table as an on-disk segment file.
//!
//! Streams chunks straight from the deterministic generators into a
//! `SegmentWriter`, so memory stays bounded by one chunk regardless of
//! table size — multi-GiB loads are just `--chunks`:
//!
//! ```text
//! segment_load [--table lineitem|synthetic] [--layout nsm|dsm]
//!              [--chunks N] [--rows-per-chunk N] [--compressed]
//!              [--width N] [--seed N] [--out PATH]
//! ```
//!
//! * `lineitem` is the six-column demo table the fig5/fig9 experiments
//!   scan; `--compressed` stores it under the Figure 9 codec mix.
//! * `synthetic` is a `--width`-column table of seeded pseudo-random
//!   values (mostly 16-bit with ~1% full-width outliers); `--compressed`
//!   stores every column under PFOR with an exception budget for the
//!   outliers.
//! * `--layout` only picks the chunk-geometry convention (NSM chunks are
//!   byte-sized, DSM chunks are tuple-count partitions) — the segment
//!   format itself always keeps per-column extents, which is what lets
//!   `FileStore` serve both `cols: None` (NSM payloads) and column-subset
//!   (DSM) requests from one file.
//!
//! The writer targets `<out>.tmp` and atomically renames on success, so a
//! killed load never leaves a partial segment under the final name.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use cscan_exec::MemTable;
use cscan_storage::{ChunkId, Compression, SegmentWriter};
use std::path::PathBuf;
use std::time::Instant;

/// Rows per NSM chunk by default: ~4.6 MiB of six-column tuples.
const NSM_DEFAULT_ROWS: u64 = 100_000;
/// Rows per DSM chunk by default: the paper's tuple-count partitioning.
const DSM_DEFAULT_ROWS: u64 = 500_000;

struct Args {
    table: String,
    layout: String,
    chunks: u32,
    rows_per_chunk: Option<u64>,
    compressed: bool,
    width: usize,
    seed: u64,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: segment_load [--table lineitem|synthetic] [--layout nsm|dsm] \
         [--chunks N] [--rows-per-chunk N] [--compressed] [--width N] \
         [--seed N] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        table: "lineitem".into(),
        layout: "nsm".into(),
        chunks: 64,
        rows_per_chunk: None,
        compressed: false,
        width: 8,
        seed: 0x5EED,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{name} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--table" => args.table = value("--table"),
            "--layout" => args.layout = value("--layout"),
            "--chunks" => args.chunks = parse_num(&value("--chunks")) as u32,
            "--rows-per-chunk" => args.rows_per_chunk = Some(parse_num(&value("--rows-per-chunk"))),
            "--compressed" => args.compressed = true,
            "--width" => args.width = parse_num(&value("--width")) as usize,
            "--seed" => args.seed = parse_num(&value("--seed")),
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if !matches!(args.table.as_str(), "lineitem" | "synthetic") {
        eprintln!("unknown table {}", args.table);
        usage()
    }
    if !matches!(args.layout.as_str(), "nsm" | "dsm") {
        eprintln!("unknown layout {}", args.layout);
        usage()
    }
    if args.chunks == 0 || args.width == 0 {
        eprintln!("degenerate geometry");
        usage()
    }
    args
}

fn parse_num(s: &str) -> u64 {
    match s.replace('_', "").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("not a number: {s}");
            usage()
        }
    }
}

/// SplitMix64: the deterministic value stream of the synthetic table.
fn synthetic_value(seed: u64, col: usize, row: u64) -> i64 {
    let mut z = seed
        .wrapping_add((col as u64).wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(row.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    if z.is_multiple_of(97) {
        // ~1% large positive outliers exercise PFOR's exception path
        // (kept positive: a negative outlier would become the block's
        // frame-of-reference base and un-compress the whole block).
        (z >> 20) as i64
    } else {
        (z % (1 << 16)) as i64
    }
}

fn main() {
    let args = parse_args();
    let rows_per_chunk = args.rows_per_chunk.unwrap_or(match args.layout.as_str() {
        "dsm" => DSM_DEFAULT_ROWS,
        _ => NSM_DEFAULT_ROWS,
    });
    let suffix = if args.compressed { "" } else { "_plain" };
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{}_{}{suffix}.seg", args.table, args.layout)));

    let num_tuples = args.chunks as u64 * rows_per_chunk;
    let (width, schemes): (usize, Vec<Compression>) = match args.table.as_str() {
        "lineitem" => {
            let schemes = if args.compressed {
                MemTable::lineitem_demo_schemes()
            } else {
                vec![Compression::None; 6]
            };
            (6, schemes)
        }
        _ => {
            let scheme = if args.compressed {
                Compression::Pfor {
                    bits: 17,
                    exception_rate: 0.02,
                }
            } else {
                Compression::None
            };
            (args.width, vec![scheme; args.width])
        }
    };
    println!(
        "loading {} ({}, {}): {} chunks x {rows_per_chunk} rows x {width} columns -> {}",
        args.table,
        args.layout,
        if args.compressed {
            "compressed"
        } else {
            "plain"
        },
        args.chunks,
        out.display()
    );

    let lineitem = MemTable::lineitem_demo(num_tuples, rows_per_chunk);
    let started = Instant::now();
    let mut writer = match SegmentWriter::create(&out, schemes) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot create {}: {e}", out.display());
            std::process::exit(1);
        }
    };
    for c in 0..args.chunks {
        // One chunk of columns in memory at a time; the rest is streamed.
        let columns: Vec<Vec<i64>> = if args.table == "lineitem" {
            let data = lineitem.read_chunk_all(ChunkId::new(c));
            (0..width).map(|i| data.column(i).to_vec()).collect()
        } else {
            let base = c as u64 * rows_per_chunk;
            (0..width)
                .map(|col| {
                    (0..rows_per_chunk)
                        .map(|r| synthetic_value(args.seed, col, base + r))
                        .collect()
                })
                .collect()
        };
        let refs: Vec<&[i64]> = columns.iter().map(|v| v.as_slice()).collect();
        if let Err(e) = writer.append_chunk(&refs) {
            eprintln!("append chunk {c}: {e}");
            std::process::exit(1);
        }
    }
    // finish() fsyncs the data, renames <out>.tmp -> <out>, and fsyncs the
    // parent directory: the segment is durably installed or not present.
    let summary = match writer.finish() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("finish {}: {e}", out.display());
            std::process::exit(1);
        }
    };
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let mib = summary.file_bytes as f64 / (1024.0 * 1024.0);
    let logical_mib = (summary.rows * width as u64 * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "wrote {} rows, {mib:.1} MiB on disk ({logical_mib:.1} MiB logical, {:.2}x) \
         in {secs:.2}s ({:.1} MiB/s)",
        summary.rows,
        logical_mib / mib.max(1e-9),
        mib / secs
    );
}
