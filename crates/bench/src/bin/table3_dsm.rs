//! Reproduces Table 3: column-storage (DSM) comparison of the four
//! scheduling policies (TPC-H SF-40, 1.5 GB buffer, faster SLOW query).

use cscan_bench::experiments::table3;
use cscan_bench::report::{f2, pct, TextTable};
use cscan_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Table 3 — DSM policy comparison ({scale:?} scale)\n");
    let result = table3::run(scale, 42);
    let cmp = &result.comparison;

    let mut system = TextTable::new([
        "policy",
        "avg stream time (s)",
        "avg norm. latency",
        "total time (s)",
        "CPU use",
        "I/O requests",
    ]);
    for row in &cmp.rows {
        system.row([
            row.policy.name().to_string(),
            f2(row.avg_stream_time),
            f2(row.avg_normalized_latency),
            f2(row.total_time),
            pct(row.cpu_use),
            row.io_requests.to_string(),
        ]);
    }
    println!("System statistics\n{}", system.render());

    println!("Per-class average latency (seconds)");
    let mut per_class = TextTable::new([
        "class",
        "cold (s)",
        "normal",
        "attach",
        "elevator",
        "relevance",
    ]);
    let labels: Vec<String> = {
        let mut l: Vec<String> = result.base_times.keys().cloned().collect();
        l.sort();
        l
    };
    for label in labels {
        let mut cells = vec![label.clone(), f2(result.base_times[&label])];
        for row in &cmp.rows {
            cells.push(f2(row.result.avg_latency_for(&label).unwrap_or(0.0)));
        }
        per_class.row(cells);
    }
    println!("{}", per_class.render());
}
