//! Reproduces Figure 5: average stream time vs. average normalized latency,
//! relative to the relevance policy, over the fifteen SPEED×SIZE query mixes.

use cscan_bench::experiments::fig5;
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    let limit = if scale == Scale::Quick { Some(6) } else { None };
    println!("Figure 5 — policy performance over query mixes ({scale:?} scale)\n");
    let points = fig5::run(scale, 42, limit);

    for policy in [PolicyKind::Normal, PolicyKind::Attach, PolicyKind::Elevator] {
        let mut table = TextTable::new([
            "mix",
            "stream time / relevance",
            "norm. latency / relevance",
        ]);
        for p in points.iter().filter(|p| p.policy == policy) {
            table.row([p.mix.clone(), f2(p.stream_time_ratio), f2(p.latency_ratio)]);
        }
        println!(
            "[{}] (relevance = 1.00 / 1.00)\n{}",
            policy.name(),
            table.render()
        );
    }

    // Summary: how often each competitor is dominated by relevance.
    let mut summary = TextTable::new([
        "policy",
        "mixes",
        "dominated by relevance",
        "worse on ≥1 axis",
    ]);
    for policy in [PolicyKind::Normal, PolicyKind::Attach, PolicyKind::Elevator] {
        let pts: Vec<_> = points.iter().filter(|p| p.policy == policy).collect();
        let dominated = pts
            .iter()
            .filter(|p| p.stream_time_ratio >= 1.0 && p.latency_ratio >= 1.0)
            .count();
        let worse = pts
            .iter()
            .filter(|p| p.stream_time_ratio >= 1.0 || p.latency_ratio >= 1.0)
            .count();
        summary.row([
            policy.name().to_string(),
            pts.len().to_string(),
            dominated.to_string(),
            worse.to_string(),
        ]);
    }
    println!("{}", summary.render());
}
