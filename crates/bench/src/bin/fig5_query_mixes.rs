//! Reproduces Figure 5: average stream time vs. average normalized latency,
//! relative to the relevance policy, over the fifteen SPEED×SIZE query mixes.
//!
//! With `--live`, instead drives the *real-payload* pipeline — concurrent
//! scan → filter → aggregate trees over a threaded `ScanServer` through the
//! `ScanSession` API — once per policy, and records delivered MiB/s and
//! pin-wait time into `BENCH_exec.json`.

use cscan_bench::experiments::fig5;
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;
use std::fmt::Write as _;

fn main() {
    if std::env::args().any(|a| a == "--live") {
        run_live();
        return;
    }
    let scale = Scale::from_args();
    let limit = if scale == Scale::Quick { Some(6) } else { None };
    println!("Figure 5 — policy performance over query mixes ({scale:?} scale)\n");
    let points = fig5::run(scale, 42, limit);

    for policy in [PolicyKind::Normal, PolicyKind::Attach, PolicyKind::Elevator] {
        let mut table = TextTable::new([
            "mix",
            "stream time / relevance",
            "norm. latency / relevance",
        ]);
        for p in points.iter().filter(|p| p.policy == policy) {
            table.row([p.mix.clone(), f2(p.stream_time_ratio), f2(p.latency_ratio)]);
        }
        println!(
            "[{}] (relevance = 1.00 / 1.00)\n{}",
            policy.name(),
            table.render()
        );
    }

    // Summary: how often each competitor is dominated by relevance.
    let mut summary = TextTable::new([
        "policy",
        "mixes",
        "dominated by relevance",
        "worse on ≥1 axis",
    ]);
    for policy in [PolicyKind::Normal, PolicyKind::Attach, PolicyKind::Elevator] {
        let pts: Vec<_> = points.iter().filter(|p| p.policy == policy).collect();
        let dominated = pts
            .iter()
            .filter(|p| p.stream_time_ratio >= 1.0 && p.latency_ratio >= 1.0)
            .count();
        let worse = pts
            .iter()
            .filter(|p| p.stream_time_ratio >= 1.0 || p.latency_ratio >= 1.0)
            .count();
        summary.row([
            policy.name().to_string(),
            pts.len().to_string(),
            dominated.to_string(),
            worse.to_string(),
        ]);
    }
    println!("{}", summary.render());
}

/// The `--live` mode: real-payload pipelines through the session API.
fn run_live() {
    println!(
        "Live pipelines — {} concurrent scan→filter→aggregate trees over a \
         threaded ScanServer\n({} chunks × {} rows, 4 I/O workers, real pinned payloads)\n",
        fig5::LIVE_STREAMS,
        fig5::LIVE_CHUNKS,
        fig5::LIVE_ROWS_PER_CHUNK
    );
    let points = fig5::run_live(
        fig5::LIVE_STREAMS,
        fig5::LIVE_CHUNKS,
        fig5::LIVE_ROWS_PER_CHUNK,
    );
    let mut table = TextTable::new([
        "policy",
        "delivered (MiB/s)",
        "wall (s)",
        "pin-wait (s)",
        "ttfc p99 (ms)",
        "pin-wait p99 (ms)",
        "rows",
        "chunk loads",
    ]);
    for p in &points {
        table.row([
            p.policy.name().to_string(),
            format!("{:.1}", p.mib_per_sec),
            format!("{:.3}", p.wall_secs),
            format!("{:.3}", p.pin_wait_secs),
            format!("{:.3}", p.ttfc_p99_ns as f64 / 1e6),
            format!("{:.3}", p.pin_wait_p99_ns as f64 / 1e6),
            p.rows.to_string(),
            p.loads.to_string(),
        ]);
    }
    println!("{}", table.render());

    let json = render_live_json(&points);
    let path = "BENCH_exec.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the live points as JSON (hand-rolled: the workspace deliberately
/// has no serde_json dependency).
fn render_live_json(points: &[fig5::LivePoint]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig5_live_pipelines\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"policy\": \"{}\", \"streams\": {}, \"delivered_mib_s\": {:.3}, \
             \"wall_secs\": {:.3}, \"pin_wait_secs\": {:.3}, \"rows\": {}, \
             \"delivered_mib\": {:.3}, \"chunk_loads\": {}, \"unconsumed_drops\": {}, \
             \"ttfc_p99_ns\": {}, \"pin_wait_p99_ns\": {}}}{sep}",
            p.policy.name(),
            p.streams,
            p.mib_per_sec,
            p.wall_secs,
            p.pin_wait_secs,
            p.rows,
            p.delivered_mib,
            p.loads,
            p.unconsumed_drops,
            p.ttfc_p99_ns,
            p.pin_wait_p99_ns
        );
    }
    out.push_str("  ]\n}\n");
    out
}
