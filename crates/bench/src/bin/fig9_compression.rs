//! Figure 9 — compressed mini-columns: per-codec decode bandwidth and
//! compression ratio, the mix's compressed-vs-uncompressed I/O volume, and
//! a live decode-on-first-pin scan.  Writes `BENCH_compression.json` so
//! the compression trajectory is tracked across PRs.

use cscan_bench::experiments::fig9;
use cscan_bench::report::TextTable;
use std::fmt::Write as _;

/// Values per codec point in the sweep (8 MiB of decoded data each).
const SWEEP_ROWS: usize = 1 << 20;
/// Geometry of the mix-volume and live measurements.
const MIX_CHUNKS: u32 = 64;
const MIX_ROWS_PER_CHUNK: u64 = 2_000;

fn main() {
    println!(
        "Figure 9 — lightweight compression: PDICT / PFOR / PFOR-DELTA codecs\n\
         ({SWEEP_ROWS} values per codec; mix = {MIX_CHUNKS} chunks x {MIX_ROWS_PER_CHUNK} rows x 6 columns)\n"
    );

    let points = fig9::run_codec_sweep(SWEEP_ROWS);
    let mut table = TextTable::new([
        "column / scheme",
        "encoded (MiB)",
        "decoded (MiB)",
        "ratio",
        "decode (GiB/s)",
    ]);
    for p in &points {
        table.row([
            p.name.to_string(),
            format!("{:.2}", p.encoded_mib),
            format!("{:.2}", p.decoded_mib),
            format!("{:.1}x", p.ratio),
            format!("{:.2}", p.decode_gib_s),
        ]);
    }
    println!("{}", table.render());

    let mix = fig9::run_mix_volume(MIX_CHUNKS, MIX_ROWS_PER_CHUNK);
    println!(
        "mix I/O volume: {:.2} MiB compressed vs {:.2} MiB uncompressed ({:.2}x smaller; \
         acceptance gate: >= 2x)\n",
        mix.compressed_mib, mix.uncompressed_mib, mix.ratio
    );

    let live = fig9::run_live_compressed(MIX_CHUNKS, MIX_ROWS_PER_CHUNK);
    println!(
        "live scan: {} rows in {:.3}s ({:.1} MiB/s delivered), decode {:.4}s \
         ({} values, {:.2} GiB/s on the consumer thread)\n",
        live.rows,
        live.wall_secs,
        live.delivered_mib_s,
        live.decode_secs,
        live.values_decoded,
        live.live_decode_gib_s
    );

    let json = render_json(&points, &mix, &live);
    let path = "BENCH_compression.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the measurements as JSON (hand-rolled: the workspace
/// deliberately has no serde_json dependency).
fn render_json(
    points: &[fig9::CodecPoint],
    mix: &fig9::MixVolume,
    live: &fig9::LiveCompressedPoint,
) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig9_compression\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"codec\": \"{}\", \"rows\": {}, \
             \"encoded_mib\": {:.3}, \"decoded_mib\": {:.3}, \
             \"compression_ratio\": {:.3}, \"decode_gib_s\": {:.3}}}{sep}",
            p.name, p.codec, p.rows, p.encoded_mib, p.decoded_mib, p.ratio, p.decode_gib_s
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"mix\": {{\"uncompressed_mib\": {:.3}, \"compressed_mib\": {:.3}, \
         \"io_volume_ratio\": {:.3}}},",
        mix.uncompressed_mib, mix.compressed_mib, mix.ratio
    );
    let _ = writeln!(
        out,
        "  \"live\": {{\"chunks\": {}, \"rows\": {}, \"wall_secs\": {:.4}, \
         \"decode_secs\": {:.4}, \"values_decoded\": {}, \"live_decode_gib_s\": {:.3}, \
         \"delivered_mib_s\": {:.3}}}\n}}",
        live.chunks,
        live.rows,
        live.wall_secs,
        live.decode_secs,
        live.values_decoded,
        live.live_decode_gib_s,
        live.delivered_mib_s
    );
    out
}
