//! Reproduces Table 2: row-storage (NSM/PAX) comparison of the four
//! scheduling policies under 16 streams of 4 random FAST/SLOW queries.
//!
//! Run with `--paper` for the full TPC-H SF-10 setup or `--quick` (default)
//! for a scaled-down version.

use cscan_bench::experiments::table2;
use cscan_bench::report::{f2, pct, TextTable};
use cscan_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Table 2 — NSM/PAX policy comparison ({scale:?} scale)\n");
    let result = table2::run(scale, 42);
    let cmp = &result.comparison;

    let mut system = TextTable::new([
        "policy",
        "avg stream time (s)",
        "avg norm. latency",
        "total time (s)",
        "CPU use",
        "I/O requests",
    ]);
    for row in &cmp.rows {
        system.row([
            row.policy.name().to_string(),
            f2(row.avg_stream_time),
            f2(row.avg_normalized_latency),
            f2(row.total_time),
            pct(row.cpu_use),
            row.io_requests.to_string(),
        ]);
    }
    println!("System statistics\n{}", system.render());

    println!("Query statistics (per query class)");
    for row in &cmp.rows {
        let mut per_class = TextTable::new([
            "class",
            "count",
            "standalone (s)",
            "avg latency (s)",
            "stddev",
            "norm. latency",
            "I/Os",
        ]);
        let ios = row.result.ios_by_label();
        for (label, summary) in row.result.latency_by_label() {
            let base = result.base_times.get(&label).copied().unwrap_or(0.0);
            let io = ios
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            per_class.row([
                label.clone(),
                summary.count().to_string(),
                f2(base),
                f2(summary.mean()),
                f2(summary.stddev()),
                f2(if base > 0.0 {
                    summary.mean() / base
                } else {
                    0.0
                }),
                io.to_string(),
            ]);
        }
        println!("\n[{}]\n{}", row.policy.name(), per_class.render());
    }
}
