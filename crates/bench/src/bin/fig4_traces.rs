//! Reproduces Figure 4: disk accesses (chunk number vs. time) for each
//! scheduling policy, rendered as ASCII scatter plots plus gnuplot data
//! written to `target/fig4/`.

use cscan_bench::experiments::fig4;
use cscan_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Figure 4 — chunk accesses over time ({scale:?} scale)\n");
    let traces = fig4::run(scale, 42);

    let out_dir = std::path::Path::new("target/fig4");
    let _ = std::fs::create_dir_all(out_dir);

    for t in &traces {
        println!(
            "[{}]  {} I/Os over {:.1}s  (sequentiality {:.2})",
            t.policy.name(),
            t.trace.len(),
            t.total_time,
            fig4::sequentiality(&t.trace)
        );
        println!("{}", t.trace.to_ascii(100, 24));
        let path = out_dir.join(format!("{}.dat", t.policy.name()));
        if std::fs::write(&path, t.trace.to_gnuplot()).is_ok() {
            println!("(gnuplot data written to {})\n", path.display());
        }
    }
    println!(
        "Expected shapes (paper Fig. 4): normal = many interleaved diagonal scans;\n\
         attach = fewer scans with occasional detaches; elevator = one staircase;\n\
         relevance = dynamic, scattered pattern with the fewest re-reads."
    );
}
