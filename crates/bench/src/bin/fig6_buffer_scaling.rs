//! Reproduces Figure 6: number of I/O requests, system time and average
//! normalized latency as the buffer pool capacity is swept from 12.5 % to
//! 100 % of the table size, for a CPU-intensive and an I/O-intensive query
//! set.

use cscan_bench::experiments::fig6;
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    println!("Figure 6 — behaviour under varying buffer capacity ({scale:?} scale)\n");
    let points = fig6::run(scale, 42);

    for set in [fig6::QuerySet::CpuIntensive, fig6::QuerySet::IoIntensive] {
        println!("=== {} query set ===\n", set.name());
        for (title, value) in [
            ("Number of I/O requests", 0usize),
            ("System time (s)", 1),
            ("Average normalized latency", 2),
        ] {
            let mut table =
                TextTable::new(["buffer %", "normal", "attach", "elevator", "relevance"]);
            for &fraction in &fig6::BUFFER_FRACTIONS {
                let mut row = vec![format!("{:.1}%", fraction * 100.0)];
                for policy in PolicyKind::ALL {
                    let p = points
                        .iter()
                        .find(|p| {
                            p.set == set
                                && (p.buffer_fraction - fraction).abs() < 1e-9
                                && p.policy == policy
                        })
                        .expect("missing point");
                    row.push(match value {
                        0 => p.io_requests.to_string(),
                        1 => f2(p.system_time),
                        _ => f2(p.avg_normalized_latency),
                    });
                }
                table.row(row);
            }
            println!("{title}\n{}", table.render());
        }
    }
}
