//! Figure 9 end-to-end against real storage: the fig5 policy sweep and
//! the fig7-style I/O-thread sweep rerun over *segment files on disk*
//! (plain vs the Figure 9 codec mix), served through `FileStore` with
//! positioned reads.  Writes `BENCH_file.json` so the file-backed
//! trajectory — delivered MiB/s, read syscalls, bytes-from-disk, and the
//! plain-vs-compressed crossover — is tracked across PRs.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use cscan_bench::experiments::fig9_file::{
    self, crossover, FileCrossover, FileMixVolume, FilePoint, FileSweepConfig,
};
use cscan_bench::report::TextTable;
use cscan_core::policy::PolicyKind;
use cscan_storage::SegmentSummary;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Geometry of the tracked run: 64 chunks x 20k rows x 6 columns is
/// ~58 MiB logical (< 256 MiB even with both segment files on a tmpfs).
const CHUNKS: u32 = 64;
const ROWS_PER_CHUNK: u64 = 20_000;
const STREAMS: usize = 8;
const IO_THREADS: [usize; 2] = [1, 4];

fn main() {
    let dir = scratch_dir();
    println!(
        "Figure 9 end-to-end — real segment files through FileStore\n\
         ({CHUNKS} chunks x {ROWS_PER_CHUNK} rows x 6 columns, {STREAMS} streams, \
         io_threads in {IO_THREADS:?}; files under {})\n",
        dir.display()
    );

    let cfg = FileSweepConfig {
        dir: dir.clone(),
        chunks: CHUNKS,
        rows_per_chunk: ROWS_PER_CHUNK,
        streams: STREAMS,
        io_threads: IO_THREADS.to_vec(),
    };
    let (points, [plain, compressed]) = match fig9_file::run_file_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("file sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "segment files: plain {:.1} MiB, compressed {:.1} MiB ({:.2}x smaller)\n",
        mib(plain.file_bytes),
        mib(compressed.file_bytes),
        plain.file_bytes as f64 / compressed.file_bytes.max(1) as f64
    );

    let mut table = TextTable::new([
        "mode",
        "policy",
        "io_thr",
        "MiB/s",
        "read calls",
        "disk MiB",
        "pin-wait s",
        "loads",
    ]);
    for p in &points {
        table.row([
            p.mode.to_string(),
            p.policy.to_string(),
            p.io_threads.to_string(),
            format!("{:.1}", p.delivered_mib_s),
            p.file_read_calls.to_string(),
            format!("{:.1}", mib(p.file_bytes_read)),
            format!("{:.3}", p.pin_wait_secs),
            p.loads.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mix = match fig9_file::run_file_mix_volume(&dir, CHUNKS, ROWS_PER_CHUNK) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("file mix volume failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "file I/O volume (one full scan): {:.1} MiB plain vs {:.1} MiB compressed \
         ({:.2}x smaller; acceptance gate: >= 2x)\n",
        mib(mix.plain_bytes),
        mib(mix.compressed_bytes),
        mix.ratio
    );

    // The sim front-end over the same files: models built from the segment
    // directories, virtual-time makespans per policy.
    let mut sim_rows = Vec::new();
    for (mode, name) in [
        ("plain", "lineitem_plain.seg"),
        ("compressed", "lineitem_compressed.seg"),
    ] {
        for policy in PolicyKind::ALL {
            match fig9_file::run_sim_from_segment(&dir.join(name), policy, STREAMS) {
                Ok((secs, bytes)) => sim_rows.push((mode, policy, secs, bytes)),
                Err(e) => {
                    eprintln!("sim over {name} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let mut sim_table = TextTable::new(["mode", "policy", "sim makespan (s)", "sim MiB read"]);
    for &(mode, policy, secs, bytes) in &sim_rows {
        sim_table.row([
            mode.to_string(),
            policy.to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", mib(bytes)),
        ]);
    }
    println!("{}", sim_table.render());

    let x = crossover(&points);
    if x.crossover_observed {
        println!(
            "crossover observed: compressed delivers {:.1} MiB/s vs {:.1} MiB/s plain \
             ({:.2}x) — the smaller file beats the decode cost",
            x.compressed_best_mib_s, x.plain_best_mib_s, x.speedup
        );
    } else {
        println!(
            "no crossover at this geometry: plain delivers {:.1} MiB/s vs {:.1} MiB/s \
             compressed ({:.2}x). The storage under the scratch dir is page-cache-fast, \
             so the {:.2}x I/O-volume saving does not outweigh the decode cost; on a \
             bandwidth-bound disk the compressed curve crosses over (paper Fig. 9).",
            x.plain_best_mib_s, x.compressed_best_mib_s, x.speedup, mix.ratio
        );
    }

    let json = render_json(&points, &plain, &compressed, &mix, &x);
    let path = "BENCH_file.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if let Err(e) = std::fs::remove_dir_all(&dir) {
        eprintln!("could not clean {}: {e}", dir.display());
    }
}

/// Scratch directory for the segment files (distinct per process, so
/// concurrent CI jobs cannot collide).
fn scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cscan_fig9_file_{}", std::process::id()))
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Renders the measurements as JSON (hand-rolled: the workspace
/// deliberately has no serde_json dependency).
fn render_json(
    points: &[FilePoint],
    plain: &SegmentSummary,
    compressed: &SegmentSummary,
    mix: &FileMixVolume,
    x: &FileCrossover,
) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig9_file\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"policy\": \"{}\", \"io_threads\": {}, \
             \"streams\": {}, \"wall_secs\": {:.4}, \"rows\": {}, \
             \"delivered_mib_s\": {:.3}, \"file_read_calls\": {}, \
             \"file_bytes_read_mib\": {:.3}, \"pin_wait_secs\": {:.4}, \
             \"loads\": {}}}{sep}",
            p.mode,
            p.policy,
            p.io_threads,
            p.streams,
            p.wall_secs,
            p.rows,
            p.delivered_mib_s,
            p.file_read_calls,
            mib(p.file_bytes_read),
            p.pin_wait_secs,
            p.loads
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"segments\": {{\"plain_file_mib\": {:.3}, \"compressed_file_mib\": {:.3}}},",
        mib(plain.file_bytes),
        mib(compressed.file_bytes)
    );
    let _ = writeln!(
        out,
        "  \"mix\": {{\"plain_mib\": {:.3}, \"compressed_mib\": {:.3}, \
         \"io_volume_ratio\": {:.3}}},",
        mib(mix.plain_bytes),
        mib(mix.compressed_bytes),
        mix.ratio
    );
    let _ = writeln!(
        out,
        "  \"crossover\": {{\"plain_best_mib_s\": {:.3}, \"compressed_best_mib_s\": {:.3}, \
         \"speedup\": {:.3}, \"crossover_observed\": {}}}\n}}",
        x.plain_best_mib_s, x.compressed_best_mib_s, x.speedup, x.crossover_observed
    );
    out
}
