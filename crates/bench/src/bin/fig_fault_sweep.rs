//! Fault sweep — goodput, retry counts and checksum overhead of the data
//! plane under injected I/O failures.  Writes `BENCH_faults.json` so the
//! robustness trajectory is tracked across PRs.

use cscan_bench::experiments::faults;
use cscan_bench::report::TextTable;
use std::fmt::Write as _;

/// Geometry of the sweep: a compressed lineitem table scanned end-to-end
/// through the threaded executor at each fault rate.
const CHUNKS: u32 = 64;
const ROWS_PER_CHUNK: u64 = 2_000;
/// Per-attempt transient fault rates (0.0 is the fault-free baseline).
const RATES: &[f64] = &[0.0, 0.05, 0.10, 0.20, 0.40];

fn main() {
    println!(
        "Fault sweep — injected I/O failures through the threaded executor\n\
         ({CHUNKS} chunks x {ROWS_PER_CHUNK} rows, compressed payloads, retry/backoff enabled)\n"
    );

    let points = faults::run_fault_sweep(CHUNKS, ROWS_PER_CHUNK, RATES);
    let mut table = TextTable::new([
        "fault rate",
        "rows",
        "wall (s)",
        "goodput (MiB/s)",
        "faults",
        "retries",
        "checksum fails",
        "quarantined",
        "pin-wait p99 (ms)",
    ]);
    for p in &points {
        table.row([
            format!("{:.2}", p.fault_rate),
            p.rows.to_string(),
            format!("{:.3}", p.wall_secs),
            format!("{:.1}", p.goodput_mib_s),
            p.load_faults.to_string(),
            p.load_retries.to_string(),
            p.checksum_failures.to_string(),
            p.chunks_quarantined.to_string(),
            format!("{:.3}", p.pin_wait_p99_ns as f64 / 1e6),
        ]);
    }
    println!("{}", table.render());

    let overhead = faults::run_checksum_overhead(CHUNKS, ROWS_PER_CHUNK);
    println!(
        "checksum overhead on the clean path: {:.2}% of materialize+decode \
         ({:.4}s verify vs {:.4}s baseline; acceptance gate: <= 5%)\n",
        overhead.overhead_frac * 100.0,
        overhead.verify_secs,
        overhead.baseline_secs
    );

    let json = render_json(&points, &overhead);
    let path = "BENCH_faults.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the measurements as JSON (hand-rolled: the workspace
/// deliberately has no serde_json dependency).
fn render_json(points: &[faults::FaultSweepPoint], overhead: &faults::ChecksumOverhead) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fault_sweep\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"fault_rate\": {:.3}, \"corruption_rate\": {:.3}, \"rows\": {}, \
             \"wall_secs\": {:.4}, \"goodput_mib_s\": {:.3}, \"load_faults\": {}, \
             \"load_retries\": {}, \"checksum_failures\": {}, \"chunks_quarantined\": {}, \
             \"faults_injected\": {}, \"pin_wait_p99_ns\": {}}}{sep}",
            p.fault_rate,
            p.corruption_rate,
            p.rows,
            p.wall_secs,
            p.goodput_mib_s,
            p.load_faults,
            p.load_retries,
            p.checksum_failures,
            p.chunks_quarantined,
            p.faults_injected,
            p.pin_wait_p99_ns
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"checksum_overhead\": {{\"chunks\": {}, \"baseline_secs\": {:.5}, \
         \"verify_secs\": {:.5}, \"checksum_overhead_frac\": {:.5}}}\n}}",
        overhead.chunks, overhead.baseline_secs, overhead.verify_secs, overhead.overhead_frac
    );
    out
}
