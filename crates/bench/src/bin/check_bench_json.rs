//! Tiny jq-style schema check for the tracked `BENCH_*.json` artifacts.
//!
//! CI regenerates every benchmark JSON and then runs this binary: each
//! file must exist, be non-empty, and contain its required keys — a
//! regenerated artifact that silently lost a field (e.g. a bench refactor
//! that dropped a metric) fails the job instead of shipping a hollow
//! trajectory file.  The workspace deliberately has no serde_json
//! dependency, so the check is substring-based on the `"key":` spellings
//! the hand-rolled writers emit.
//!
//! Usage: `check_bench_json [file ...]` — with no arguments, checks every
//! known artifact in the current directory.

use std::process::ExitCode;

/// Required keys per artifact.  Keys are matched as `"name"` substrings.
const SCHEMAS: &[(&str, &[&str])] = &[
    (
        "BENCH_scheduling.json",
        &["experiment", "points", "chunks", "scheduling_ms"],
    ),
    (
        "BENCH_io.json",
        &[
            "experiment",
            "points",
            "outstanding",
            "throughput_mib_s",
            "io_requests",
        ],
    ),
    (
        "BENCH_threaded.json",
        &[
            "experiment",
            "points",
            "chunks_per_sec",
            "lock_hold_p99_ns",
            "pool_shards",
            "shard_lock_acquisitions",
            "shard_lock_hold_p50_ns",
            "shard_lock_hold_p99_ns",
            "shard_lock_hold_max_ns",
            "hub_shard_conflicts",
            "t256_vs_t16_speedup",
        ],
    ),
    (
        "BENCH_exec.json",
        &[
            "experiment",
            "points",
            "policy",
            "delivered_mib_s",
            "pin_wait_secs",
            "unconsumed_drops",
            "ttfc_p99_ns",
            "pin_wait_p99_ns",
        ],
    ),
    (
        "BENCH_compression.json",
        &[
            "experiment",
            "points",
            "codec",
            "compression_ratio",
            "decode_gib_s",
            "io_volume_ratio",
            "values_decoded",
        ],
    ),
    (
        "BENCH_file.json",
        &[
            "experiment",
            "points",
            "mode",
            "policy",
            "io_threads",
            "delivered_mib_s",
            "file_read_calls",
            "file_bytes_read_mib",
            "io_volume_ratio",
            "crossover_observed",
        ],
    ),
    (
        "BENCH_server.json",
        &[
            "experiment",
            "points",
            "clients",
            "tables",
            "scans_completed",
            "scans_killed",
            "sustained_mib_s",
            "ttfb_p50_ms",
            "ttfb_p99_ms",
            "admitted",
            "queued",
            "shed",
            "peak_admitted",
            "pinned_frames_after",
        ],
    ),
    (
        "BENCH_faults.json",
        &[
            "experiment",
            "points",
            "fault_rate",
            "goodput_mib_s",
            "load_faults",
            "load_retries",
            "checksum_failures",
            "chunks_quarantined",
            "faults_injected",
            "pin_wait_p99_ns",
            "checksum_overhead_frac",
        ],
    ),
];

fn check(path: &str) -> Result<(), String> {
    let Some((_, keys)) = SCHEMAS.iter().find(|(name, _)| *name == path) else {
        return Err(format!("{path}: no schema registered for this artifact"));
    };
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    if contents.trim().is_empty() {
        return Err(format!("{path}: empty artifact"));
    }
    let missing: Vec<&str> = keys
        .iter()
        .copied()
        .filter(|k| !contents.contains(&format!("\"{k}\"")))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}: missing required keys: {missing:?}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<String> = if args.is_empty() {
        SCHEMAS.iter().map(|(name, _)| name.to_string()).collect()
    } else {
        args
    };
    let mut failed = false;
    for file in &files {
        match check(file) {
            Ok(()) => println!("ok: {file}"),
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
