//! Reproduces Table 4: the DSM column-overlap study on a synthetic
//! 10-attribute table, comparing `normal` and `relevance` as the queries'
//! column windows go from fully overlapping to disjoint.

use cscan_bench::experiments::table4;
use cscan_bench::report::{f2, TextTable};
use cscan_bench::Scale;
use cscan_core::policy::PolicyKind;

fn main() {
    let scale = Scale::from_args();
    println!("Table 4 — DSM column-overlap experiment ({scale:?} scale)\n");
    let result = table4::run(scale, 42);

    let mut table = TextTable::new([
        "queries (columns used)",
        "normal I/Os",
        "normal avg lat (s)",
        "normal stddev",
        "relevance I/Os",
        "relevance avg lat (s)",
        "relevance stddev",
    ]);
    for (set, _) in cscan_workload::synthetic::table4_query_sets() {
        let n = result.cell(&set, PolicyKind::Normal);
        let r = result.cell(&set, PolicyKind::Relevance);
        table.row([
            set.clone(),
            n.io_requests.to_string(),
            f2(n.latency.mean()),
            f2(n.latency.stddev()),
            r.io_requests.to_string(),
            f2(r.latency.mean()),
            f2(r.latency.stddev()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape check: relevance's benefit shrinks as the column overlap between\n\
         concurrent queries decreases, but it keeps beating normal throughout."
    );
}
