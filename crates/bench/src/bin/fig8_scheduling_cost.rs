//! Reproduces Figure 8: wall-clock cost of relevance-based scheduling and
//! its share of total execution time, as the 2 GB relation is divided into
//! more (smaller) chunks.

use cscan_bench::experiments::fig8;
use cscan_bench::report::TextTable;
use cscan_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let iterations = match scale {
        Scale::Quick => 50,
        Scale::Paper => 500,
    };
    println!("Figure 8 — scheduling cost of the relevance policy ({iterations} iterations/point)\n");
    let points = fig8::run(iterations);

    let mut time_table = TextTable::new(["chunks", "1% scan (ms)", "10% scan (ms)", "100% scan (ms)"]);
    let mut frac_table =
        TextTable::new(["chunks", "1% scan", "10% scan", "100% scan"]);
    for &chunks in &fig8::CHUNK_COUNTS {
        let mut time_row = vec![chunks.to_string()];
        let mut frac_row = vec![chunks.to_string()];
        for &percent in &fig8::PERCENTS {
            let p = points
                .iter()
                .find(|p| p.num_chunks == chunks && p.percent == percent)
                .expect("missing point");
            time_row.push(format!("{:.4}", p.scheduling_ms));
            frac_row.push(format!("{:.6}", p.fraction_of_execution));
        }
        time_table.row(time_row);
        frac_table.row(frac_row);
    }
    println!("Scheduling time per decision (ms, wall clock)\n{}", time_table.render());
    println!("Scheduling time as a fraction of execution time\n{}", frac_table.render());
    println!(
        "Paper check: the cost grows super-linearly with the number of chunks but\n\
         stays below 1% of the execution time even at 2048 chunks."
    );
}
