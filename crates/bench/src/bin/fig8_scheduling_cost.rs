//! Reproduces Figure 8: wall-clock cost of relevance-based scheduling and
//! its share of total execution time, as the 2 GB relation is divided into
//! more (smaller) chunks — plus the incremental-vs-brute-force `plan_load`
//! comparison at the 16/64/128-query mixes, written to
//! `BENCH_scheduling.json` so the perf trajectory is tracked across PRs.

use cscan_bench::experiments::fig8;
use cscan_bench::report::TextTable;
use cscan_bench::Scale;
use std::fmt::Write as _;

fn main() {
    let scale = Scale::from_args();
    let iterations = match scale {
        Scale::Quick => 50,
        Scale::Paper => 500,
    };
    println!(
        "Figure 8 — scheduling cost of the relevance policy ({iterations} iterations/point)\n"
    );
    let points = fig8::run(iterations);

    let mut time_table =
        TextTable::new(["chunks", "1% scan (ms)", "10% scan (ms)", "100% scan (ms)"]);
    let mut frac_table = TextTable::new(["chunks", "1% scan", "10% scan", "100% scan"]);
    for &chunks in &fig8::CHUNK_COUNTS {
        let mut time_row = vec![chunks.to_string()];
        let mut frac_row = vec![chunks.to_string()];
        for &percent in &fig8::PERCENTS {
            let p = points
                .iter()
                .find(|p| p.num_chunks == chunks && p.percent == percent)
                .expect("missing point");
            time_row.push(format!("{:.4}", p.scheduling_ms));
            frac_row.push(format!("{:.6}", p.fraction_of_execution));
        }
        time_table.row(time_row);
        frac_table.row(frac_row);
    }
    println!(
        "Scheduling time per decision (ms, wall clock)\n{}",
        time_table.render()
    );
    println!(
        "Scheduling time as a fraction of execution time\n{}",
        frac_table.render()
    );

    // Incremental vs brute-force plan_load at heavy concurrency (the fig7/8
    // regime this PR optimizes).
    println!("plan_load per decision: incremental scheduling index vs brute-force sweep");
    let mut cmp_table = TextTable::new([
        "queries",
        "chunks",
        "scan",
        "brute (ms)",
        "incremental (ms)",
        "speedup",
    ]);
    let mut speedups = Vec::new();
    for &queries in &fig8::QUERY_MIXES {
        let p = fig8::compare_plan_load(2048, 100, queries, iterations);
        cmp_table.row([
            p.queries.to_string(),
            p.num_chunks.to_string(),
            format!("{}%", p.percent),
            format!("{:.6}", p.brute_ms),
            format!("{:.6}", p.incremental_ms),
            format!("{:.1}x", p.speedup()),
        ]);
        speedups.push(p);
    }
    println!("{}", cmp_table.render());
    println!(
        "Paper check: the brute-force cost grows super-linearly with the number of\n\
         chunks; the incremental scheduler stays near-constant per decision and\n\
         far below 1% of the execution time even at 2048 chunks.\n"
    );

    let json = render_json(&points, &speedups);
    let path = "BENCH_scheduling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Renders the measurements as JSON (hand-rolled: the workspace deliberately
/// has no serde_json dependency).
fn render_json(points: &[fig8::Fig8Point], speedups: &[fig8::SpeedupPoint]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fig8_scheduling_cost\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"chunks\": {}, \"scan_percent\": {}, \"scheduling_ms\": {:.6}, \"fraction_of_execution\": {:.6}}}{sep}",
            p.num_chunks, p.percent, p.scheduling_ms, p.fraction_of_execution
        );
    }
    out.push_str("  ],\n  \"plan_load_mixes\": [\n");
    for (i, p) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"queries\": {}, \"chunks\": {}, \"scan_percent\": {}, \"brute_ms\": {:.6}, \"incremental_ms\": {:.6}, \"speedup\": {:.2}}}{sep}",
            p.queries, p.num_chunks, p.percent, p.brute_ms, p.incremental_ms, p.speedup()
        );
    }
    out.push_str("  ]\n}\n");
    out
}
