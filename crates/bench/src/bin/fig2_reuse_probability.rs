//! Reproduces Figure 2: probability of finding a useful chunk in a
//! randomly-filled buffer pool (Equation 1 of the paper).

use cscan_bench::experiments::fig2;
use cscan_bench::report::TextTable;

fn main() {
    let result = fig2::run(42);

    println!(
        "Figure 2 — probability of finding a useful chunk (table of {} chunks)\n",
        fig2::TABLE_CHUNKS
    );
    let mut header: Vec<String> = vec!["chunks needed".to_string()];
    header.extend(
        fig2::BUFFER_PERCENTS
            .iter()
            .map(|b| format!("{b}% buffered")),
    );
    let mut table = TextTable::new(header);
    for cq in [1u64, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let mut row = vec![cq.to_string()];
        for curve in &result.curves {
            let p = curve
                .points
                .iter()
                .find(|(d, _)| *d == cq)
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            row.push(format!("{p:.3}"));
        }
        table.row(row);
    }
    println!("{}", table.render());

    println!("Monte-Carlo cross-check (30 000 trials per point):");
    let mut check = TextTable::new(["buffer", "demand", "analytic", "monte-carlo", "abs diff"]);
    for (cb, cq, exact, mc) in &result.cross_checks {
        check.row([
            format!("{cb}%"),
            cq.to_string(),
            format!("{exact:.4}"),
            format!("{mc:.4}"),
            format!("{:.4}", (exact - mc).abs()),
        ]);
    }
    println!("{}", check.render());
    println!(
        "Paper check: a 10% scan against a 10% buffer finds useful data with p = {:.2} (paper: \"over 50%\").",
        cscan_core::reuse::reuse_probability(100, 10, 10)
    );
}
