//! Criterion microbenchmarks of the relevance scheduler itself (the
//! machinery behind Figure 8): cost of one full scheduling decision as the
//! number of chunks, the scan size and the number of concurrent queries
//! grow, plus the incremental-vs-brute-force `plan_load` comparison at the
//! heavy 64- and 128-query mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscan_bench::experiments::fig8;

fn bench_scheduling_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("relevance_scheduling_step");
    for &chunks in &[128u32, 256, 512, 1024] {
        for &percent in &[1u32, 10, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("{percent}pct_scan"), chunks),
                &(chunks, percent),
                |b, &(chunks, percent)| {
                    b.iter(|| fig8::measure_scheduling_step(chunks, percent, fig8::QUERIES, 1));
                },
            );
        }
    }
    group.finish();
}

fn bench_plan_load_mixes(c: &mut Criterion) {
    // One sample = one ABM state transition (load completion or eviction)
    // plus one `next_load` decision, i.e. a full scheduling step of the main
    // loop.  The isolated per-decision numbers (decision only, transitions
    // untimed) are what `fig8_scheduling_cost` writes to
    // `BENCH_scheduling.json`.
    let mut group = c.benchmark_group("plan_load_step");
    for &queries in &fig8::QUERY_MIXES {
        for &(chunks, percent) in &[(1024u32, 10u32), (2048, 100)] {
            for &(label, brute) in &[("incremental", false), ("brute", true)] {
                // Built once per benchmark: each sample is one state
                // perturbation plus one scheduling decision.
                let mut bench = fig8::PlanLoadBench::new(chunks, percent, queries, brute);
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}_{queries}q_{percent}pct"), chunks),
                    &(),
                    move |b, ()| {
                        b.iter(|| bench.step());
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduling_step, bench_plan_load_mixes
}
criterion_main!(benches);
