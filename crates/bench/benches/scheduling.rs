//! Criterion microbenchmarks of the relevance scheduler itself (the
//! machinery behind Figure 8): cost of one full scheduling decision as the
//! number of chunks and the scan size grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscan_bench::experiments::fig8;

fn bench_scheduling_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("relevance_scheduling_step");
    for &chunks in &[128u32, 256, 512, 1024] {
        for &percent in &[1u32, 10, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("{percent}pct_scan"), chunks),
                &(chunks, percent),
                |b, &(chunks, percent)| {
                    b.iter(|| fig8::measure_scheduling_step(chunks, percent, 1));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduling_step
}
criterion_main!(benches);
