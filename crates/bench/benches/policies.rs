//! Criterion benchmarks of end-to-end simulated runs: the cost of simulating
//! the Table 2 style workload under each scheduling policy (this is the
//! harness behind Tables 2/3 and Figures 5–7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cscan_core::model::TableModel;
use cscan_core::policy::PolicyKind;
use cscan_core::sim::{SimConfig, Simulation};
use cscan_workload::queries::table2_classes;
use cscan_workload::streams::{build_streams, StreamSetup};

fn bench_policies(c: &mut Criterion) {
    let model = TableModel::nsm_uniform(64, 100_000, 256);
    let config = SimConfig::default().with_buffer_chunks(12);
    let setup = StreamSetup {
        streams: 6,
        queries_per_stream: 3,
        classes: table2_classes(),
        seed: 5,
    };
    let streams = build_streams(&setup, &model, None);

    let mut group = c.benchmark_group("simulated_run");
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut sim = Simulation::new(model.clone(), policy, config);
                    sim.submit_streams(streams.clone());
                    sim.run()
                });
            },
        );
    }
    group.finish();
}

fn bench_threaded_executor(c: &mut Criterion) {
    use cscan_core::threaded::ScanServer;
    use cscan_core::{CScanPlan, ScanRanges};
    use std::time::Duration;

    let model = TableModel::nsm_uniform(32, 10_000, 16);
    c.bench_function("threaded_full_scan_32_chunks", |b| {
        b.iter(|| {
            let server = ScanServer::builder(model.clone())
                .policy(PolicyKind::Relevance)
                .buffer_chunks(8)
                .io_cost_per_page(Duration::ZERO)
                .build();
            let handle = server.cscan(CScanPlan::new(
                "bench",
                ScanRanges::full(32),
                model.all_columns(),
            ));
            let mut n = 0;
            while let Some(guard) = handle.next_chunk().expect("fault-free scan") {
                guard.complete();
                n += 1;
            }
            n
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies, bench_threaded_executor
}
criterion_main!(benches);
