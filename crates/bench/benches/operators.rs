//! Criterion benchmarks of the vectorized operators (the per-chunk work that
//! makes a query FAST or SLOW in the paper's terms).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cscan_exec::ops::collect;
use cscan_exec::{
    AggFunc, ChunkOrderedAggregate, ChunkSource, Expr, Filter, HashAggregate, MemTable, Operator,
    Project,
};
use cscan_storage::ChunkId;

const ROWS: u64 = 200_000;
const CHUNK: u64 = 20_000;

fn bench_scan_select(c: &mut Criterion) {
    let table = MemTable::lineitem_demo(ROWS, CHUNK);
    let cols = vec![
        table.column_index("l_shipdate").unwrap(),
        table.column_index("l_discount").unwrap(),
        table.column_index("l_quantity").unwrap(),
        table.column_index("l_extendedprice").unwrap(),
    ];
    let mut group = c.benchmark_group("q6_like");
    group.throughput(Throughput::Elements(ROWS));
    group.bench_function("filter_project_sum", |b| {
        b.iter(|| {
            let src = ChunkSource::in_order(&table, cols.clone());
            let filtered = Filter::new(
                src,
                Expr::col(0)
                    .between(100, 500)
                    .and(Expr::col(1).between(2, 6))
                    .and(Expr::col(2).lt(Expr::lit(24))),
            );
            let projected = Project::new(filtered, vec![Expr::col(3).mul(Expr::col(1))]);
            let mut agg = HashAggregate::new(projected, vec![], vec![AggFunc::Sum(0)]);
            collect(&mut agg).len()
        })
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let table = MemTable::lineitem_demo(ROWS, CHUNK);
    let key = table.column_index("l_orderkey").unwrap();
    let price = table.column_index("l_extendedprice").unwrap();
    let order: Vec<ChunkId> = (0..table.num_chunks()).rev().map(ChunkId::new).collect();

    let mut group = c.benchmark_group("ordered_aggregation");
    group.throughput(Throughput::Elements(ROWS));
    group.bench_function("hash_aggregate", |b| {
        b.iter(|| {
            let src = ChunkSource::new(&table, vec![key, price], order.clone());
            let mut agg = HashAggregate::new(src, vec![0], vec![AggFunc::Sum(1), AggFunc::Count]);
            agg.next().unwrap().map(|c| c.len())
        })
    });
    group.bench_function("chunk_ordered_aggregate_out_of_order", |b| {
        b.iter(|| {
            let src = ChunkSource::new(&table, vec![key, price], order.clone());
            let mut agg = ChunkOrderedAggregate::new(src, 0, vec![AggFunc::Sum(1), AggFunc::Count]);
            collect(&mut agg).len()
        })
    });
    group.finish();
}

fn bench_cooperative_merge_join(c: &mut Criterion) {
    let lineitem = MemTable::lineitem_demo(ROWS, CHUNK);
    let orders = MemTable::orders_demo(ROWS / 4, CHUNK / 4);
    let l_cols = vec![
        lineitem.column_index("l_orderkey").unwrap(),
        lineitem.column_index("l_extendedprice").unwrap(),
    ];
    let o_cols = vec![
        orders.column_index("o_orderkey").unwrap(),
        orders.column_index("o_orderdate").unwrap(),
    ];
    let mut group = c.benchmark_group("cooperative_merge_join");
    group.throughput(Throughput::Elements(ROWS));
    group.bench_function("chunk_aligned_join", |b| {
        b.iter(|| {
            let mut join = cscan_exec::CooperativeMergeJoin::in_order(
                &lineitem,
                &orders,
                l_cols.clone(),
                0,
                o_cols.clone(),
                0,
            );
            let mut rows = 0usize;
            while let Some(batch) = join.next().expect("in-memory join cannot fail") {
                rows += batch.len();
            }
            rows
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scan_select, bench_aggregation, bench_cooperative_merge_join
}
criterion_main!(benches);
