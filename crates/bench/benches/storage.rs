//! Criterion benchmarks of the storage substrate: layout geometry queries,
//! column-set algebra, zonemap pruning and the reuse-probability formula.

use criterion::{criterion_group, criterion_main, Criterion};
use cscan_core::reuse::reuse_probability;
use cscan_core::ColSet;
use cscan_storage::{ChunkId, ColumnId, Layout, ScanRanges, ZoneMap};
use cscan_workload::lineitem::{lineitem_dsm_layout, lineitem_nsm_layout};

fn bench_layout_geometry(c: &mut Criterion) {
    let nsm = lineitem_nsm_layout(1);
    let dsm = lineitem_dsm_layout(1);
    let all_nsm = nsm.schema().all_columns();
    let some_dsm = dsm
        .schema()
        .resolve(&["l_shipdate", "l_quantity", "l_extendedprice"]);

    c.bench_function("nsm_chunk_pages_full_table", |b| {
        b.iter(|| {
            (0..nsm.num_chunks())
                .map(|i| nsm.chunk_pages(ChunkId::new(i), &all_nsm))
                .sum::<u64>()
        })
    });
    c.bench_function("dsm_chunk_regions_3_columns_full_table", |b| {
        b.iter(|| {
            (0..dsm.num_chunks())
                .map(|i| dsm.chunk_regions(ChunkId::new(i), &some_dsm).len())
                .sum::<usize>()
        })
    });
}

fn bench_colset_and_ranges(c: &mut Criterion) {
    let a = ColSet::first_n(32);
    let b_set = ColSet::from_columns((16..48).map(ColumnId::new));
    c.bench_function("colset_algebra", |bench| {
        bench.iter(|| {
            let u = a.union(b_set);
            let i = a.intersect(b_set);
            let d = a.difference(b_set);
            u.len() + i.len() + d.len()
        })
    });

    let ranges = ScanRanges::from_chunk_indices((0..4096).filter(|i| i % 3 != 0));
    let other = ScanRanges::single(1000, 3000);
    c.bench_function("scan_ranges_overlap_4096_chunks", |bench| {
        bench.iter(|| ranges.overlap(&other))
    });
}

fn bench_zonemap_and_reuse(c: &mut Criterion) {
    let zm = ZoneMap::build(
        ColumnId::new(0),
        (0..2048).map(|chunk| (0..16).map(move |i| (chunk * 100 + i * 7) as i64)),
    );
    c.bench_function("zonemap_matching_ranges_2048_chunks", |b| {
        b.iter(|| zm.matching_ranges(50_000, 90_000).num_chunks())
    });
    c.bench_function("reuse_probability_eq1", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cq in 1..=100u64 {
                acc += reuse_probability(100, cq, 10);
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_layout_geometry, bench_colset_and_ranges, bench_zonemap_and_reuse
}
criterion_main!(benches);
