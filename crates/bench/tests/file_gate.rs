//! Acceptance gates for the file-backed storage path (segment files
//! through `FileStore`).
//!
//! The I/O-volume gate is deterministic (no timing) and runs in every
//! build: serving the Figure 9 lineitem mix from the compressed segment
//! must read at least 2x fewer bytes at the `read_at` boundary than the
//! plain segment — the file-level analogue of `compression_gate`'s
//! in-memory check.  The CI-scale sweep is release-only (debug builds run
//! the smaller smoke in the experiment module's unit tests) and stays
//! under a tmpfs-friendly 256 MiB.

use cscan_bench::experiments::fig9_file::{self, crossover, FileSweepConfig};
use cscan_core::policy::PolicyKind;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cscan_file_gate_{tag}_{}", std::process::id()))
}

#[test]
fn file_backed_mix_io_volume_gate() {
    let dir = tmp_dir("mix");
    let mix = fig9_file::run_file_mix_volume(&dir, 16, 2_000).expect("file mix volume");
    // One positioned read per column extent, nothing speculative.
    assert_eq!(mix.plain_read_calls, 16 * 6);
    assert_eq!(mix.compressed_read_calls, 16 * 6);
    assert!(
        mix.ratio >= 2.0,
        "file-backed fig9 mix must at least halve bytes-from-disk, got {:.2}x \
         ({} plain vs {} compressed bytes)",
        mix.ratio,
        mix.plain_bytes,
        mix.compressed_bytes
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: CI-scale file-backed sweep (debug builds cover the \
              smaller smoke in the fig9_file unit tests)"
)]
fn file_backed_sweep_ci_scale() {
    // ~14.6 MiB plain + ~1.8 MiB compressed on the scratch filesystem —
    // comfortably tmpfs-friendly (<< 256 MiB).
    let cfg = FileSweepConfig {
        dir: tmp_dir("sweep"),
        chunks: 32,
        rows_per_chunk: 10_000,
        streams: 4,
        io_threads: vec![2],
    };
    let (points, [plain, compressed]) = fig9_file::run_file_sweep(&cfg).expect("file sweep");
    assert_eq!(points.len(), 2 * PolicyKind::ALL.len());
    assert!(compressed.file_bytes * 2 < plain.file_bytes);
    let expected_rows = points[0].rows;
    for p in &points {
        assert!(p.delivered_mib_s > 0.0, "{} {}", p.mode, p.policy);
        assert_eq!(p.rows, expected_rows, "{} {}", p.mode, p.policy);
        assert_eq!(p.unconsumed_drops, 0, "{} {}", p.mode, p.policy);
        assert!(p.file_read_calls > 0 && p.file_bytes_read > 0, "{}", p.mode);
    }
    let x = crossover(&points);
    assert!(x.plain_best_mib_s > 0.0 && x.compressed_best_mib_s > 0.0);
    std::fs::remove_dir_all(&cfg.dir).expect("cleanup");
}
