//! Release-only acceptance gate for the fault-tolerant data plane (wired
//! into CI's `speedup-acceptance` job): payload checksumming must cost the
//! fault-free consume path at most [`MAX_OVERHEAD_FRAC`] of its
//! materialize-and-decode work — integrity is not allowed to tax the happy
//! path by more than 5%.

use cscan_bench::experiments::faults;

/// The documented ceiling on the clean-path checksum overhead.
const MAX_OVERHEAD_FRAC: f64 = 0.05;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "checksum overhead is measured in release builds only"
)]
fn checksum_overhead_stays_under_five_percent() {
    // Warm-up pass so neither measurement pays first-touch costs, then
    // take the best of three to shake off scheduler noise on shared CI
    // runners.
    let _ = faults::run_checksum_overhead(16, 2_000);
    let best = (0..3)
        .map(|_| faults::run_checksum_overhead(64, 2_000))
        .min_by(|a, b| a.overhead_frac.total_cmp(&b.overhead_frac))
        .expect("three runs");
    assert!(
        best.overhead_frac <= MAX_OVERHEAD_FRAC,
        "checksumming taxes the clean consume path too much: {:.2}% > {:.0}% \
         ({:.4}s verify vs {:.4}s materialize+decode over {} chunks)",
        best.overhead_frac * 100.0,
        MAX_OVERHEAD_FRAC * 100.0,
        best.verify_secs,
        best.baseline_secs,
        best.chunks
    );
}

/// The correctness half of the gate: a transient fault storm at a 20%
/// per-attempt failure rate must deliver every row (goodput degrades,
/// results do not).  Deterministic in outcome, so it runs in every build.
#[test]
fn fault_sweep_loses_no_rows() {
    let points = faults::run_fault_sweep(16, 500, &[0.0, 0.2]);
    assert_eq!(points[0].rows, points[1].rows, "faults must not lose rows");
    assert!(points[1].load_faults > 0, "the sweep must inject faults");
    assert_eq!(points[1].chunks_quarantined, 0, "transient-only sweep");
}
