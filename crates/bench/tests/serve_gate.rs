//! Acceptance gate for the served-scan path: ≥32 concurrent remote
//! clients over two tables must stream to completion with the admission
//! cap enforced (excess queued or shed, both visible in the metrics
//! plane), mid-scan connection kills must not leak a single pinned
//! frame, and the service must sustain a real served throughput.
//!
//! Release-only: the timing-sensitive full-scale run is meaningless in a
//! debug build (debug builds cover the smaller smoke in the `serve`
//! experiment module's unit tests).

use cscan_bench::experiments::serve::{run_serve_sweep, ServeSweepConfig};

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only: CI-scale served sweep (debug builds cover the \
              smaller smoke in the serve experiment's unit tests)"
)]
fn served_sweep_ci_scale() {
    let cfg = ServeSweepConfig {
        clients: 36,
        scans_per_client: 3,
        chunks: 48,
        rows_per_chunk: 2_000,
        max_attached: 10,
        max_queued: 5,
        kill_every: 9,
    };
    let r = run_serve_sweep(&cfg);

    // Every scheduled scan either streamed to completion or was an
    // intentional mid-stream kill — nothing hung or errored out.
    assert_eq!(
        r.scans_completed + r.scans_killed,
        (cfg.clients * cfg.scans_per_client) as u64,
        "scans lost: {r:?}"
    );
    assert!(r.scans_killed >= 1, "the kill schedule never fired");

    // The admission cap bit: 36 clients against 10-per-table caps means
    // some scans waited or were shed, and the gates never let the
    // concurrently-admitted count past the caps.
    assert!(
        r.queued + r.shed > 0,
        "cap never bit: queued={} shed={}",
        r.queued,
        r.shed
    );
    assert!(
        r.peak_admitted <= (2 * cfg.max_attached) as u64,
        "peak admitted {} exceeds the caps",
        r.peak_admitted
    );
    assert!(r.admitted >= r.scans_completed, "admission undercounted");

    // The service did real work at a real rate.  The floor is deliberately
    // far below loopback capability — it exists to catch the service
    // accidentally serializing (one scan at a time would land well under
    // it at this geometry), not to benchmark the machine.
    assert!(
        r.sustained_mib_s >= 8.0,
        "served throughput collapsed: {:.2} MiB/s",
        r.sustained_mib_s
    );
    assert!(r.ttfb_p99 >= r.ttfb_p50);

    // The leak invariant, under the harshest teardown mix: graceful
    // completions, shed retries, and dropped-socket kills.
    assert_eq!(r.pinned_after, 0, "pinned frames leaked: {r:?}");
}
