//! Release-mode gate: the hot consume path of the data plane — acquire a
//! resident chunk, read its zero-copy column views, release the pin —
//! performs **zero per-chunk heap allocations** on the consumer thread.
//!
//! The whole test binary runs under a counting global allocator that tracks
//! allocation events per thread; the measured loop drives a live threaded
//! `ScanServer` session over a fully resident table (a warmup scan faults
//! everything in and warms the executor's reusable scratch buffers), so
//! every `next_chunk` takes the pure hit path.
//!
//! Release builds only: under `debug_assertions` every scheduling decision
//! re-runs its brute-force twin, which allocates by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts allocation events (alloc + realloc) per thread.
struct CountingAllocator;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Allocation events observed on this thread so far.
fn thread_allocs() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the zero-allocation gate is measured in release builds only \
              (debug builds re-run brute-force twins that allocate)"
)]
fn consume_path_performs_zero_per_chunk_allocations() {
    use cscan_core::policy::PolicyKind;
    use cscan_core::threaded::ScanServer;
    use cscan_core::{CScanPlan, TableModel};
    use cscan_storage::{ColumnId, ScanRanges, SeededStore};
    use std::sync::Arc;
    use std::time::Duration;

    const CHUNKS: u32 = 32;
    const ROWS: u64 = 1_024;

    let model = TableModel::nsm_uniform(CHUNKS, ROWS, 16);
    let store = SeededStore::new(ROWS, 2, 5);
    let server = ScanServer::builder(model.clone())
        .policy(PolicyKind::Relevance)
        // Everything fits: after the warmup scan the table is fully
        // resident and the measured scan never waits on a load.
        .buffer_chunks(CHUNKS as u64)
        .io_cost_per_page(Duration::ZERO)
        .store(Arc::new(store.clone()))
        .build();

    // Warmup: fault every chunk in and warm the executor's reusable
    // scratch (wake lists, starvation-propagation buffers, LRU queues).
    let warmup = server.cscan(CScanPlan::new(
        "warmup",
        ScanRanges::full(CHUNKS),
        model.all_columns(),
    ));
    let mut warm_chunks = 0;
    while let Some(pin) = warmup.next_chunk().expect("fault-free scan") {
        pin.complete();
        warm_chunks += 1;
    }
    assert_eq!(warm_chunks, CHUNKS);
    warmup.finish();

    // Measured scan: the hot consume path, end to end — next_chunk (hit),
    // zero-copy column views, fold, release — with the allocator watching
    // this thread.
    let handle = server.cscan(CScanPlan::new(
        "measured",
        ScanRanges::full(CHUNKS),
        model.all_columns(),
    ));
    let col = ColumnId::new(1);
    let mut consumed = 0u32;
    let mut checksum = 0i64;
    let before = thread_allocs();
    while let Some(pin) = handle.next_chunk().expect("fault-free scan") {
        let values = pin.column(col).expect("payload column view");
        checksum = values.iter().fold(checksum, |acc, &v| acc.wrapping_add(v));
        pin.complete();
        consumed += 1;
    }
    let allocs = thread_allocs() - before;
    handle.finish();

    assert_eq!(consumed, CHUNKS);
    assert_eq!(
        allocs, 0,
        "the hot consume path must not allocate: {allocs} allocation events \
         over {consumed} chunks"
    );
    // The fold really read the payload (guards against the loop optimizing
    // away): recompute the checksum from the store's definition.
    let expected: i64 = (0..CHUNKS)
        .map(|c| {
            (0..ROWS)
                .map(|r| store.value(cscan_storage::ChunkId::new(c), r, col))
                .fold(0i64, |a, v| a.wrapping_add(v))
        })
        .fold(0i64, |a, v| a.wrapping_add(v));
    assert_eq!(checksum, expected);
}
