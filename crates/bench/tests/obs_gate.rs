//! Release-mode gate: observability must be cheap enough for the hot path.
//!
//! Two bounds, per the observability plane's contract:
//!
//! * recording a sample — counter increment, span duration, per-query
//!   scope bump, flight event — performs **zero heap allocations**
//!   (measured under the same counting global allocator as `alloc_gate`);
//! * a fully instrumented end-to-end scan is at most **3% slower** than
//!   the identical scan against [`Registry::disabled`] (the no-obs
//!   baseline), min-of-N trials to shed scheduler noise.
//!
//! Release builds only: under `debug_assertions` every scheduling decision
//! re-runs its brute-force twin, which allocates and dominates timing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts allocation events (alloc + realloc) per thread.
struct CountingAllocator;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Allocation events observed on this thread so far.
fn thread_allocs() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "allocation accounting is gated in release builds only"
)]
fn recording_a_sample_performs_zero_allocations() {
    use cscan_obs::{Counter, EventKind, QueryCounter, Registry, SpanKind};
    use std::sync::Arc;

    let registry = Arc::new(Registry::new());
    let scope = registry.attach_query("gate", "gate_table");
    // Fill the flight ring once so recording below only overwrites slots.
    for i in 0..600 {
        registry.event(EventKind::LoadCommitted, i, 1, 0);
    }

    let before = thread_allocs();
    for i in 0..10_000u64 {
        registry.inc(Counter::LoadsCompleted);
        registry.add(Counter::ExecRows, 1_024);
        registry.record_span_ns(SpanKind::PinWait, i + 1);
        scope.add(QueryCounter::ChunksDelivered, 1);
        scope.record_pin_wait(i + 1);
        registry.event(EventKind::LoadCommitted, i as u32, 1, 0);
        registry.gauge_set(cscan_obs::Gauge::PinnedFrames, i);
    }
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "recording samples must not allocate: {allocs} allocation events \
         over 10k iterations"
    );
    registry.detach_query(&scope);
}

/// One fully-resident scan through a threaded server built on `registry`,
/// returning the consume-loop wall time.
#[cfg(not(debug_assertions))]
fn timed_scan(registry: std::sync::Arc<cscan_obs::Registry>) -> std::time::Duration {
    use cscan_core::policy::PolicyKind;
    use cscan_core::threaded::ScanServer;
    use cscan_core::{CScanPlan, TableModel};
    use cscan_storage::{ScanRanges, SeededStore};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Enough rows per chunk that the gate measures relative overhead on a
    // realistic consume granularity (~1M values folded), not the fixed
    // ~100ns/chunk instrumentation cost against a near-empty chunk.
    const CHUNKS: u32 = 64;
    const ROWS: u64 = 16_384;

    let model = TableModel::nsm_uniform(CHUNKS, ROWS, 16);
    let server = ScanServer::builder(model.clone())
        .policy(PolicyKind::Relevance)
        .buffer_chunks(CHUNKS as u64)
        .io_cost_per_page(Duration::ZERO)
        .observability(registry)
        .store(Arc::new(SeededStore::new(ROWS, 2, 5)))
        .build();

    // Warmup: fault everything in so the measured scan is pure hit path.
    let warmup = server.cscan(CScanPlan::new(
        "warmup",
        ScanRanges::full(CHUNKS),
        model.all_columns(),
    ));
    while let Some(pin) = warmup.next_chunk().expect("fault-free scan") {
        pin.complete();
    }
    warmup.finish();

    let handle = server.cscan(CScanPlan::new(
        "measured",
        ScanRanges::full(CHUNKS),
        model.all_columns(),
    ));
    let col = cscan_storage::ColumnId::new(1);
    let mut checksum = 0i64;
    let started = Instant::now();
    while let Some(pin) = handle.next_chunk().expect("fault-free scan") {
        let values = pin.column(col).expect("payload column view");
        checksum = values.iter().fold(checksum, |acc, &v| acc.wrapping_add(v));
        pin.complete();
    }
    let elapsed = started.elapsed();
    handle.finish();
    assert_ne!(checksum, i64::MIN, "keep the fold alive");
    elapsed
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the overhead bound is measured in release builds only \
              (debug builds re-run brute-force twins that dominate timing)"
)]
fn instrumentation_overhead_is_bounded() {
    #[cfg(not(debug_assertions))]
    {
        use cscan_obs::Registry;
        use std::sync::Arc;
        use std::time::Duration;

        const TRIALS: usize = 7;
        const ATTEMPTS: usize = 3;
        // Interleave the trials so drift (thermal, scheduler) hits both
        // sides equally; min-of-N sheds the noise floor.  A whole attempt
        // can still land during a bad patch on a loaded (or single-core)
        // box, so the measurement is repeated up to ATTEMPTS times and the
        // gate takes the best attempt — the bound itself stays at 3%.
        let (mut on, mut off) = (Duration::MAX, Duration::MAX);
        let mut ratio = f64::MAX;
        for _ in 0..ATTEMPTS {
            for _ in 0..TRIALS {
                off = off.min(timed_scan(Arc::new(Registry::disabled())));
                on = on.min(timed_scan(Arc::new(Registry::new())));
            }
            ratio = ratio.min(on.as_secs_f64() / off.as_secs_f64().max(1e-9));
            if ratio <= 1.03 {
                break;
            }
        }
        assert!(
            ratio <= 1.03,
            "instrumented consume path is {:.2}% slower than the no-obs \
             baseline (gate: <= 3%); instrumented {:?} vs baseline {:?}",
            (ratio - 1.0) * 100.0,
            on,
            off
        );
    }
}
