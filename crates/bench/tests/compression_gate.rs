//! Release-only acceptance gates for the compressed payload path (wired
//! into CI's `speedup-acceptance` job):
//!
//! 1. PFOR decode must sustain at least [`DECODE_FLOOR_GIB_S`] GiB/s of
//!    decoded output on one thread.
//! 2. The Figure 9 mix (lineitem demo columns under their matched PDICT /
//!    PFOR / PFOR-DELTA schemes) must shrink I/O volume at least 2×.

use cscan_bench::experiments::fig9;
use cscan_storage::codec::EncodedColumn;
use cscan_storage::Compression;
use std::time::Duration;

/// The documented decode floor, in GiB/s of decoded output, for PFOR
/// 21-bit with ~2% exceptions on a single thread.  Release builds on this
/// repo's dev hardware decode well above this; the floor is set
/// conservatively low so shared CI runners do not flake, while still
/// catching order-of-magnitude regressions (e.g. a decode accidentally
/// moved behind a lock or made per-value allocating).
const DECODE_FLOOR_GIB_S: f64 = 0.5;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "decode bandwidth is measured in release builds only"
)]
fn compression_pfor_decode_sustains_floor() {
    // 2^22 values = 32 MiB decoded; figure-shaped 21-bit data with 2%
    // full-width outliers.
    let rows = 1usize << 22;
    let values: Vec<i64> = (0..rows)
        .map(|i| {
            if i % 50 == 0 {
                i64::MAX - i as i64
            } else {
                (i as i64).wrapping_mul(2_654_435_761) % (1 << 21)
            }
        })
        .collect();
    let enc = EncodedColumn::encode(
        &values,
        Compression::Pfor {
            bits: 21,
            exception_rate: 0.02,
        },
    );
    assert_eq!(enc.decode(), values, "the gate only counts correct decodes");
    let gib_s = fig9::measure_decode_gib_s(&enc, Duration::from_millis(500));
    assert!(
        gib_s >= DECODE_FLOOR_GIB_S,
        "PFOR decode fell below the floor: {gib_s:.2} GiB/s < {DECODE_FLOOR_GIB_S} GiB/s"
    );
}

/// The mix-volume half of the gate.  Deterministic (no timing), so it runs
/// in every build — CI's release filter picks it up alongside the floor.
#[test]
fn compression_fig9_mix_io_volume_at_least_halved() {
    let mix = fig9::run_mix_volume(64, 2_000);
    assert!(
        mix.ratio >= 2.0,
        "the fig9 mix's compressed I/O volume must be >= 2x smaller than \
         uncompressed, got {:.2}x ({:.2} MiB vs {:.2} MiB)",
        mix.ratio,
        mix.compressed_mib,
        mix.uncompressed_mib
    );
}
